//! Integration test of the full AQFP EDA flow across crates:
//! build → synthesize → legalize fan-out → balance → cost, with functional
//! equivalence checked at every stage.

use aqfp_device::{CellLibrary, ClockScheme};
use aqfp_netlist::balance::{
    balance, fanout_is_legal, is_balanced, legalize_fanout, legalize_fanout_balanced,
};
use aqfp_netlist::builders::{popcount_ge, ripple_adder_aoi};
use aqfp_netlist::report::cost_report;
use aqfp_netlist::synth::optimize;
use aqfp_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vectors(n: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen()).collect())
        .collect()
}

fn outputs_on(nl: &Netlist, vectors: &[Vec<bool>]) -> Vec<Vec<bool>> {
    vectors.iter().map(|v| nl.eval(v).unwrap()).collect()
}

/// The flagship flow: an AOI adder synthesized to majority cells, then
/// taken through fan-out legalization and 4-phase balancing — function
/// identical at every step, costs monotone in the expected direction.
#[test]
fn aoi_adder_full_flow_keeps_function_and_sheds_jjs() {
    let lib = CellLibrary::hstp();
    let clock = ClockScheme::four_phase_5ghz();
    let (raw, _, _, _) = ripple_adder_aoi(6);
    let vectors = random_vectors(raw.input_count(), 48, 11);
    let reference = outputs_on(&raw, &vectors);

    // Synthesis.
    let (synthed, report) = optimize(&raw, &lib);
    assert_eq!(outputs_on(&synthed, &vectors), reference, "synthesis");
    assert!(report.jj_after < report.jj_before, "{report:?}");

    // Legalization + balancing on the synthesized netlist.
    let mut finished = synthed.clone();
    legalize_fanout(&mut finished);
    assert!(fanout_is_legal(&finished));
    let bal = balance(&mut finished, &clock);
    assert!(is_balanced(&finished, &bal.stages, clock.allowed_skew()));
    assert_eq!(outputs_on(&finished, &vectors), reference, "balanced");

    // The finished netlist costs more than the synthesized one (splitters
    // and buffers are real), but synthesizing first must still beat the
    // unsynthesized flow end to end.
    let mut unsynthed = raw.clone();
    legalize_fanout(&mut unsynthed);
    balance(&mut unsynthed, &clock);
    let with_synth = cost_report(&finished, &lib, &clock);
    let without = cost_report(&unsynthed, &lib, &clock);
    assert!(
        with_synth.jj_total < without.jj_total,
        "synth-first {} vs raw {} JJ",
        with_synth.jj_total,
        without.jj_total
    );
    assert!(bal.depth >= synthed.depth());
}

/// The SC accumulation comparator pipeline (popcount ≥ threshold) through
/// both legalization variants: same function, legal fan-out in both.
#[test]
fn popcount_comparator_flow_is_stable_under_both_legalizers() {
    let clock = ClockScheme::four_phase_5ghz();
    let (nl, _, _) = popcount_ge(12, 7);
    let vectors = random_vectors(12, 64, 13);
    let reference = outputs_on(&nl, &vectors);

    for balanced_trees in [false, true] {
        let mut flow = nl.clone();
        if balanced_trees {
            legalize_fanout_balanced(&mut flow);
        } else {
            legalize_fanout(&mut flow);
        }
        assert!(fanout_is_legal(&flow), "trees={balanced_trees}");
        let report = balance(&mut flow, &clock);
        assert!(
            is_balanced(&flow, &report.stages, clock.allowed_skew()),
            "trees={balanced_trees}"
        );
        assert_eq!(
            outputs_on(&flow, &vectors),
            reference,
            "trees={balanced_trees}"
        );
    }
}

/// Synthesis before the clocking study must not change its conclusions:
/// higher phase counts still save JJs on the optimized netlist.
#[test]
fn clocking_savings_survive_synthesis() {
    use aqfp_netlist::clocking::clocking_study;
    use aqfp_netlist::random::{random_dag, RandomDagConfig};
    let lib = CellLibrary::hstp();
    let cfg = RandomDagConfig {
        inputs: 16,
        gates: 300,
        ..Default::default()
    };
    let dag = random_dag(&cfg, &mut StdRng::seed_from_u64(17));
    let (optimized, _) = optimize(&dag, &lib);
    let results = clocking_study(&optimized, &[4, 8, 16], &lib);
    let eight = results.iter().find(|r| r.phases == 8).unwrap();
    let sixteen = results.iter().find(|r| r.phases == 16).unwrap();
    assert!(eight.jj_reduction_vs_4phase > 0.0);
    assert!(sixteen.jj_reduction_vs_4phase >= eight.jj_reduction_vs_4phase);
}
