//! Golden round trip for the screening subsystem: probe-set generation,
//! serialization, and replay against a snapshot-cold-started replica.
//!
//! The fixture pins the full fab-line story end to end on a
//! deterministic pipeline: ATPG picks its probe vectors, the probe set
//! and the die snapshot travel as binary artifacts, a replica is
//! cold-started from the snapshot alone, and a seeded fault set injected
//! into both the original and the replica must produce **bit-identical**
//! per-probe detection patterns — which in turn must match the committed
//! golden mask.
//!
//! To regenerate after an *intentional* semantic change, run
//! `GOLDEN_REGEN=1 cargo test --test golden_screen -- --nocapture` and
//! paste the printed constants.

use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::screening::{generate_probes, synthesize_probes, ProbeSet, ScreeningConfig};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

/// Number of seeded fault classes replayed against the probe set.
const GOLDEN_FAULTS: usize = 3;

/// Expected probe count the greedy cover selects.
const GOLDEN_PROBES: usize = 13;

/// Expected coverage, as an `f64::to_bits` pattern (exact comparison).
const GOLDEN_COVERAGE_BITS: u64 = 0x3fe0cccccccccccd;

/// Expected per-probe detection masks (bit `i` = probe `i` flagged) for
/// the three seeded fault classes, identical on the original die and the
/// snapshot-cold-started replica.
const GOLDEN_DETECTION_MASKS: [u64; GOLDEN_FAULTS] = [0x4, 0x4, 0x1000];

/// The deterministic pipeline behind the fixture: the same operating
/// point as `golden_deploy.rs`, lowered to the packed engine.
fn golden_pipeline() -> (PackedModel, Vec<aqfp_sc::BitPlane>) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 12,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, 7);
    Trainer::new(TrainConfig {
        epochs: 3,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();
    let mut candidates: Vec<aqfp_sc::BitPlane> = (0..24)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    candidates.extend(synthesize_probes(256, 24, 77));
    (packed, candidates)
}

/// The deterministic fault sample replayed against the probe set:
/// evenly strided picks from the classes the greedy cover claims to
/// detect, so every seeded fault must light up at least one probe.
fn seeded_faults(
    detected: &[superbnn::screening::FaultSite],
) -> Vec<superbnn::screening::FaultSite> {
    assert!(detected.len() >= GOLDEN_FAULTS, "cover too small to seed");
    let stride = detected.len() / GOLDEN_FAULTS;
    (0..GOLDEN_FAULTS).map(|i| detected[i * stride]).collect()
}

/// Per-probe detection pattern of one injected fault class, as a bit
/// mask (probe `i` → bit `i`).
fn detection_mask(
    probes: &ProbeSet,
    model: &PackedModel,
    site: &superbnn::screening::FaultSite,
) -> u64 {
    use aqfp_crossbar::faults::PatchJournal;
    let mut m = model.clone();
    let mut journal = PatchJournal::new();
    let dies = m.layers()[site.layer]
        .matrix()
        .expect("fault on a weight-free stage")
        .tile_dims()
        .len();
    m.apply_layer_faults_journaled(site.layer, &site.fault.to_draws(dies), &mut journal);
    let outcome = probes.screen(&m);
    outcome
        .mismatches
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &hit)| acc | (u64::from(hit) << i))
}

#[test]
fn probe_set_round_trips_through_snapshot_and_detects_the_fixture_faults() {
    let (packed, candidates) = golden_pipeline();
    let cfg = ScreeningConfig::default()
        .with_fault_classes(40)
        .with_max_vectors(16)
        .with_target_coverage(0.95)
        .with_seed(0x60D)
        .with_workers(2);
    let report = generate_probes(&packed, &candidates, &cfg).expect("screenable fixture");
    let faults = seeded_faults(&report.detected);

    // Ship both artifacts as bytes and cold-start a replica from them —
    // the fab tester's view: one snapshot, one probe file, no trainer.
    let dir = std::env::temp_dir().join(format!("superbnn_screen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("die.snap");
    let probe_path = dir.join("die.probes");
    packed.save_snapshot(&snap_path).unwrap();
    report.probes.save(&probe_path).unwrap();
    let replica = PackedModel::load_snapshot(&snap_path).unwrap();
    let probes = ProbeSet::load(&probe_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(probes, report.probes, "probe set round trip is lossless");

    // The golden die — original and replica — screens clean.
    assert!(report.probes.screen(&packed).clean());
    assert!(probes.screen(&replica).clean());

    let masks: Vec<u64> = faults
        .iter()
        .map(|s| detection_mask(&probes, &replica, s))
        .collect();

    if std::env::var("GOLDEN_REGEN").is_ok() {
        println!("const GOLDEN_PROBES: usize = {};", report.probes.len());
        println!(
            "const GOLDEN_COVERAGE_BITS: u64 = {:#018x};",
            report.coverage.to_bits()
        );
        let rendered: Vec<String> = masks.iter().map(|m| format!("{m:#x}")).collect();
        println!(
            "const GOLDEN_DETECTION_MASKS: [u64; GOLDEN_FAULTS] = [{}];",
            rendered.join(", ")
        );
        return;
    }

    assert_eq!(report.probes.len(), GOLDEN_PROBES, "probe count");
    assert_eq!(
        report.coverage.to_bits(),
        GOLDEN_COVERAGE_BITS,
        "coverage {} drifted",
        report.coverage
    );
    // The replica detects the seeded faults bit-identically to the
    // original die, and both match the committed masks.
    for (i, site) in faults.iter().enumerate() {
        let replica_mask = masks[i];
        let original_mask = detection_mask(&report.probes, &packed, site);
        assert_eq!(
            replica_mask, original_mask,
            "original/replica divergence on fault {i} ({site:?})"
        );
        assert_eq!(
            replica_mask, GOLDEN_DETECTION_MASKS[i],
            "detection mask drifted on fault {i} ({site:?})"
        );
    }
}
