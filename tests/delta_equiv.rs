//! Differential smoke for the event-driven fault-cone engine, sized to
//! run in release mode on CI: over a strided sample of the enumerated
//! structural fault universe of an MLP and a conv pipeline, the delta
//! engine's labels and scores must be bit-identical to the full packed
//! forward of the patched model, and the undo journal must land the
//! pristine model back bit-for-bit after every class.
//!
//! The exhaustive every-class sweep lives in the `deploy::delta` unit
//! tests and the ragged-geometry property tests (`tests/props.rs`);
//! this fixture is the fast, deterministic gate CI runs with
//! `--release` next to the screening example smoke.

use aqfp_crossbar::faults::PatchJournal;
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, ActivationCache, DirtyChannels, PackedModel};
use superbnn::screening::{fault_universe, synthesize_probes};
use superbnn::spec::NetSpec;

/// Walks a strided sample of the fault universe: patch one class in
/// through the journal, evaluate it with both engines, compare, revert.
fn assert_delta_matches_full(spec: &NetSpec, hw: &HardwareConfig, seed: u64, classes: usize) {
    let model = spec.build_software(hw, seed);
    let pristine = deploy(spec, &model, hw).expect("deploys").to_packed();
    let input_len: usize = pristine.input_shape().iter().product();
    let planes = synthesize_probes(input_len, 8, seed ^ 0xDE17A);
    let cache = ActivationCache::new(&pristine, &planes);

    let universe = fault_universe(&pristine);
    assert!(!universe.is_empty(), "model has weighted stages");
    let stride = (universe.len() / classes).max(1);

    let mut m = pristine.clone();
    let mut journal = PatchJournal::new();
    let mut checked = 0usize;
    for site in universe.iter().step_by(stride) {
        let dies = m.layers()[site.layer]
            .matrix()
            .expect("fault sites target weighted stages")
            .tile_dims()
            .len();
        let draws = site.fault.to_draws(dies);
        m.apply_layer_faults_journaled(site.layer, &draws, &mut journal);
        let dirty = DirtyChannels::from_site(&m, site.layer, &site.fault);
        assert_eq!(
            m.delta_classify_planes(&cache, &dirty),
            m.classify_planes(&planes),
            "engine divergence on {site:?}"
        );
        m.revert_faults(&mut journal);
        checked += 1;
    }
    assert_eq!(
        m,
        PackedModel::clone(&pristine),
        "journal failed to restore the pristine model"
    );
    assert!(checked >= classes.min(universe.len()), "sample too small");
}

#[test]
fn mlp_fault_cone_smoke() {
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 8, 8], &[16], 6);
    assert_delta_matches_full(&spec, &hw, 11, 96);
}

#[test]
fn conv_fault_cone_smoke() {
    let hw = HardwareConfig {
        crossbar_rows: 16,
        crossbar_cols: 8,
        ..Default::default()
    };
    let spec = NetSpec::vgg_small([1, 8, 8], 4, 6);
    assert_delta_matches_full(&spec, &hw, 13, 64);
}
