//! Software ↔ hardware equivalence in the deterministic regime.
//!
//! With a vanishing gray-zone, fan-in that fits one crossbar (no tiling
//! loss) and any bit-stream length, the deployed pipeline must reproduce
//! the software model's decisions bit-for-bit: the crossbar computes the
//! same XNOR-accumulate, BN matching reproduces the BN+HardTanh+sign
//! decision, OR/AND pooling equals max-pooling, and the popcount classifier
//! equals the binary linear head.

use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use bnn_nn::layers::Mode;
use bnn_nn::{NnRng, Sequential};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, TiledMatrix};
use superbnn::equiv::{DieChecker, Engine, ModelChecker};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

/// Near-deterministic hardware with single-tile layers for the MLP below.
fn exact_hw() -> HardwareConfig {
    HardwareConfig {
        crossbar_rows: 256, // fits the whole 16×16 input fan-in
        crossbar_cols: 64,
        grayzone_ua: 1e-9,
        bitstream_len: 1,
        ..Default::default()
    }
}

fn software_predictions(model: &mut Sequential, images: &bnn_nn::Tensor, n: usize) -> Vec<usize> {
    let mut rng = NnRng::seed_from_u64(0);
    let mut out = Vec::new();
    for i in 0..n {
        let per: usize = images.shape()[1..].iter().product();
        let x = bnn_nn::Tensor::from_vec(
            &[1, images.shape()[1], images.shape()[2], images.shape()[3]],
            images.data()[i * per..(i + 1) * per].to_vec(),
        );
        let logits = model.forward(&x, Mode::Eval, &mut rng);
        out.push(logits.argmax_rows()[0]);
    }
    out
}

#[test]
fn deterministic_single_tile_mlp_matches_software_exactly() {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 6,
        ..Default::default()
    });
    let hw = exact_hw();
    let spec = NetSpec::mlp(&[1, 16, 16], &[48], 10);
    let mut model = spec.build_software_with(bnn_nn::Binarizer::Deterministic, 21);
    // Brief training so BN stats and thresholds are non-trivial.
    Trainer::new(TrainConfig {
        epochs: 4,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut model, &data);

    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let sw = software_predictions(&mut model, &data.images, data.len());
    let mut rng = DeviceRng::seed_from_u64(3);
    let mut disagreements = 0usize;
    for (i, &want) in sw.iter().enumerate() {
        let (got, _) = deployed.classify(&data.images, i, &mut rng);
        if got != want {
            disagreements += 1;
        }
    }
    // Exact ties at thresholds are measure-zero but can occur with f32
    // arithmetic; allow at most one.
    assert!(
        disagreements <= 1,
        "{disagreements}/{} hardware decisions diverge from software",
        sw.len()
    );
}

#[test]
fn classifier_head_is_bit_exact() {
    // The popcount classifier must equal the software binary linear layer on
    // every ±1 input, independent of noise settings (it is digital).
    let hw = exact_hw();
    let spec = NetSpec::mlp(&[1, 2, 2], &[], 3); // classifier directly on input
    let mut model = spec.build_software_with(bnn_nn::Binarizer::Deterministic, 5);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");

    let mut rng = DeviceRng::seed_from_u64(0);
    for pattern in 0..16u32 {
        let pixels: Vec<f32> = (0..4)
            .map(|i| if (pattern >> i) & 1 == 1 { 0.7 } else { -0.7 })
            .collect();
        let images = bnn_nn::Tensor::from_vec(&[1, 1, 2, 2], pixels);
        let mut nrng = NnRng::seed_from_u64(0);
        let logits = model.forward(&images, Mode::Eval, &mut nrng);
        let want = logits.argmax_rows()[0];
        let (got, scores) = deployed.classify(&images, 0, &mut rng);
        // Scores must match the logits exactly (same α/bias affine).
        for (s, l) in scores.iter().zip(logits.data()) {
            assert!((s - l).abs() < 1e-4, "score {s} vs logit {l}");
        }
        assert_eq!(got, want, "pattern {pattern:04b}");
    }
}

/// The four-engine equivalence lattice, **exhaustively**: on a
/// single-tile die with 12-bit fan-in, every one of the 4096 input
/// patterns is evaluated on all six engine pairs — scalar digital,
/// packed digital, wide-word SIMD, and the stochastic engine in its
/// digital limit must be the same function, full stop.
#[test]
fn four_engine_lattice_is_exhaustive_on_a_single_tile_die() {
    let hw = HardwareConfig {
        crossbar_rows: 16, // one row tile for the 12-bit fan-in
        crossbar_cols: 8,
        ..Default::default()
    };
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let (fan_in, out) = (12usize, 7usize);
    let signs: Vec<f32> = (0..fan_in * out)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
    let checker = DieChecker::new(&TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw));
    let proofs = checker
        .prove_exhaustive_lattice()
        .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
    assert_eq!(proofs.len(), 6, "all six engine pairs proven");
    for proof in &proofs {
        assert_eq!(proof.cases, 1 << fan_in);
        assert_eq!(proof.mode, "exhaustive");
    }
}

/// Model-level equivalence on a trained MLP: the checker walks the
/// pipeline cell by cell on every engine pair over real eval inputs,
/// and its per-engine classification matches the engines' own
/// end-to-end entry points.
#[test]
fn trained_model_agrees_across_all_engine_pairs() {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 3,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[24], 10);
    let mut model = spec.build_software(&hw, 13);
    Trainer::new(TrainConfig {
        epochs: 1,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let checker = ModelChecker::new(&deployed);
    let planes: Vec<_> = (0..8)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    for pair in Engine::pairs() {
        let proof = checker
            .check_planes(pair, &planes)
            .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
        assert_eq!(proof.cases, planes.len());
    }
    // The checker's walk is bit-identical to the engines' own entry
    // points.
    for (i, plane) in planes.iter().enumerate() {
        let want = deployed.classify_digital(&data.images, i);
        assert_eq!(checker.classify(Engine::ScalarDigital, plane), want);
        assert_eq!(checker.classify(Engine::PackedDigital, plane), want);
    }
}

#[test]
fn bn_matching_reproduces_folded_decisions_across_seeds() {
    // Train tiny models from several seeds; the deployed first-cell
    // thresholds must make the same decisions as the float BN pipeline on
    // the latent sums (checked through full-network agreement).
    for seed in [1u64, 2, 3] {
        let data = generate_digits(&SynthConfig {
            samples_per_class: 4,
            seed,
            ..Default::default()
        });
        let hw = exact_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let mut model = spec.build_software_with(bnn_nn::Binarizer::Deterministic, seed);
        Trainer::new(TrainConfig {
            epochs: 3,
            lr: 0.05,
            ..Default::default()
        })
        .train(&mut model, &data);
        let deployed = deploy(&spec, &model, &hw).expect("deploys");
        let sw = software_predictions(&mut model, &data.images, data.len());
        let mut rng = DeviceRng::seed_from_u64(9);
        let agree = sw
            .iter()
            .enumerate()
            .filter(|(i, &want)| deployed.classify(&data.images, *i, &mut rng).0 == want)
            .count();
        assert!(
            agree as f64 >= 0.95 * sw.len() as f64,
            "seed {seed}: only {agree}/{} agree",
            sw.len()
        );
    }
}
