//! Fault injection through the packed deploy engine: stuck-at faults must
//! never panic on boundary words (ragged fan-in, ragged tiles), and a
//! zero-fault injection must be a perfect no-op.

use aqfp_crossbar::faults::FaultModel;
use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::spec::NetSpec;

/// Deliberately awkward geometry: 7-row crossbars never divide the
/// 256-wide input, the 33-wide hidden layer is ragged against both the
/// tile size and the 64-bit word size, and 5 columns split channels
/// unevenly.
fn ragged_hw() -> HardwareConfig {
    HardwareConfig {
        crossbar_rows: 7,
        crossbar_cols: 5,
        ..Default::default()
    }
}

fn digits_model() -> superbnn::deploy::DeployedModel {
    let hw = ragged_hw();
    let spec = NetSpec::mlp(&[1, 16, 16], &[33], 10);
    let model = spec.build_software(&hw, 11);
    deploy(&spec, &model, &hw).expect("deploys")
}

#[test]
fn saturating_fault_rates_never_panic_on_boundary_words() {
    // 100% dead columns and heavy stuck cells: every tile is affected,
    // including the ragged last row tile and the partial final word. The
    // packed engine must still run and agree with the scalar reference.
    let mut deployed = digits_model();
    let mut rng = DeviceRng::seed_from_u64(3);
    let defects = deployed.inject_faults(&FaultModel::new(0.5, 1.0).unwrap(), &mut rng);
    assert!(defects > 0);
    let packed = deployed.to_packed();
    let data = generate_digits(&SynthConfig {
        samples_per_class: 1,
        ..Default::default()
    });
    let batch = packed.classify_batch(&data.images, None);
    for (i, got) in batch.iter().enumerate() {
        let want = deployed.classify_digital(&data.images, i);
        assert_eq!(*got, want, "sample {i}");
        assert!(got.1.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn moderate_fault_rates_stay_bit_exact() {
    let mut deployed = digits_model();
    let mut rng = DeviceRng::seed_from_u64(9);
    deployed.inject_faults(&FaultModel::new(0.05, 0.02).unwrap(), &mut rng);
    let packed = deployed.to_packed();
    let data = generate_digits(&SynthConfig {
        samples_per_class: 2,
        ..Default::default()
    });
    for i in 0..data.len() {
        assert_eq!(
            packed.classify(&data.images, i),
            deployed.classify_digital(&data.images, i),
            "sample {i}"
        );
    }
}

#[test]
fn packed_injection_on_ragged_geometry_matches_scalar() {
    // Inject directly into the lowered pipeline (the robustness engine's
    // per-trial path) on the same deliberately awkward geometry: stuck
    // cells land on boundary words of ragged tiles, dead columns on the
    // uneven last column group. Same seed on either engine ⇒ same defects,
    // bit-identical predictions.
    let data = generate_digits(&SynthConfig {
        samples_per_class: 2,
        ..Default::default()
    });
    for (stuck, dead) in [(0.3, 0.0), (0.0, 1.0), (0.15, 0.25)] {
        let fm = FaultModel::new(stuck, dead).unwrap();
        let mut scalar = digits_model();
        let mut packed = digits_model().to_packed();
        let a = scalar.inject_faults(&fm, &mut DeviceRng::seed_from_u64(17));
        let b = packed.inject_faults(&fm, &mut DeviceRng::seed_from_u64(17));
        assert_eq!(a, b, "defect counts at rates ({stuck}, {dead})");
        for i in 0..data.len() {
            assert_eq!(
                packed.classify(&data.images, i),
                scalar.classify_digital(&data.images, i),
                "rates ({stuck}, {dead}), sample {i}"
            );
        }
    }
}

#[test]
fn zero_fault_injection_is_a_noop() {
    // Injecting from a pristine model must draw zero defects and leave
    // the packed engine's predictions (and hence accuracy) unchanged.
    let clean = digits_model();
    let mut faulted = digits_model();
    let mut rng = DeviceRng::seed_from_u64(4);
    let defects = faulted.inject_faults(&FaultModel::pristine(), &mut rng);
    assert_eq!(defects, 0);

    let data = generate_digits(&SynthConfig {
        samples_per_class: 3,
        ..Default::default()
    });
    let packed_clean = clean.to_packed();
    let packed_faulted = faulted.to_packed();
    assert_eq!(
        packed_clean.classify_batch(&data.images, None),
        packed_faulted.classify_batch(&data.images, None)
    );
    assert_eq!(
        packed_clean.accuracy(&data, None),
        packed_faulted.accuracy(&data, None)
    );
}
