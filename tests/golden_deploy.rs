//! Golden-vector regression for the deploy path.
//!
//! The fixture below was produced by the *scalar digital* engine on a
//! deterministic digits pipeline (see [`golden_pipeline`]) and is
//! committed so future refactors of either engine are pinned to today's
//! bit-exact behavior: both the scalar and the packed engine must keep
//! reproducing these labels and exact logit bit patterns.
//!
//! To regenerate after an *intentional* semantic change, run
//! `GOLDEN_REGEN=1 cargo test --test golden_deploy -- --nocapture` and
//! paste the printed arrays.

use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, DeployedModel};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

const GOLDEN_SAMPLES: usize = 6;

/// Expected top-1 labels of samples `0..6`.
const GOLDEN_LABELS: [usize; GOLDEN_SAMPLES] = [4, 4, 4, 6, 6, 6];

/// Expected logits of samples `0..6`, stored as `f32::to_bits` patterns
/// so the comparison is exact (no epsilon).
#[rustfmt::skip]
const GOLDEN_SCORE_BITS: [[u32; 10]; GOLDEN_SAMPLES] = [
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3f22d590, 0x3ed74acc, 0xbf2f0a23, 0xbf327400, 0xbf802d2c],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3fa2d0cf, 0x4005a4ba, 0x3b0243c0, 0xbf327400, 0xbf802d2c],
    [0xc027fb29, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3f8cdc4b, 0x3ea2df13, 0x3fd5ebc4, 0xbeae87e0, 0xbfdfa5ef, 0xbf2a2756],
    [0xbf7be83a, 0xbfcb1ea8, 0x3f8ca782, 0x3f5a2618, 0x3f3bd453, 0x3f22d590, 0x3fa08e14, 0xbf2f0a23, 0x3b4692f2, 0xbfd6602c],
];

/// The deterministic pipeline behind the fixture: synthetic digits, the
/// co-optimized 8×8 / L=32 operating point, a briefly trained MLP.
fn golden_pipeline() -> (DeployedModel, bnn_datasets::Dataset) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 12,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, 7);
    Trainer::new(TrainConfig {
        epochs: 3,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    (deployed, data)
}

#[test]
fn both_engines_reproduce_the_committed_fixture() {
    let (deployed, data) = golden_pipeline();
    let packed = deployed.to_packed();

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for i in 0..GOLDEN_SAMPLES {
            let (label, scores) = deployed.classify_digital(&data.images, i);
            labels.push(label.to_string());
            let bits: Vec<String> = scores
                .iter()
                .map(|s| format!("0x{:08x}", s.to_bits()))
                .collect();
            rows.push(format!("    [{}],", bits.join(", ")));
        }
        println!(
            "const GOLDEN_LABELS: [usize; GOLDEN_SAMPLES] = [{}];",
            labels.join(", ")
        );
        println!("const GOLDEN_SCORE_BITS: [[u32; 10]; GOLDEN_SAMPLES] = [");
        for r in rows {
            println!("{r}");
        }
        println!("];");
        return;
    }

    for i in 0..GOLDEN_SAMPLES {
        let (scalar_label, scalar_scores) = deployed.classify_digital(&data.images, i);
        let (packed_label, packed_scores) = packed.classify(&data.images, i);
        assert_eq!(scalar_label, GOLDEN_LABELS[i], "scalar label, sample {i}");
        assert_eq!(packed_label, GOLDEN_LABELS[i], "packed label, sample {i}");
        for c in 0..10 {
            assert_eq!(
                scalar_scores[c].to_bits(),
                GOLDEN_SCORE_BITS[i][c],
                "scalar logit, sample {i} class {c} ({})",
                scalar_scores[c]
            );
            assert_eq!(
                packed_scores[c].to_bits(),
                GOLDEN_SCORE_BITS[i][c],
                "packed logit, sample {i} class {c} ({})",
                packed_scores[c]
            );
        }
    }
}
