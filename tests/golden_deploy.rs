//! Golden-vector regression for the deploy path.
//!
//! The fixture below was produced by the *scalar digital* engine on a
//! deterministic digits pipeline (see [`golden_pipeline`]) and is
//! committed so future refactors of either engine are pinned to today's
//! bit-exact behavior: both the scalar and the packed engine must keep
//! reproducing these labels and exact logit bit patterns.
//!
//! To regenerate after an *intentional* semantic change, run
//! `GOLDEN_REGEN=1 cargo test --test golden_deploy -- --nocapture` and
//! paste the printed arrays.

use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, DeployedModel};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

const GOLDEN_SAMPLES: usize = 6;

/// Expected top-1 labels of samples `0..6`.
const GOLDEN_LABELS: [usize; GOLDEN_SAMPLES] = [4, 4, 4, 6, 6, 6];

/// Expected logits of samples `0..6`, stored as `f32::to_bits` patterns
/// so the comparison is exact (no epsilon).
#[rustfmt::skip]
const GOLDEN_SCORE_BITS: [[u32; 10]; GOLDEN_SAMPLES] = [
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3f22d590, 0x3ed74acc, 0xbf2f0a23, 0xbf327400, 0xbf802d2c],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3fa2d0cf, 0x4005a4ba, 0x3b0243c0, 0xbf327400, 0xbf802d2c],
    [0xc027fb29, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3f8cdc4b, 0x3ea2df13, 0x3fd5ebc4, 0xbeae87e0, 0xbfdfa5ef, 0xbf2a2756],
    [0xbf7be83a, 0xbfcb1ea8, 0x3f8ca782, 0x3f5a2618, 0x3f3bd453, 0x3f22d590, 0x3fa08e14, 0xbf2f0a23, 0x3b4692f2, 0xbfd6602c],
];

/// The deterministic pipeline behind the fixture: synthetic digits, the
/// co-optimized 8×8 / L=32 operating point, a briefly trained MLP.
fn golden_pipeline() -> (DeployedModel, bnn_datasets::Dataset) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 12,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, 7);
    Trainer::new(TrainConfig {
        epochs: 3,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    (deployed, data)
}

const GOLDEN_CONV_SAMPLES: usize = 4;

/// Expected top-1 labels of samples `0..4` of the conv pipeline.
const GOLDEN_CONV_LABELS: [usize; GOLDEN_CONV_SAMPLES] = [9, 9, 7, 0];

/// Expected logits of the conv pipeline, as `f32::to_bits` patterns.
#[rustfmt::skip]
const GOLDEN_CONV_SCORE_BITS: [[u32; 10]; GOLDEN_CONV_SAMPLES] = [
    [0x3f4c92bc, 0xc02f672e, 0xbe88b7e3, 0xc05d0a34, 0xbf938d02, 0xbf503b9f, 0xbead82bb, 0x3fb2ad91, 0xbf29e6d7, 0x3fc13944],
    [0x3f0861d3, 0xc069dee8, 0x00000000, 0xc07324d2, 0xbf5d5383, 0x00000000, 0x00000000, 0x3f86022d, 0xbf7eda42, 0x3f9a9436],
    [0x3f0861d3, 0xc069dee8, 0x3f08b7e3, 0xc046ef95, 0xbe938d02, 0xbf0ad26a, 0x00000000, 0x3f86022d, 0xbfd4608d, 0x3f1a9436],
    [0x3f8861d3, 0xc069dee8, 0x3f08b7e3, 0xc07324d2, 0xbe938d02, 0xbf0ad26a, 0x3f2d82bb, 0x3f86022d, 0xbfd4608d, 0x3f1a9436],
];

/// The deterministic conv pipeline behind the conv fixture: a seeded
/// (untrained — the fixture pins the *mapping*, not accuracy) VGG-small
/// on digits-shaped inputs, 32×16 crossbars. Exercises the full packed
/// pipeline: conv, mixed OR/AND pool, flatten, classifier.
fn golden_conv_pipeline() -> (DeployedModel, bnn_datasets::Dataset) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 1,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let spec = NetSpec::vgg_small([1, 16, 16], 4, 10);
    let model = spec.build_software(&hw, 11);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    (deployed, data)
}

#[test]
fn conv_pipeline_reproduces_the_committed_fixture() {
    let (deployed, data) = golden_conv_pipeline();
    let packed = deployed.to_packed();

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for i in 0..GOLDEN_CONV_SAMPLES {
            let (label, scores) = deployed.classify_digital(&data.images, i);
            labels.push(label.to_string());
            let bits: Vec<String> = scores
                .iter()
                .map(|s| format!("0x{:08x}", s.to_bits()))
                .collect();
            rows.push(format!("    [{}],", bits.join(", ")));
        }
        println!(
            "const GOLDEN_CONV_LABELS: [usize; GOLDEN_CONV_SAMPLES] = [{}];",
            labels.join(", ")
        );
        println!("const GOLDEN_CONV_SCORE_BITS: [[u32; 10]; GOLDEN_CONV_SAMPLES] = [");
        for r in rows {
            println!("{r}");
        }
        println!("];");
        return;
    }

    for i in 0..GOLDEN_CONV_SAMPLES {
        let (scalar_label, scalar_scores) = deployed.classify_digital(&data.images, i);
        let (packed_label, packed_scores) = packed.classify(&data.images, i);
        assert_eq!(
            scalar_label, GOLDEN_CONV_LABELS[i],
            "scalar conv label, sample {i}"
        );
        assert_eq!(
            packed_label, GOLDEN_CONV_LABELS[i],
            "packed conv label, sample {i}"
        );
        for c in 0..10 {
            assert_eq!(
                scalar_scores[c].to_bits(),
                GOLDEN_CONV_SCORE_BITS[i][c],
                "scalar conv logit, sample {i} class {c} ({})",
                scalar_scores[c]
            );
            assert_eq!(
                packed_scores[c].to_bits(),
                GOLDEN_CONV_SCORE_BITS[i][c],
                "packed conv logit, sample {i} class {c} ({})",
                packed_scores[c]
            );
        }
    }
}

#[test]
fn both_engines_reproduce_the_committed_fixture() {
    let (deployed, data) = golden_pipeline();
    let packed = deployed.to_packed();

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for i in 0..GOLDEN_SAMPLES {
            let (label, scores) = deployed.classify_digital(&data.images, i);
            labels.push(label.to_string());
            let bits: Vec<String> = scores
                .iter()
                .map(|s| format!("0x{:08x}", s.to_bits()))
                .collect();
            rows.push(format!("    [{}],", bits.join(", ")));
        }
        println!(
            "const GOLDEN_LABELS: [usize; GOLDEN_SAMPLES] = [{}];",
            labels.join(", ")
        );
        println!("const GOLDEN_SCORE_BITS: [[u32; 10]; GOLDEN_SAMPLES] = [");
        for r in rows {
            println!("{r}");
        }
        println!("];");
        return;
    }

    for i in 0..GOLDEN_SAMPLES {
        let (scalar_label, scalar_scores) = deployed.classify_digital(&data.images, i);
        let (packed_label, packed_scores) = packed.classify(&data.images, i);
        assert_eq!(scalar_label, GOLDEN_LABELS[i], "scalar label, sample {i}");
        assert_eq!(packed_label, GOLDEN_LABELS[i], "packed label, sample {i}");
        for c in 0..10 {
            assert_eq!(
                scalar_scores[c].to_bits(),
                GOLDEN_SCORE_BITS[i][c],
                "scalar logit, sample {i} class {c} ({})",
                scalar_scores[c]
            );
            assert_eq!(
                packed_scores[c].to_bits(),
                GOLDEN_SCORE_BITS[i][c],
                "packed logit, sample {i} class {c} ({})",
                packed_scores[c]
            );
        }
    }
}
