//! End-to-end integration: train → BN-match → tile → deploy → infer, with
//! the claims that define a working reproduction.

use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, objects::generate_objects, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::energy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 0.02,
        noise_warmup_epochs: epochs * 2 / 3,
        ..Default::default()
    }
}

/// The co-optimized accuracy-first operating point used across tests.
fn good_hw() -> HardwareConfig {
    HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    }
}

#[test]
fn vgg_learns_and_deploys_close_to_software() {
    let data = generate_objects(&SynthConfig {
        samples_per_class: 60,
        ..Default::default()
    });
    let (train, test) = data.split(0.25);
    let hw = good_hw();
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let mut model = spec.build_software(&hw, 42);
    let trainer = Trainer::new(train_cfg(20));
    trainer.train(&mut model, &train);
    let software = trainer.evaluate(&mut model, &test);
    assert!(software > 0.6, "software accuracy too low: {software}");

    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let mut rng = DeviceRng::seed_from_u64(1);
    let hardware = deployed.accuracy(&test, &mut rng, Some(80));
    assert!(hardware > 0.5, "deployed accuracy too low: {hardware}");
    // At the co-optimized point the deployment gap is bounded. (At the
    // full tablegen training budget the gap shrinks to a few points — see
    // EXPERIMENTS.md; this integration test trains for a fraction of that.)
    assert!(
        hardware > software - 0.3,
        "deployment gap too large: {software} -> {hardware}"
    );
}

#[test]
fn mlp_learns_digits() {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 40,
        ..Default::default()
    });
    let (train, test) = data.split(0.25);
    let hw = good_hw();
    let spec = NetSpec::mlp(&[1, 16, 16], &[128, 64], 10);
    let mut model = spec.build_software(&hw, 42);
    let trainer = Trainer::new(train_cfg(18));
    trainer.train(&mut model, &train);
    let software = trainer.evaluate(&mut model, &test);
    assert!(software > 0.5, "MLP software accuracy too low: {software}");
}

#[test]
fn longer_bitstreams_do_not_hurt() {
    // The Fig. 10 direction: accuracy at L = 32 must beat L = 1 clearly.
    let data = generate_objects(&SynthConfig {
        samples_per_class: 40,
        ..Default::default()
    });
    let (train, test) = data.split(0.25);
    let hw = good_hw();
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let mut model = spec.build_software(&hw, 42);
    Trainer::new(train_cfg(18)).train(&mut model, &train);

    // Average over eval seeds: at L = 1 a single stochastic read-out pass is
    // extremely noisy, and the claim under test is about the means.
    let acc_at = |len: usize| {
        let hw_l = HardwareConfig {
            bitstream_len: len,
            ..hw
        };
        let deployed = deploy(&spec, &model, &hw_l).expect("deploys");
        (0..3)
            .map(|seed| {
                let mut rng = DeviceRng::seed_from_u64(2 + seed);
                deployed.accuracy(&test, &mut rng, None)
            })
            .sum::<f64>()
            / 3.0
    };
    let short = acc_at(1);
    let long = acc_at(32);
    assert!(
        long > short + 0.05,
        "L=32 ({long}) should clearly beat L=1 ({short})"
    );
}

#[test]
fn energy_dominates_every_published_baseline() {
    // The Table 2/3 headline: orders of magnitude over all baselines.
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let report = energy::estimate(&spec, &HardwareConfig::default());
    for b in baselines::published::cifar10_baselines() {
        assert!(
            report.tops_per_watt > 50.0 * b.tops_per_watt,
            "ours {} vs {} {}",
            report.tops_per_watt,
            b.name,
            b.tops_per_watt
        );
    }
    let mlp = NetSpec::mlp(&[1, 16, 16], &[128, 64], 10);
    let report = energy::estimate(&mlp, &HardwareConfig::default());
    for b in baselines::published::mnist_baselines() {
        assert!(
            report.tops_per_watt > 10.0 * b.tops_per_watt,
            "ours {} vs {} {}",
            report.tops_per_watt,
            b.name,
            b.tops_per_watt
        );
    }
}

#[test]
fn end_to_end_digits_run_is_deterministic() {
    // The workspace-wiring check: one full train → deploy → accuracy run on
    // synthetic digits, repeated from identical seeds, must agree bit-for-bit
    // across every layer (dataset synthesis, training RNG, device RNG).
    let run = || {
        let data = generate_digits(&SynthConfig {
            samples_per_class: 12,
            ..Default::default()
        });
        let (train, test) = data.split(0.25);
        let hw = good_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let mut model = spec.build_software(&hw, 7);
        let trainer = Trainer::new(train_cfg(3));
        trainer.train(&mut model, &train);
        let software = trainer.evaluate(&mut model, &test);
        let deployed = deploy(&spec, &model, &hw).expect("deploys");
        let mut rng = DeviceRng::seed_from_u64(11);
        let hardware = deployed.accuracy(&test, &mut rng, None);
        (software, hardware)
    };
    let (sw_a, hw_a) = run();
    let (sw_b, hw_b) = run();
    assert_eq!(sw_a.to_bits(), sw_b.to_bits(), "software accuracy diverged");
    assert_eq!(hw_a.to_bits(), hw_b.to_bits(), "deployed accuracy diverged");
    assert!((0.0..=1.0).contains(&hw_a));
}

#[test]
fn deployment_is_deterministic_given_seed() {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 3,
        ..Default::default()
    });
    let hw = good_hw();
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let model = spec.build_software(&hw, 9);
    let deployed = deploy(&spec, &model, &hw).unwrap();
    let mut rng_a = DeviceRng::seed_from_u64(5);
    let mut rng_b = DeviceRng::seed_from_u64(5);
    let (a, sa) = deployed.classify(&data.images, 0, &mut rng_a);
    let (b, sb) = deployed.classify(&data.images, 0, &mut rng_b);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}
