//! Snapshot cold-start regression: a [`PackedModel`] written to the
//! versioned binary snapshot format and read back must be **bit-identical**
//! to the model that was saved — same labels, same exact logit bit
//! patterns — on the same committed golden fixture that pins the deploy
//! engines (`tests/golden_deploy.rs`), including after fault injection
//! (which exercises the derived-state rebuild: tile spans and SWAR
//! comparator tables are *not* persisted) and on the conv pipeline.
//! Corrupt files must fail with typed [`SnapshotError`]s, never panic.

use aqfp_crossbar::faults::FaultModel;
use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, DeployedModel, PackedModel, SnapshotError};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

const GOLDEN_SAMPLES: usize = 6;

/// The committed deploy fixture (`tests/golden_deploy.rs`): expected
/// top-1 labels of samples `0..6` of [`golden_pipeline`].
const GOLDEN_LABELS: [usize; GOLDEN_SAMPLES] = [4, 4, 4, 6, 6, 6];

/// Expected logits as `f32::to_bits` patterns (exact, no epsilon).
#[rustfmt::skip]
const GOLDEN_SCORE_BITS: [[u32; 10]; GOLDEN_SAMPLES] = [
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfa7f48e, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3feac08d, 0x3fcb83d3, 0x3b6a0586, 0xbeae87e0, 0xbeb1ad6d, 0xbf2a2756],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3f22d590, 0x3ed74acc, 0xbf2f0a23, 0xbf327400, 0xbf802d2c],
    [0xbfd1f4ff, 0xbf4b5592, 0x3eb8d584, 0x3f5a2618, 0x3fbbce6c, 0x3fa2d0cf, 0x4005a4ba, 0x3b0243c0, 0xbf327400, 0xbf802d2c],
    [0xc027fb29, 0xbf9864b8, 0x3f3adce3, 0x3ed7fa09, 0x3f8cdc4b, 0x3ea2df13, 0x3fd5ebc4, 0xbeae87e0, 0xbfdfa5ef, 0xbf2a2756],
    [0xbf7be83a, 0xbfcb1ea8, 0x3f8ca782, 0x3f5a2618, 0x3f3bd453, 0x3f22d590, 0x3fa08e14, 0xbf2f0a23, 0x3b4692f2, 0xbfd6602c],
];

/// The exact pipeline behind the committed fixture: synthetic digits,
/// the co-optimized 8×8 / L=32 operating point, a briefly trained MLP.
fn golden_pipeline() -> (DeployedModel, bnn_datasets::Dataset) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 12,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, 7);
    Trainer::new(TrainConfig {
        epochs: 3,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    (deployed, data)
}

/// The conv fixture pipeline: a seeded (untrained) VGG-small, 32×16
/// crossbars — conv, mixed OR/AND pool, flatten, classifier.
fn golden_conv_pipeline() -> (DeployedModel, bnn_datasets::Dataset) {
    let data = generate_digits(&SynthConfig {
        samples_per_class: 1,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let spec = NetSpec::vgg_small([1, 16, 16], 4, 10);
    let model = spec.build_software(&hw, 11);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    (deployed, data)
}

fn snapshot_bytes(model: &PackedModel) -> Vec<u8> {
    let mut bytes = Vec::new();
    model.write_snapshot(&mut bytes).expect("snapshot encodes");
    bytes
}

fn roundtrip(model: &PackedModel) -> PackedModel {
    let bytes = snapshot_bytes(model);
    PackedModel::read_snapshot(&mut bytes.as_slice()).expect("snapshot decodes")
}

/// Every sample of `data` must classify bit-identically on both models.
fn assert_bit_identical(a: &PackedModel, b: &PackedModel, data: &bnn_datasets::Dataset) {
    for i in 0..data.len() {
        let (la, sa) = a.classify(&data.images, i);
        let (lb, sb) = b.classify(&data.images, i);
        assert_eq!(la, lb, "label divergence at sample {i}");
        let bits_a: Vec<u32> = sa.iter().map(|s| s.to_bits()).collect();
        let bits_b: Vec<u32> = sb.iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "logit bit divergence at sample {i}");
    }
}

/// Cold start from a file: the loaded model must reproduce the
/// *committed* golden fixture exactly — labels and logit bit patterns —
/// without ever having seen the training pipeline.
#[test]
fn cold_started_model_reproduces_the_committed_fixture() {
    let (deployed, data) = golden_pipeline();
    let packed = deployed.to_packed();

    let path = std::env::temp_dir().join(format!(
        "superbnn_snapshot_roundtrip_{}.sbnn",
        std::process::id()
    ));
    packed.save_snapshot(&path).expect("snapshot saves");
    let loaded = PackedModel::load_snapshot(&path).expect("snapshot loads");
    std::fs::remove_file(&path).ok();

    for (i, &want_label) in GOLDEN_LABELS.iter().enumerate() {
        let (label, scores) = loaded.classify(&data.images, i);
        assert_eq!(label, want_label, "cold-started label, sample {i}");
        for c in 0..10 {
            assert_eq!(
                scores[c].to_bits(),
                GOLDEN_SCORE_BITS[i][c],
                "cold-started logit, sample {i} class {c} ({})",
                scores[c]
            );
        }
    }
    // And the full dataset, against the in-memory original.
    assert_bit_identical(&packed, &loaded, &data);
}

/// Snapshots store only primitive state; the SWAR comparator tables and
/// tile spans are rebuilt on load. A fault-injection campaign mutates
/// exactly the state that feeds that rebuild (weight planes, dead-column
/// overrides folded into SWAR biases), so a faulted model is the
/// sharpest test that the rebuild rule matches the mutated tables.
#[test]
fn faulted_model_roundtrip_rebuilds_derived_state_exactly() {
    let (deployed, data) = golden_pipeline();
    let mut packed = deployed.to_packed();
    let mut rng = DeviceRng::seed_from_u64(9);
    let defects = packed.inject_faults(
        &FaultModel::new(0.05, 0.02).expect("valid fault model"),
        &mut rng,
    );
    assert!(defects > 0, "fault campaign drew no defects");
    let loaded = roundtrip(&packed);
    assert_bit_identical(&packed, &loaded, &data);
}

/// The conv pipeline exercises every stage tag of the wire format:
/// conv matrices with their geometry, pool flag vectors, flatten,
/// linear, classifier.
#[test]
fn conv_pipeline_roundtrip_is_bit_identical() {
    let (deployed, data) = golden_conv_pipeline();
    let packed = deployed.to_packed();
    let loaded = roundtrip(&packed);
    assert_bit_identical(&packed, &loaded, &data);
}

/// The encoder is deterministic: same model, same bytes.
#[test]
fn snapshot_encoding_is_deterministic() {
    let (deployed, _) = golden_conv_pipeline();
    let packed = deployed.to_packed();
    assert_eq!(snapshot_bytes(&packed), snapshot_bytes(&packed));
}

/// Corrupt files must come back as typed errors, never panics.
#[test]
fn corrupt_snapshots_error_cleanly() {
    let (deployed, _) = golden_pipeline();
    let packed = deployed.to_packed();
    let bytes = snapshot_bytes(&packed);

    // Foreign magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        PackedModel::read_snapshot(&mut bad_magic.as_slice()),
        Err(SnapshotError::BadMagic)
    ));

    // Future version.
    let mut bad_version = bytes.clone();
    bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        PackedModel::read_snapshot(&mut bad_version.as_slice()),
        Err(SnapshotError::UnsupportedVersion(99))
    ));

    // Truncated at every coarse prefix length: typed error, no panic.
    for frac in 1..8 {
        let cut = bytes.len() * frac / 8;
        let err =
            PackedModel::read_snapshot(&mut &bytes[..cut]).expect_err("truncated snapshot decoded");
        assert!(
            matches!(err, SnapshotError::Io(_) | SnapshotError::Corrupt(_)),
            "unexpected truncation error at {cut} bytes: {err}"
        );
    }

    // A zeroed input shape violates a structural invariant.
    let mut bad_shape = bytes.clone();
    bad_shape[12..20].copy_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        PackedModel::read_snapshot(&mut bad_shape.as_slice()),
        Err(SnapshotError::Corrupt(_))
    ));

    // Trailing bytes are rejected by the file loader.
    let path = std::env::temp_dir().join(format!(
        "superbnn_snapshot_trailing_{}.sbnn",
        std::process::id()
    ));
    let mut padded = bytes.clone();
    padded.push(0);
    std::fs::write(&path, &padded).expect("write padded snapshot");
    let err = PackedModel::load_snapshot(&path).expect_err("padded file loaded");
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, SnapshotError::Corrupt(_)), "got: {err}");
}
