//! Integration: the hardware cost model reproduces the paper's Table 1
//! exactly, and the clocking experiment lands in the paper's ballpark.

use aqfp_crossbar::cost::{table1, CrossbarCost, TABLE1_PAPER};
use aqfp_device::CellLibrary;
use aqfp_netlist::clocking::{clocking_study, BcmMemory};
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use rand::SeedableRng;

#[test]
fn table1_matches_paper_to_printed_precision() {
    let rows = table1();
    assert_eq!(rows.len(), TABLE1_PAPER.len());
    for (row, &(size, lat, jj, e)) in rows.iter().zip(TABLE1_PAPER.iter()) {
        assert_eq!(row.size, size);
        assert!((row.latency_ps - lat).abs() < 1e-9, "latency at {size}");
        assert_eq!(row.jj_count, jj, "JJ count at {size}");
        assert!((row.energy_aj - e).abs() < 1e-9, "energy at {size}");
    }
}

#[test]
fn growth_trends_are_as_reported() {
    // Table 1's discussion: all three metrics grow, with different trends.
    let mut prev = CrossbarCost::square(4);
    for n in [8usize, 16, 18, 36, 72, 144] {
        let c = CrossbarCost::square(n);
        assert!(c.latency_ps() > prev.latency_ps());
        assert!(c.jj_count() > prev.jj_count());
        assert!(c.energy_per_cycle_aj() > prev.energy_per_cycle_aj());
        prev = c;
    }
}

#[test]
fn clocking_reductions_match_section_4_4() {
    // Larger benchmark, closer to the paper's design sizes.
    let cfg = RandomDagConfig {
        inputs: 64,
        gates: 3000,
        ..Default::default()
    };
    let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(44));
    let results = clocking_study(&base, &[4, 8, 16], &CellLibrary::hstp());
    let r8 = results
        .iter()
        .find(|r| r.phases == 8)
        .unwrap()
        .jj_reduction_vs_4phase;
    let r16 = results
        .iter()
        .find(|r| r.phases == 16)
        .unwrap()
        .jj_reduction_vs_4phase;
    // Paper: ≥ 20.8 % and ≥ 27.3 % on its netlists. Random DAGs should land
    // in the same regime and preserve the ordering.
    assert!(r8 > 0.15, "8-phase saves {r8}");
    assert!(r16 > 0.22, "16-phase saves {r16}");
    assert!(r16 > r8);
}

#[test]
fn bcm_memory_saves_exactly_20_percent() {
    assert!((BcmMemory::reduction_from_4phase(1 << 14, 3) - 0.20).abs() < 1e-12);
}
