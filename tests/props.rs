//! Property-based tests on cross-crate invariants.

use aqfp_crossbar::array::{Crossbar, CrossbarConfig};
use aqfp_crossbar::faults::FaultModel;
use aqfp_crossbar::tile::TilingPlan;
use aqfp_device::{Bit, GrayZone};
use aqfp_netlist::balance::{balance, fanout_is_legal, is_balanced, legalize_fanout};
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use aqfp_sc::number::parse_stream;
use aqfp_sc::{Apc, BitPlane, Bitstream};
use baselines::software::PackedVec;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use superbnn::bnmatch::{bn_match, matched_decision, reference_decision};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{
    deploy, BitMap, DeployedCell, DeployedConv, PackedLayer, PackedTiledMatrix, TiledMatrix,
};
use superbnn::equiv::{DieChecker, Engine, ModelChecker};
use superbnn::spec::{CellSpec, NetSpec};

/// A deterministic pseudo-random ±1 matrix.
fn sign_matrix(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crossbar raw sums equal the signed dot product of ±1 vectors.
    #[test]
    fn crossbar_raw_sum_is_dot_product(
        weights in prop::collection::vec(prop::bool::ANY, 1..40),
        inputs in prop::collection::vec(prop::bool::ANY, 1..40),
    ) {
        let n = weights.len().min(inputs.len());
        let w: Vec<Vec<Bit>> = weights[..n].iter().map(|&b| vec![Bit::from_bool(b)]).collect();
        let a: Vec<Bit> = inputs[..n].iter().map(|&b| Bit::from_bool(b)).collect();
        let xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let expected: i32 = (0..n)
            .map(|i| {
                let wi = if weights[i] { 1 } else { -1 };
                let ai = if inputs[i] { 1 } else { -1 };
                wi * ai
            })
            .sum();
        prop_assert_eq!(xbar.raw_sum(0, &a).unwrap(), expected);
    }

    /// The packed XNOR/popcount dot equals the crossbar raw sum.
    #[test]
    fn popcount_dot_equals_crossbar_sum(
        bits in prop::collection::vec((prop::bool::ANY, prop::bool::ANY), 1..200),
    ) {
        let w: Vec<f32> = bits.iter().map(|&(b, _)| if b { 1.0 } else { -1.0 }).collect();
        let a: Vec<f32> = bits.iter().map(|&(_, b)| if b { 1.0 } else { -1.0 }).collect();
        let packed = PackedVec::from_signs(&w).dot(&PackedVec::from_signs(&a));
        let wcol: Vec<Vec<Bit>> = w.iter().map(|&v| vec![Bit::from_sign(v as f64)]).collect();
        let acol: Vec<Bit> = a.iter().map(|&v| Bit::from_sign(v as f64)).collect();
        let xbar = Crossbar::new(CrossbarConfig::default(), wcol).unwrap();
        prop_assert_eq!(packed, xbar.raw_sum(0, &acol).unwrap());
    }

    /// Tiling plans partition the matrix exactly for any geometry.
    #[test]
    fn tiling_always_covers_exactly(
        fan_in in 1usize..300,
        out in 1usize..80,
        max_rows in 1usize..40,
        max_cols in 1usize..40,
    ) {
        let plan = TilingPlan::new(fan_in, out, max_rows, max_cols);
        prop_assert!(plan.covers_exactly());
        prop_assert_eq!(plan.crossbar_count(), plan.row_tiles() * plan.col_tiles());
    }

    /// Stochastic-number round trip: the decoded value of a generated
    /// bipolar stream deviates by at most the binomial bound.
    #[test]
    fn bipolar_roundtrip_within_binomial_bound(
        x in -1.0f64..1.0,
        seed in 0u64..1000,
        len_pow in 6u32..12,
    ) {
        let len = 1usize << len_pow;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = Bitstream::generate_bipolar(x, len, &mut rng);
        let err = (s.bipolar_value() - x).abs();
        // 6σ bound: σ = 2·√(p(1−p)/len) ≤ 1/√len.
        prop_assert!(err < 6.0 / (len as f64).sqrt(), "err {err} at len {len}");
    }

    /// The functional APC equals the gate-level popcount netlist.
    #[test]
    fn apc_gate_level_equivalence(
        word in prop::collection::vec(prop::bool::ANY, 1..12),
    ) {
        let apc = Apc::new(word.len());
        let bits: Vec<Bit> = word.iter().map(|&b| Bit::from_bool(b)).collect();
        prop_assert_eq!(apc.count(&bits), apc.count_gate_level(&bits));
    }

    /// Balancing always yields a legal schedule and preserves function on
    /// random DAGs.
    #[test]
    fn balancing_random_dags_is_sound(seed in 0u64..50) {
        let cfg = RandomDagConfig {
            inputs: 6,
            gates: 40,
            ..Default::default()
        };
        let mut nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let probe: Vec<bool> = (0..6).map(|i| (seed >> i) & 1 == 1).collect();
        let before = nl.eval(&probe).unwrap();
        legalize_fanout(&mut nl);
        prop_assert!(fanout_is_legal(&nl));
        let clock = aqfp_device::ClockScheme::four_phase_5ghz();
        let report = balance(&mut nl, &clock);
        prop_assert!(is_balanced(&nl, &report.stages, report.allowed_skew));
        prop_assert_eq!(nl.eval(&probe).unwrap(), before);
    }

    /// BN matching reproduces the floating-point decision for arbitrary
    /// parameters (away from the exact threshold).
    #[test]
    fn bn_matching_equivalence(
        gamma in -3.0f32..3.0,
        beta in -3.0f32..3.0,
        mean in -5.0f32..5.0,
        var in 0.01f32..9.0,
        alpha in 0.05f32..2.0,
        x in -30i32..30,
    ) {
        let eps = 1e-5f32;
        let m = bn_match(&[gamma], &[beta], &[mean], &[var], &[alpha], eps);
        let xv = x as f64;
        prop_assume!((xv - m.vth[0]).abs() > 1e-6);
        // Skip the degenerate-γ constant channels.
        prop_assume!(gamma.abs() > 1e-6);
        let want = reference_decision(xv, gamma, beta, mean, var, alpha, eps);
        let got = matched_decision(xv, m.vth[0], m.flip[0]);
        prop_assert_eq!(got, want);
    }

    /// The gray-zone law is a valid CDF-like curve: monotone, bounded, and
    /// symmetric about its threshold.
    #[test]
    fn grayzone_law_is_monotone_and_symmetric(
        th in -5.0f64..5.0,
        width in 0.01f64..10.0,
        a in -20.0f64..20.0,
        b in -20.0f64..20.0,
    ) {
        let law = GrayZone::new(th, width);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(law.probability_one(lo) <= law.probability_one(hi) + 1e-12);
        let p = law.probability_one(th + a.abs());
        let q = law.probability_one(th - a.abs());
        prop_assert!((p + q - 1.0).abs() < 1e-9, "symmetry: {p} + {q}");
    }

    /// Packed streams agree with unpacked streams on every operation.
    #[test]
    fn packed_stream_equals_unpacked(
        bits_a in prop::collection::vec(prop::bool::ANY, 1..200),
        bits_b in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        use aqfp_sc::packed::PackedStream;
        let n = bits_a.len().min(bits_b.len());
        let ua = Bitstream::from_bits(bits_a[..n].iter().map(|&b| Bit::from_bool(b)).collect());
        let ub = Bitstream::from_bits(bits_b[..n].iter().map(|&b| Bit::from_bool(b)).collect());
        let pa = PackedStream::from_bitstream(&ua);
        let pb = PackedStream::from_bitstream(&ub);
        prop_assert_eq!(pa.ones(), ua.ones());
        prop_assert_eq!(pa.xnor(&pb).to_bitstream(), ua.xnor(&ub));
        prop_assert_eq!(pa.and(&pb).to_bitstream(), ua.and(&ub));
        prop_assert_eq!(pa.xnor_ones(&pb), ua.xnor(&ub).ones());
        prop_assert_eq!(pa.not().ones(), n - ua.ones());
        prop_assert_eq!(pa.to_bitstream(), ua);
    }

    /// The packed XNOR–popcount GEMM equals the scalar signed-dot
    /// reference for random shapes, ragged (non-multiple-of-64) widths and
    /// batch sizes — bit-exact integer equality.
    #[test]
    fn packed_gemm_equals_scalar_reference(
        out in 1usize..12,
        batch in 1usize..8,
        width in 1usize..300,
        seed in 0u64..500,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = sign_matrix(&mut rng, out * width);
        let a = sign_matrix(&mut rng, batch * width);
        let wt = bnn_nn::Tensor::from_vec(&[out, width], w.clone());
        let at = bnn_nn::Tensor::from_vec(&[batch, width], a.clone());
        let dots = bnn_nn::packed::sign_gemm(
            &bnn_nn::packed::pack_sign_rows(&wt),
            &bnn_nn::packed::pack_sign_rows(&at),
        );
        for o in 0..out {
            for n in 0..batch {
                let expect: i64 = (0..width)
                    .map(|i| (w[o * width + i] * a[n * width + i]) as i64)
                    .sum();
                prop_assert_eq!(dots[o * batch + n], expect, "o {} n {}", o, n);
            }
        }
    }

    /// The packed deploy engine is bit-exactly the scalar digital engine
    /// for arbitrary tile geometries (including non-power-of-two crossbar
    /// rows that bypass the SWAR fast path), thresholds and flips —
    /// checked through the bounded equivalence API so a failure reports a
    /// typed counterexample (input, lane, die) instead of a bare assert.
    #[test]
    fn packed_deploy_matrix_is_bit_exact_vs_scalar(
        fan_in in 1usize..200,
        out in 1usize..20,
        rows in 1usize..40,
        cols in 1usize..16,
        seed in 0u64..1000,
    ) {
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let signs = sign_matrix(&mut rng, fan_in * out);
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-6.0..6.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let checker = DieChecker::new(&TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw));
        let pair = (Engine::ScalarDigital, Engine::PackedDigital);
        if let Err(ce) = checker.check_random(pair, 4, seed ^ 0xD1E) {
            prop_assert!(false, "equivalence broken: {}", ce);
        }
    }

    /// Fault injection (stuck cells + dead columns) flows through the
    /// packed path without panics on boundary words and stays bit-exact
    /// with the scalar digital engine.
    #[test]
    fn packed_engine_tracks_faults_bit_exactly(
        fan_in in 1usize..150,
        out in 1usize..12,
        rows in 1usize..24,
        stuck in 0usize..3,
        seed in 0u64..500,
    ) {
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: 8,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let signs = sign_matrix(&mut rng, fan_in * out);
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let mut m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw);
        let model = FaultModel::new(0.2 * stuck as f64, 0.15 * stuck as f64).unwrap();
        m.inject_faults(&model, &mut rng);
        // Lowering a faulted matrix carries the fault state into every
        // engine the checker drives.
        let checker = DieChecker::new(&m);
        let pair = (Engine::ScalarDigital, Engine::PackedDigital);
        if let Err(ce) = checker.check_random(pair, 3, seed ^ 0xFA) {
            prop_assert!(false, "equivalence broken under faults: {}", ce);
        }
    }

    /// Random fault draws injected *after* lowering (word masks on the
    /// packed bitplanes, SWAR-bias dead folds) classify bit-identically to
    /// the scalar path (`apply_stuck_cells` on the tile crossbars +
    /// `classify_digital`) — the invariant the Monte Carlo robustness
    /// engine rests on. Also checks both engines draw the same defect
    /// count and that re-lowering the faulted deployment agrees with
    /// in-place packed injection.
    #[test]
    fn packed_fault_injection_matches_scalar_apply_and_classify(
        rows in 1usize..24,
        cols in 1usize..12,
        hidden in 4usize..24,
        stuck in 0u8..4,
        dead in 0u8..3,
        seed in 0u64..400,
    ) {
        use aqfp_device::{DeviceRng, SeedableRng};
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 6, 6], &[hidden], 4);
        let model = spec.build_software(&hw, seed);
        let fm = FaultModel::new(0.25 * stuck as f64, 0.5 * dead as f64).unwrap();
        // Scalar reference: faults applied to the deployed tile crossbars.
        let mut scalar = deploy(&spec, &model, &hw).unwrap();
        let scalar_defects =
            scalar.inject_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ 0xFA17));
        // Packed path: the same draw injected into the lowered pipeline.
        let mut packed = deploy(&spec, &model, &hw).unwrap().to_packed();
        let packed_defects =
            packed.inject_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ 0xFA17));
        prop_assert_eq!(scalar_defects, packed_defects);
        // Re-lowering the faulted scalar deployment is a third witness.
        let relowered = scalar.to_packed();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let images = bnn_nn::Tensor::from_vec(
            &[3, 1, 6, 6],
            (0..3 * 36).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        // The equivalence checker walks the faulted scalar deployment and
        // its lowering cell by cell, localizing any divergence.
        let checker = ModelChecker::new(&scalar);
        for i in 0..3 {
            let want = scalar.classify_digital(&images, i);
            prop_assert_eq!(packed.classify(&images, i), want.clone(), "sample {}", i);
            prop_assert_eq!(relowered.classify(&images, i), want, "relowered sample {}", i);
            let plane = BitMap::from_tensor_sample(&images, i).to_plane();
            let pair = (Engine::ScalarDigital, Engine::PackedDigital);
            if let Err(ce) = checker.check_plane(pair, &plane) {
                prop_assert!(false, "equivalence broken on faulted model: {}", ce);
            }
        }
    }

    /// The undo journal restores a packed model bit-for-bit — weight
    /// planes, popcount spans, SWAR lane biases, dead-override tables —
    /// after patch → evaluate → revert, across ragged tile geometries and
    /// repeated trials on the same instance (the clone-free sweep loop).
    #[test]
    fn fault_journal_roundtrip_restores_the_model_bit_for_bit(
        rows in 1usize..24,
        cols in 1usize..12,
        hidden in 4usize..20,
        stuck in 0u8..4,
        dead in 0u8..3,
        seed in 0u64..400,
    ) {
        use aqfp_crossbar::faults::PatchJournal;
        use aqfp_device::{DeviceRng, SeedableRng};
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 6, 6], &[hidden], 4);
        let model = spec.build_software(&hw, seed);
        let fm = FaultModel::new(0.25 * stuck as f64, 0.5 * dead as f64).unwrap();
        let pristine = deploy(&spec, &model, &hw).unwrap().to_packed();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x10AD);
        let images = bnn_nn::Tensor::from_vec(
            &[1, 1, 6, 6],
            (0..36).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let mut patched = pristine.clone();
        let mut journal = PatchJournal::new();
        for trial in 0..3u64 {
            // The journaled injection lands exactly the plain-injection
            // state (same RNG, same defect count, same packed words)...
            let defects = patched.inject_faults_journaled(
                &fm, &mut DeviceRng::seed_from_u64(seed ^ trial), &mut journal,
            );
            let mut witness = pristine.clone();
            prop_assert_eq!(
                witness.inject_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ trial)),
                defects
            );
            prop_assert_eq!(&patched, &witness, "patched state, trial {}", trial);
            // ...survives an evaluation...
            let _ = patched.classify(&images, 0);
            // ...and reverts to the pristine model, ready for the next
            // trial without re-cloning.
            patched.revert_faults(&mut journal);
            prop_assert_eq!(&patched, &pristine, "reverted state, trial {}", trial);
            prop_assert!(journal.is_empty(), "journal drained, trial {}", trial);
        }
    }

    /// Counter-mode stochastic classification is a pure function of its
    /// `(seed, sample)` coordinates on random ragged geometries: walking
    /// the batch in reverse order reproduces identical labels and scores.
    #[test]
    fn counter_mode_classification_is_order_free(
        rows in 4usize..24,
        cols in 2usize..12,
        hidden in 4usize..20,
        seed in 0u64..400,
    ) {
        use aqfp_sc::CounterStream;
        use superbnn::deploy::RngMode;
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            grayzone_ua: 6.0,
            bitstream_len: 16,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 6, 6], &[hidden], 4);
        let model = spec.build_software(&hw, seed);
        let packed = deploy(&spec, &model, &hw).unwrap().to_packed();
        let tables = packed.stochastic_tables_mode(
            &aqfp_device::VariationModel::nominal(),
            RngMode::Counter,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC7);
        let images = bnn_nn::Tensor::from_vec(
            &[3, 1, 6, 6],
            (0..3 * 36).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let root = CounterStream::from_seed(seed);
        let forward: Vec<_> = (0..3)
            .map(|i| packed.classify_stochastic_ctr(&tables, &images, i, &root.derive(i as u64)))
            .collect();
        for i in (0..3).rev() {
            prop_assert_eq!(
                packed.classify_stochastic_ctr(&tables, &images, i, &root.derive(i as u64)),
                forward[i].clone(),
                "sample {}", i
            );
        }
    }

    /// The word-level bitplane im2col gathers exactly the scalar
    /// receptive fields for arbitrary conv geometries (random kernel,
    /// stride, padding, ragged channel counts and non-square inputs).
    #[test]
    fn packed_im2col_matches_scalar_receptive_fields(
        c in 1usize..5,
        h in 1usize..9,
        w in 1usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..500,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: Vec<Bit> = (0..c * h * w).map(|_| Bit::from_bool(rng.gen())).collect();
        let map = BitMap::from_bits(c, h, w, bits);
        let fields = aqfp_sc::bitplane::packed_im2col(
            &map.to_plane(), c, h, w, k, stride, pad, false,
        );
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        prop_assert_eq!((fields.rows(), fields.width()), (oh * ow, c * k * k));
        for oy in 0..oh {
            for ox in 0..ow {
                let expect = map.receptive_field(oy, ox, k, stride, pad);
                prop_assert_eq!(
                    fields.row_plane(oy * ow + ox).to_bits(),
                    expect,
                    "pixel ({}, {})", oy, ox
                );
            }
        }
    }

    /// A lowered packed conv (+ pool) stage sequence is bit-exactly the
    /// scalar digital conv cell for random geometries, thresholds, flips
    /// and tile shapes — the conv analogue of
    /// `packed_deploy_matrix_is_bit_exact_vs_scalar`.
    #[test]
    fn packed_conv_pipeline_is_bit_exact_vs_scalar(
        in_c in 1usize..4,
        out_c in 1usize..6,
        h in 2usize..8,
        w in 2usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        rows in 1usize..24,
        cols in 1usize..12,
        pool in prop::bool::ANY,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        // Pooling needs even pre-pool spatial dims.
        let pool = pool && oh % 2 == 0 && ow % 2 == 0;
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        let signs = sign_matrix(&mut rng, fan_in * out_c);
        let vth: Vec<f64> = (0..out_c).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let flips: Vec<bool> = (0..out_c).map(|_| rng.gen()).collect();
        let cell = DeployedConv::new(
            &signs, in_c, out_c, k, stride, pad, pool, vth, flips, &hw,
        );
        let stages = PackedLayer::lower(&DeployedCell::Conv(cell.clone()));
        prop_assert_eq!(stages.len(), 1 + pool as usize);
        for salt in 0..3u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (salt << 32));
            let bits: Vec<Bit> = (0..in_c * h * w).map(|_| Bit::from_bool(rng.gen())).collect();
            let map = BitMap::from_bits(in_c, h, w, bits);
            let scalar = cell.forward_digital(&map);
            let mut plane = map.to_plane();
            let mut shape = [in_c, h, w];
            for stage in &stages {
                let (next, next_shape) = stage.forward(plane, shape);
                plane = next;
                shape = next_shape;
            }
            prop_assert_eq!(shape, [scalar.c, scalar.h, scalar.w], "salt {}", salt);
            prop_assert_eq!(plane.to_bits(), scalar.bits(), "salt {}", salt);
        }
    }

    /// An end-to-end conv model (binarize → conv → flatten → classifier)
    /// with random geometry lowers through `PackedModel` and classifies
    /// bit-identically to `classify_digital` — logits and labels.
    #[test]
    fn packed_conv_model_matches_classify_digital(
        out_c in 1usize..5,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..200,
    ) {
        let (c, h, w) = (2usize, 6usize, 6usize);
        prop_assume!(h + 2 * pad >= k);
        let spec = NetSpec {
            input_shape: [c, h, w],
            cells: vec![
                CellSpec::BinarizeInput,
                CellSpec::Conv { in_c: c, out_c, k, stride, pad, pool: false },
                CellSpec::Flatten,
                CellSpec::Classifier {
                    in_f: {
                        let s = ((h + 2 * pad - k) / stride + 1)
                            * ((w + 2 * pad - k) / stride + 1);
                        out_c * s
                    },
                    classes: 4,
                },
            ],
        };
        let hw = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            ..Default::default()
        };
        let model = spec.build_software(&hw, seed);
        let deployed = deploy(&spec, &model, &hw).unwrap();
        let packed = deployed.to_packed();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let n = 2usize;
        let images = bnn_nn::Tensor::from_vec(
            &[n, c, h, w],
            (0..n * c * h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        for i in 0..n {
            prop_assert_eq!(
                packed.classify(&images, i),
                deployed.classify_digital(&images, i),
                "sample {}", i
            );
        }
    }

    /// Fault injection through the lowered *conv* pipeline (faults land in
    /// the conv stage's packed im2col weights) stays bit-identical to the
    /// faulted scalar conv reference.
    #[test]
    fn packed_conv_fault_injection_matches_scalar(
        out_c in 1usize..5,
        k in 1usize..4,
        rows in 1usize..16,
        stuck in 0u8..3,
        seed in 0u64..200,
    ) {
        use aqfp_device::{DeviceRng, SeedableRng};
        let (c, h, w) = (2usize, 6usize, 6usize);
        let s = (h - k + 1) * (w - k + 1);
        let spec = NetSpec {
            input_shape: [c, h, w],
            cells: vec![
                CellSpec::BinarizeInput,
                CellSpec::Conv { in_c: c, out_c, k, stride: 1, pad: 0, pool: false },
                CellSpec::Flatten,
                CellSpec::Classifier { in_f: out_c * s, classes: 4 },
            ],
        };
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: 8,
            ..Default::default()
        };
        let model = spec.build_software(&hw, seed);
        let fm = FaultModel::new(0.3 * stuck as f64, 0.2 * stuck as f64).unwrap();
        let mut scalar = deploy(&spec, &model, &hw).unwrap();
        scalar.inject_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ 0xC0DE));
        let mut packed = deploy(&spec, &model, &hw).unwrap().to_packed();
        packed.inject_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ 0xC0DE));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD00D);
        let images = bnn_nn::Tensor::from_vec(
            &[2, c, h, w],
            (0..2 * c * h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        for i in 0..2 {
            prop_assert_eq!(
                packed.classify(&images, i),
                scalar.classify_digital(&images, i),
                "sample {}", i
            );
        }
    }

    /// The packed stochastic engine consumes the RNG exactly like the
    /// scalar SC datapath: same seed ⇒ same per-element flip decisions ⇒
    /// identical outputs — over ragged tile geometries, random thresholds,
    /// flips, windows, gray-zone widths and fault draws.
    #[test]
    fn packed_stochastic_matrix_is_seed_matched_with_scalar(
        fan_in in 1usize..160,
        out in 1usize..14,
        rows in 1usize..40,
        cols in 1usize..16,
        window in 1usize..24,
        grayzone in 1u8..16,
        stuck in 0u8..3,
        seed in 0u64..1000,
    ) {
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            bitstream_len: window,
            grayzone_ua: grayzone as f64,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let signs = sign_matrix(&mut rng, fan_in * out);
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let mut m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw);
        if stuck > 0 {
            let fm = FaultModel::new(0.15 * stuck as f64, 0.1 * stuck as f64).unwrap();
            m.inject_faults(&fm, &mut rng);
        }
        let packed = PackedTiledMatrix::from_tiled(&m);
        let tables = packed.stochastic_tables(&aqfp_device::VariationModel::nominal());
        let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF1);
        let mut packed_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF1);
        for _ in 0..3 {
            let input: Vec<Bit> = (0..fan_in).map(|_| Bit::from_bool(rng.gen())).collect();
            let scalar = m.forward(&input, &mut scalar_rng);
            let plane = packed.forward_stochastic(
                &tables,
                &BitPlane::from_bits(&input),
                &mut packed_rng,
            );
            prop_assert_eq!(plane.to_bits(), scalar);
        }
        // The RNG streams stayed aligned through every draw.
        prop_assert_eq!(scalar_rng.gen::<u64>(), packed_rng.gen::<u64>());
    }

    /// In the gray-zone → 0 limit (variation width scale 0) the packed
    /// stochastic engine is the digital engine, bit for bit, and touches
    /// no RNG.
    #[test]
    fn packed_stochastic_zero_width_is_the_digital_engine(
        fan_in in 1usize..120,
        out in 1usize..10,
        rows in 1usize..24,
        seed in 0u64..600,
    ) {
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: 8,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let signs = sign_matrix(&mut rng, fan_in * out);
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let zero = aqfp_device::VariationModel::new(0.0, 0.0, 0.0).unwrap();
        let tables = packed.stochastic_tables(&zero);
        let mut draw_rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let input: Vec<Bit> = (0..fan_in).map(|_| Bit::from_bool(rng.gen())).collect();
            let plane = packed.forward_stochastic(
                &tables,
                &BitPlane::from_bits(&input),
                &mut draw_rng,
            );
            prop_assert_eq!(plane.to_bits(), m.forward_digital(&input));
        }
        let mut untouched = rand::rngs::StdRng::seed_from_u64(1);
        prop_assert_eq!(draw_rng.gen::<u64>(), untouched.gen::<u64>());
    }

    /// Model level, dense pipeline: `PackedModel::classify_stochastic`
    /// reproduces `DeployedModel::classify` — labels and scores — from the
    /// same seed, including under device-parameter variation applied to
    /// the scalar side.
    #[test]
    fn packed_stochastic_model_matches_scalar_classify(
        rows in 1usize..24,
        cols in 1usize..12,
        hidden in 4usize..24,
        window in 1usize..12,
        vary in prop::bool::ANY,
        seed in 0u64..400,
    ) {
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            bitstream_len: window,
            grayzone_ua: 6.0,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 6, 6], &[hidden], 4);
        let model = spec.build_software(&hw, seed);
        let mut deployed = deploy(&spec, &model, &hw).unwrap();
        let packed = deployed.to_packed();
        let vm = if vary {
            aqfp_device::VariationModel::new(1.7, -0.2, 8.0).unwrap()
        } else {
            aqfp_device::VariationModel::nominal()
        };
        deployed.apply_variation(&vm);
        let tables = packed.stochastic_tables(&vm);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC4FE);
        let n = 2usize;
        let images = bnn_nn::Tensor::from_vec(
            &[n, 1, 6, 6],
            (0..n * 36).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD0);
        let mut packed_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD0);
        for i in 0..n {
            prop_assert_eq!(
                packed.classify_stochastic(&tables, &images, i, &mut packed_rng),
                deployed.classify(&images, i, &mut scalar_rng),
                "sample {}", i
            );
        }
    }

    /// Model level, conv pipeline (conv → pool → flatten → classifier):
    /// the packed stochastic engine walks output pixels, tiles, columns
    /// and cycles in the scalar order, so heterogeneous pipelines stay
    /// seed-matched too.
    #[test]
    fn packed_stochastic_conv_model_matches_scalar_classify(
        out_c in 1usize..5,
        k in 1usize..4,
        pad in 0usize..2,
        pool in prop::bool::ANY,
        window in 1usize..10,
        seed in 0u64..200,
    ) {
        let (c, h, w) = (2usize, 6usize, 6usize);
        prop_assume!(h + 2 * pad >= k);
        let s = (h + 2 * pad - k) + 1;
        let pool = pool && s % 2 == 0;
        let feat = if pool { s / 2 } else { s };
        let spec = NetSpec {
            input_shape: [c, h, w],
            cells: vec![
                CellSpec::BinarizeInput,
                CellSpec::Conv { in_c: c, out_c, k, stride: 1, pad, pool },
                CellSpec::Flatten,
                CellSpec::Classifier { in_f: out_c * feat * feat, classes: 4 },
            ],
        };
        let hw = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            bitstream_len: window,
            grayzone_ua: 6.0,
            ..Default::default()
        };
        let model = spec.build_software(&hw, seed);
        let deployed = deploy(&spec, &model, &hw).unwrap();
        let packed = deployed.to_packed();
        let tables = packed.stochastic_tables(&aqfp_device::VariationModel::nominal());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let images = bnn_nn::Tensor::from_vec(
            &[2, c, h, w],
            (0..2 * c * h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE0);
        let mut packed_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE0);
        for i in 0..2 {
            prop_assert_eq!(
                packed.classify_stochastic(&tables, &images, i, &mut packed_rng),
                deployed.classify(&images, i, &mut scalar_rng),
                "sample {}", i
            );
        }
    }

    /// `ones_prefix` is consistent with `ones` of a truncated stream.
    #[test]
    fn packed_prefix_counts_are_consistent(
        bits in prop::collection::vec(prop::bool::ANY, 1..300),
        cut in 0usize..300,
    ) {
        use aqfp_sc::packed::PackedStream;
        let ub = Bitstream::from_bits(bits.iter().map(|&b| Bit::from_bool(b)).collect());
        let p = PackedStream::from_bitstream(&ub);
        let cut = cut.min(bits.len());
        let expect = bits[..cut].iter().filter(|&&b| b).count();
        prop_assert_eq!(p.ones_prefix(cut), expect);
    }

    /// Synthesis optimization preserves function and never grows JJ cost.
    #[test]
    fn synth_preserves_function_on_random_dags(seed in 0u64..40) {
        use aqfp_device::CellLibrary;
        use aqfp_netlist::synth::optimize;
        let cfg = RandomDagConfig {
            inputs: 8,
            gates: 60,
            ..Default::default()
        };
        let nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let (opt, report) = optimize(&nl, &CellLibrary::hstp());
        prop_assert!(report.jj_after <= report.jj_before);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        for _ in 0..16 {
            let inputs: Vec<bool> = (0..nl.input_count())
                .map(|_| rand::Rng::gen(&mut rng))
                .collect();
            prop_assert_eq!(nl.eval(&inputs).unwrap(), opt.eval(&inputs).unwrap());
        }
    }

    /// The wide-word datapath's width invariant: the fused XNOR+vote GEMM
    /// tile kernel is bit-identical between the scalar `u64` word and the
    /// 4-lane `V256` chunk on random ragged geometries — including
    /// faulted states (stuck cells and dead columns folded into the SWAR
    /// biases) and pixel counts that leave partial vector chunks — and
    /// both agree with the per-plane scalar vote kernel.
    #[test]
    fn packed_gemm_kernel_is_width_invariant(
        fan_in in 1usize..200,
        out in 1usize..14,
        rows in 1usize..40,
        n in 1usize..140,
        stuck in 0u8..3,
        seed in 0u64..800,
    ) {
        use aqfp_sc::{PackedMatrix, V256};
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: 8,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let signs = sign_matrix(&mut rng, fan_in * out);
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let mut m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw);
        if stuck > 0 {
            let fm = FaultModel::new(0.15 * stuck as f64, 0.2 * stuck as f64).unwrap();
            m.inject_faults(&fm, &mut rng);
        }
        let checker = DieChecker::new(&m);
        let packed = checker.packed();
        let mut acts = PackedMatrix::zeros(n, fan_in);
        for p in 0..n {
            for i in 0..fan_in {
                if rng.gen() {
                    acts.set(p, i, true);
                }
            }
        }
        let narrow = packed.forward_matrix_as::<u64>(&acts);
        let wide = packed.forward_matrix_as::<V256>(&acts);
        prop_assert_eq!(narrow.storage(), wide.storage(), "u64 vs V256");
        // The per-plane scalar vote kernel must agree with the blocked
        // GEMM kernel — checked through the equivalence API so a lane
        // mismatch reports a typed counterexample.
        for p in (0..n).step_by((n / 3).max(1)) {
            let pair = (Engine::PackedDigital, Engine::PackedSimd);
            if let Err(ce) = checker.check(pair, &acts.row_plane(p)) {
                prop_assert!(false, "width invariant broken at pixel {}: {}", p, ce);
            }
        }
    }

    /// The event-driven delta engine screens bit-identically to the
    /// full-forward engine on random ragged MLP and conv geometries:
    /// the whole `ScreeningReport` — detection matrix, greedy cover,
    /// coverage ratios, sealed probes — must match field for field over
    /// every targeted fault class (or fail with the identical typed
    /// error on degenerate universes).
    #[test]
    fn delta_screening_matches_full_on_ragged_geometries(
        rows in 4usize..20,
        cols in 2usize..10,
        hidden in 4usize..16,
        conv in prop::bool::ANY,
        seed in 0u64..300,
    ) {
        use superbnn::screening::{generate_probes, synthesize_probes, ScreenEngine, ScreeningConfig};
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let spec = if conv {
            NetSpec::vgg_small([1, 8, 8], 4, 5)
        } else {
            NetSpec::mlp(&[1, 6, 6], &[hidden], 5)
        };
        let model = spec.build_software(&hw, seed);
        let packed = deploy(&spec, &model, &hw).unwrap().to_packed();
        let input_len: usize = packed.input_shape().iter().product();
        let candidates = synthesize_probes(input_len, 12, seed ^ 0xD17A);
        let cfg = ScreeningConfig::default()
            .with_fault_classes(48)
            .with_max_vectors(8)
            .with_seed(seed)
            .with_workers(2);
        let full = generate_probes(&packed, &candidates, &cfg.with_engine(ScreenEngine::Full));
        let delta = generate_probes(&packed, &candidates, &cfg.with_engine(ScreenEngine::Delta));
        prop_assert_eq!(full, delta);
    }

    /// Delta evaluation composes with the undo journal exactly like the
    /// full engine: patch → fault-cone classify → revert leaves the
    /// model bit-identical to pristine, the shared activation cache
    /// stays valid across trials, and every trial's delta labels/scores
    /// equal the patched model's full forward.
    #[test]
    fn delta_eval_commutes_with_the_fault_journal(
        rows in 4usize..20,
        cols in 2usize..10,
        hidden in 4usize..16,
        seed in 0u64..300,
    ) {
        use aqfp_crossbar::faults::PatchJournal;
        use aqfp_device::{DeviceRng, SeedableRng};
        use superbnn::deploy::{ActivationCache, DirtyChannels};
        use superbnn::screening::synthesize_probes;
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 6, 6], &[hidden], 5);
        let model = spec.build_software(&hw, seed);
        let pristine = deploy(&spec, &model, &hw).unwrap().to_packed();
        let planes = synthesize_probes(36, 6, seed ^ 0xCAFE);
        let cache = ActivationCache::new(&pristine, &planes);
        let fm = FaultModel::new(0.05, 0.02).unwrap();
        let mut m = pristine.clone();
        let mut journal = PatchJournal::new();
        for trial in 0..3u64 {
            let draws = m.draw_faults(&fm, &mut DeviceRng::seed_from_u64(seed ^ trial));
            m.apply_draws_journaled(&draws, &mut journal);
            let dirty = DirtyChannels::from_draws(&m, &draws);
            let got = m.delta_classify_planes(&cache, &dirty);
            let want = m.classify_planes(&planes);
            prop_assert_eq!(got, want, "trial {}", trial);
            m.revert_faults(&mut journal);
            prop_assert_eq!(&m, &pristine, "reverted state, trial {}", trial);
            prop_assert!(journal.is_empty(), "journal drained, trial {}", trial);
        }
        // The cache the trials shared is still the pristine model's
        // trace — rebuilding it from scratch lands the identical bits.
        prop_assert_eq!(&cache, &ActivationCache::new(&pristine, &planes));
    }

    /// The Stanh FSM output is a valid stream whose value has the input's
    /// sign for clearly non-zero inputs.
    #[test]
    fn stanh_tracks_input_sign(
        mag in 0.4f64..0.95,
        positive in prop::bool::ANY,
        states in 2u32..10,
    ) {
        use aqfp_sc::fsm::StanhFsm;
        use aqfp_sc::packed::PackedStream;
        let x = if positive { mag } else { -mag };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = PackedStream::generate_bipolar(x, 16_384, &mut rng);
        let y = StanhFsm::new(states * 2).run(&s).bipolar_value();
        prop_assert!((y > 0.0) == positive, "x={x} y={y}");
    }
}

/// Deterministic boundary sweep of the wide-word GEMM kernel: pixel
/// counts that leave 1–3 trailing `u64` words (a partial `V256` chunk at
/// the end of a 64-pixel block) and row geometries with 1–3 words per
/// row, crossed — exactly the edges where a lane-indexing bug would
/// read or write garbage pixels.
#[test]
fn packed_gemm_width_boundary_trailing_words() {
    use aqfp_sc::{PackedMatrix, V256};
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 8,
        ..Default::default()
    };
    // 27 = single narrow tile (lane rounded up), 72/144 = ragged last
    // tile, 64/128 = exact whole words.
    for &fan_in in &[27usize, 64, 72, 128, 144] {
        let out = 6usize;
        let signs: Vec<f32> = (0..fan_in * out)
            .map(|i| if (i * 7 + 3) % 5 < 2 { 1.0 } else { -1.0 })
            .collect();
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.4 - 1.1).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &hw);
        let packed = PackedTiledMatrix::from_tiled(&m);
        // 1..=5 covers every trailing-lane residue of a V256 chunk;
        // 63..=67 covers the same residues straddling a 64-pixel block.
        for n in (1usize..=5).chain(63..=67) {
            let mut acts = PackedMatrix::zeros(n, fan_in);
            for p in 0..n {
                for i in 0..fan_in {
                    if (p * 31 + i * 13 + fan_in) % 3 == 0 {
                        acts.set(p, i, true);
                    }
                }
            }
            let narrow = packed.forward_matrix_as::<u64>(&acts);
            let wide = packed.forward_matrix_as::<V256>(&acts);
            assert_eq!(
                narrow.storage(),
                wide.storage(),
                "u64/V256 divergence at fan_in {fan_in}, {n} pixels"
            );
            for p in 0..n {
                let plane = packed.forward_plane(&acts.row_plane(p));
                for ch in 0..out {
                    assert_eq!(
                        narrow.get(ch, p),
                        plane.get(ch),
                        "scalar divergence at fan_in {fan_in}, pixel {p}, ch {ch}"
                    );
                }
            }
        }
    }
}

/// Regression: an **empty** fault draw (`&[]`) through the journaled
/// path is a no-op — the model is untouched, the journal stays empty,
/// and the paired `revert_faults` is also a no-op. The pre-fix code
/// tripped the tile-count assert on the empty slice. Both the lowered
/// and the scalar engines get the same semantics.
#[test]
fn empty_fault_draw_is_a_journaled_no_op() {
    use aqfp_crossbar::faults::PatchJournal;
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 6, 6], &[8], 4);
    let model = spec.build_software(&hw, 3);
    let pristine = deploy(&spec, &model, &hw).unwrap().to_packed();
    // Stage 0 is the Flatten rewrite; stage 1 is the first Linear.
    let mut m = pristine.clone();
    let mut journal = PatchJournal::new();
    m.apply_layer_faults_journaled(1, &[], &mut journal);
    assert!(journal.is_empty(), "empty draw must record nothing");
    assert_eq!(m, pristine, "empty draw must not touch the model");
    m.revert_faults(&mut journal);
    assert_eq!(m, pristine, "reverting an empty draw is a no-op");
    // The scalar tiled matrix mirrors the empty-slice semantics.
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let signs = sign_matrix(&mut rng, 36 * 8);
    let vth: Vec<f64> = (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let mut scalar = TiledMatrix::new(&signs, 36, 8, vth, vec![false; 8], &hw);
    let input: Vec<Bit> = (0..36).map(|_| Bit::from_bool(rng.gen())).collect();
    let before = scalar.forward_digital(&input);
    scalar.apply_faults(&[]);
    assert_eq!(scalar.forward_digital(&input), before);
}

/// A plain (non-proptest) regression: the paper's SN examples parse and
/// decode as printed.
#[test]
fn paper_sn_examples_decode() {
    assert!((parse_stream("0100110100").unipolar_value() - 0.4).abs() < 1e-12);
    assert!((parse_stream("1011011101").bipolar_value() - 0.4).abs() < 1e-12);
    assert!((parse_stream("0100100000").bipolar_value() + 0.6).abs() < 1e-12);
}

/// The approximate parallel counter's per-cycle error pattern depends on
/// the bit layout *across* tiles, so the packed stochastic engine
/// transposes its word-mask streams back into cycle words and mirrors
/// `Apc::count_approx` — seed-matched with the scalar engine like the
/// exact path.
#[test]
fn packed_stochastic_matches_scalar_with_approximate_counter() {
    use aqfp_sc::accumulate::CounterKind;
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 16,
        counter: CounterKind::Approximate,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 8, 8], &[16], 4);
    let model = spec.build_software(&hw, 5);
    let deployed = deploy(&spec, &model, &hw).unwrap();
    let packed = deployed.to_packed();
    let tables = packed.stochastic_tables(&aqfp_device::VariationModel::nominal());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let images = bnn_nn::Tensor::from_vec(
        &[3, 1, 8, 8],
        (0..3 * 64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    );
    let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut packed_rng = rand::rngs::StdRng::seed_from_u64(11);
    for i in 0..3 {
        assert_eq!(
            packed.classify_stochastic(&tables, &images, i, &mut packed_rng),
            deployed.classify(&images, i, &mut scalar_rng),
            "sample {i}"
        );
    }
}
