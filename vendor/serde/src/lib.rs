//! Offline vendored stand-in for the `serde` API surface this workspace
//! uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no
//! serialization format crate is in the dependency set yet), so the traits
//! here are markers with blanket impls and the derive macros are no-ops.
//! When a real serialization backend lands, this stub is replaced by the
//! genuine crates without touching any call site.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
