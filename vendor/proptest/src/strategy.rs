//! The [`Strategy`] trait and its implementations for ranges and tuples.

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
