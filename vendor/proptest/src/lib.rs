//! Offline vendored mini property-testing harness.
//!
//! Source-compatible with the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, range/bool/vec/tuple strategies,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`test_runner::ProptestConfig`]. Unlike upstream proptest there is no
//! shrinking — failing inputs are reported verbatim — but generation is
//! fully deterministic (each case's seed is derived from the test name and
//! case index), so failures replay exactly.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible length ranges for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Derives the deterministic per-case RNG. Public for macro use only.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Defines deterministic property tests over sampled inputs.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// runs `body` for `cases` independently sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__seed_rng(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                            $body
                            Ok(())
                        })();
                    if __outcome.is_err() {
                        __rejected += 1;
                    }
                }
                assert!(
                    __rejected < __config.cases,
                    "proptest {}: every case was rejected by prop_assume!",
                    stringify!($name),
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
