//! Runner configuration for the [`proptest!`](crate::proptest) macro.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case's precondition fails.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;
