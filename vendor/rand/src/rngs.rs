//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ seeded
/// through SplitMix64.
///
/// Unlike upstream `rand`, this `StdRng` guarantees a stable stream across
/// versions — reproduction seeds recorded in experiments stay valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    // The packed stochastic engines draw one u64 per Bernoulli word; an
    // un-inlined cross-crate call per draw dominates their inner loop, so
    // ask for inlining explicitly (the xoshiro step is a handful of ALU ops).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
