//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! source-compatible implementations of the traits and types the workspace
//! consumes: [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the reproduction requires (every stochastic experiment in
//! the workspace is driven from explicit seeds).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled "from the standard distribution" via
/// [`Rng::gen`]: uniform over the domain for integers/bool, uniform in
/// `[0, 1)` for floats.
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(offset)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Widen through the unsigned counterpart so the full-domain
                // range (`MIN..=MAX`, wrapped diff = all-ones) yields span
                // 2^64 without overflowing.
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f: $t = SampleStandard::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Closed interval: scale by a fraction in [0, 1] so `hi` is
                // reachable (53 mantissa bits over 2^53 - 1).
                let f = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
            let w = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = rng.gen_range(u64::MIN..=u64::MAX);
        }
    }

    #[test]
    fn inclusive_float_range_is_closed() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
        // A degenerate closed range must return its single point exactly.
        assert_eq!(rng.gen_range(3.5f64..=3.5), 3.5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
