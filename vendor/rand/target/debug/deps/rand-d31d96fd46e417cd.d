/root/repo/vendor/rand/target/debug/deps/rand-d31d96fd46e417cd.d: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/librand-d31d96fd46e417cd.rlib: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/librand-d31d96fd46e417cd.rmeta: src/lib.rs src/rngs.rs src/seq.rs

src/lib.rs:
src/rngs.rs:
src/seq.rs:
