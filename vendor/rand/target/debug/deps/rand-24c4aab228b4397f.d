/root/repo/vendor/rand/target/debug/deps/rand-24c4aab228b4397f.d: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/rand-24c4aab228b4397f: src/lib.rs src/rngs.rs src/seq.rs

src/lib.rs:
src/rngs.rs:
src/seq.rs:
