//! Offline vendored mini benchmarking harness.
//!
//! Source-compatible with the subset of `criterion` this workspace uses:
//! [`Criterion`], benchmark groups, `bench_function`, `iter`/`iter_batched`,
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's statistical machinery it times each benchmark
//! with a short calibrated loop and prints the median per-iteration time —
//! enough to track hot-path regressions without any external dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks `f` directly under the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        run_one(&id, sample_size, time, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&id, sample_size, self.criterion.measurement_time, f);
        self
    }

    /// Marks the group complete (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, time: Duration, mut f: F) {
    // One calibration pass to size the iteration count, then `sample_size`
    // measured samples; report the median per-iteration time.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = time.max(Duration::from_millis(10)) / (sample_size.max(1) as u32);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{id:<48} median {}", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:8.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
