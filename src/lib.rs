//! Root umbrella crate for the SupeRBNN reproduction; see the member crates.
pub use superbnn;
