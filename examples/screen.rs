//! ATPG die screening on the digits MLP: enumerate the structural fault
//! universe of the lowered model, pick the smallest probe-vector set
//! that distinguishes each fault class from the golden die, seal it into
//! a binary probe file, and replay it against a snapshot-cold-started
//! replica — clean on the golden die, flagged under an injected defect.
//!
//! Run with:
//! `cargo run --release --example screen -- [--fault-classes N]
//! [--target-coverage F] [--max-vectors N] [--eval N] [--synth N]
//! [--seed N] [--workers N] [--engine full|delta] [--verify]`
//! (CI smoke runs `--fault-classes 32 --target-coverage 0.95 --verify`.)
//!
//! ATPG defaults to the event-driven **delta** engine (cached clean
//! activations + fault-cone replay); `--engine full` forces the plain
//! full-forward path, and `--verify` runs both, prints both timings, and
//! asserts the reports are identical.
//!
//! Two coverage numbers print, matching ATPG convention: **fault
//! coverage** is detected / targeted over the enumerated classes;
//! **test coverage** is detected / detectable — classes no input can
//! distinguish in the digital limit (tile comparator and majority vote
//! both away from margin) are censused, not hidden, but they bound any
//! vector selection, so the quality gate reads test coverage.

use bnn_datasets::{digits::generate_digits, SynthConfig};
use std::time::Instant;
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::screening::{
    generate_probes, synthesize_probes, ProbeSet, ScreenEngine, ScreeningConfig,
};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn parse_float_flag(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fault_classes = parse_flag(&args, "--fault-classes", 0);
    let target = parse_float_flag(&args, "--target-coverage", 0.95);
    let max_vectors = parse_flag(&args, "--max-vectors", 64);
    let eval_candidates = parse_flag(&args, "--eval", 48);
    let synth_candidates = parse_flag(&args, "--synth", 80);
    let seed = parse_flag(&args, "--seed", 7) as u64;
    let workers = parse_flag(
        &args,
        "--workers",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let engine = args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map_or(ScreenEngine::Delta, |v| match v.as_str() {
            "full" => ScreenEngine::Full,
            "delta" => ScreenEngine::Delta,
            other => panic!("--engine wants full|delta, got {other}"),
        });
    let verify = args.iter().any(|a| a == "--verify");

    // The digits MLP at the co-optimized 8×8 / L=32 operating point.
    println!("=== training the digits MLP ===");
    let data = generate_digits(&SynthConfig {
        samples_per_class: 30,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, seed);
    Trainer::new(TrainConfig {
        epochs: 8,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();

    // Candidate pool: natural eval inputs plus synthesized probes
    // (density-swept random planes and striped patterns that push tile
    // partial sums toward comparator margins the eval set never visits).
    let input_len: usize = packed.input_shape().iter().product();
    let mut candidates: Vec<aqfp_sc::BitPlane> = (0..eval_candidates.min(data.len()))
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    candidates.extend(synthesize_probes(
        input_len,
        synth_candidates,
        seed ^ 0x9E0B,
    ));

    let mut cfg = ScreeningConfig::default()
        .with_max_vectors(max_vectors)
        .with_target_coverage(target)
        .with_seed(seed)
        .with_workers(workers)
        .with_engine(engine);
    if fault_classes > 0 {
        cfg = cfg.with_fault_classes(fault_classes);
    }

    println!(
        "=== ATPG [{engine:?}]: {} candidate vectors, budget {max_vectors}, target {target:.2} ===",
        candidates.len()
    );
    let start = Instant::now();
    let report = generate_probes(&packed, &candidates, &cfg).expect("screenable fault universe");
    let secs = start.elapsed().as_secs_f64();

    if verify {
        // Differential gate: the other engine must produce the identical
        // report, and both timings print so the speedup is visible.
        let other = match engine {
            ScreenEngine::Delta => ScreenEngine::Full,
            ScreenEngine::Full => ScreenEngine::Delta,
        };
        let start = Instant::now();
        let cross = generate_probes(&packed, &candidates, &cfg.with_engine(other))
            .expect("screenable fault universe");
        let other_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            report, cross,
            "{engine:?} and {other:?} engines must build identical reports"
        );
        let (delta_s, full_s) = match engine {
            ScreenEngine::Delta => (secs, other_secs),
            ScreenEngine::Full => (other_secs, secs),
        };
        println!(
            "verify: engines agree — delta {delta_s:.2}s vs full {full_s:.2}s ({:.1}x)",
            full_s / delta_s
        );
    }
    println!(
        "fault universe: {} classes total, {} targeted ({} capped), {} detectable by the pool",
        report.universe,
        report.targeted,
        if fault_classes > 0 {
            "seeded sample"
        } else {
            "malignant polarities"
        },
        report.detectable,
    );
    println!(
        "probe set: {} vectors, fault coverage {:.1}% ({}/{}), test coverage {:.1}% ({}/{}), \
         {} undetected classes censused",
        report.probes.len(),
        100.0 * report.coverage,
        report.covered,
        report.targeted,
        100.0 * report.test_coverage(),
        report.covered,
        report.detectable,
        report.undetected.len(),
    );
    println!(
        "ATPG ran in {secs:.2}s — {:.0} fault-class evaluations/s",
        report.targeted as f64 / secs
    );

    // Seal both artifacts and cold-start the fab tester's view: one
    // snapshot, one probe file, no trainer.
    let dir = std::env::temp_dir().join(format!("superbnn_screen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_path = dir.join("die.snap");
    let probe_path = dir.join("die.probes");
    packed.save_snapshot(&snap_path).expect("snapshot");
    report.probes.save(&probe_path).expect("probe set");
    let replica = PackedModel::load_snapshot(&snap_path).expect("replica");
    let probes = ProbeSet::load(&probe_path).expect("probe file");
    let probe_bytes = std::fs::metadata(&probe_path).map_or(0, |m| m.len());
    std::fs::remove_dir_all(&dir).ok();

    // The golden replica screens clean, in milliseconds.
    let start = Instant::now();
    let outcome = probes.screen(&replica);
    let screen_secs = start.elapsed().as_secs_f64();
    assert!(outcome.clean(), "the golden die must screen clean");
    println!(
        "replayed {} probes ({probe_bytes} B on disk) against the snapshot replica \
         in {:.2} ms — clean",
        probes.len(),
        1e3 * screen_secs,
    );

    // A defective die gets flagged: inject one covered fault class.
    let covered_site = report.detected.first().expect("some class is covered");
    let mut defective = replica.clone();
    let mut journal = aqfp_crossbar::faults::PatchJournal::new();
    let dies = defective.layers()[covered_site.layer]
        .matrix()
        .expect("faults target weighted stages")
        .tile_dims()
        .len();
    defective.apply_layer_faults_journaled(
        covered_site.layer,
        &covered_site.fault.to_draws(dies),
        &mut journal,
    );
    let outcome = probes.screen(&defective);
    assert!(!outcome.clean(), "a covered fault class must be flagged");
    println!(
        "injected {:?} → {} of {} probes flagged the die",
        covered_site.fault.kind,
        outcome.detections(),
        probes.len(),
    );

    // The quality gate CI smoke-checks: the chosen vectors cover the
    // target fraction of what the pool can detect, within budget.
    assert!(report.probes.len() <= max_vectors);
    assert!(
        report.test_coverage() >= target,
        "test coverage {:.3} below target {target}",
        report.test_coverage()
    );
    println!("screening gate passed: test coverage ≥ {target:.2} with ≤{max_vectors} vectors");
}
