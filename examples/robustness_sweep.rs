//! Monte Carlo robustness sweeps on the packed deploy engines: train the
//! digits MLP and the objects VGG once each, lower them onto bitplanes,
//! then measure accuracy *distributions* — many independent draws per
//! grid point, fanned across threads.
//!
//! Two campaigns run:
//!
//! 1. **Gray-zone width × fault rate** (digits MLP, packed *stochastic*
//!    engine): every grid point pairs a device-parameter variation
//!    (`scale × ΔIin`, via `VariationModel`) with a fabrication fault
//!    rate, and each trial's seed drives both the fault draw and the SC
//!    switching noise. The packed stochastic engine is seed-matched with
//!    the scalar `DeployedModel::classify` reference (same draws, same
//!    flips) at ~6× its speed — see `BENCH_stochastic.json`.
//! 2. **Fault-only** (objects VGG, packed *digital* engine): the
//!    gray-zone → 0 limit at full XNOR–popcount throughput.
//!
//! Run with:
//! `cargo run --release --example robustness_sweep -- [--trials N] [--eval N]
//! [--rng-mode seed-matched|counter]`
//! (CI smoke runs `--trials 4` on a tiny grid, once per RNG mode.)
//!
//! `--rng-mode` picks the stochastic campaign's noise discipline:
//! `seed-matched` (default) replays the scalar engine's serial draw
//! chain; `counter` derives every draw from its coordinates on a keyed
//! counter stream — same statistics, no serial RNG floor, and results
//! independent of worker count and trial order.

use std::time::Instant;
use superbnn::deploy::RngMode;
use superbnn::experiments::{robustness_campaign, ExperimentScale, RobustnessWorkload};
use superbnn::robustness::{RobustnessReport, SweepConfig};

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn print_report(report: &RobustnessReport) {
    println!(
        "{:>8}  {:>10}  {:>8}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}  {:>9}",
        "Δ scale", "stuck rate", "defects", "mean", "min", "p10", "p50", "p90", "max"
    );
    for p in &report.points {
        let scale = p
            .variation
            .map_or("—".to_string(), |v| format!("{:.1}", v.grayzone_scale()));
        println!(
            "{scale:>8}  {:>10.3}  {:>8.1}  {:>6.3}  {:>6.3}  {:>6.3}  {:>6.3}  {:>6.3}  {:>9.3}",
            p.fault_model.stuck_cell_rate(),
            p.mean_defects,
            p.mean_accuracy,
            p.min_accuracy,
            p.p10_accuracy,
            p.p50_accuracy,
            p.p90_accuracy,
            p.max_accuracy,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = parse_flag(&args, "--trials", 8);
    let eval = parse_flag(&args, "--eval", 30);
    let rng_mode = match args
        .iter()
        .position(|a| a == "--rng-mode")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("seed-matched") => RngMode::SeedMatched,
        Some("counter") => RngMode::Counter,
        Some(other) => panic!("--rng-mode wants seed-matched or counter, got {other}"),
    };

    // Demo scale: small datasets and short training keep the focus on the
    // sweeps themselves (the benches run the ≥100-trial campaigns).
    let scale = ExperimentScale {
        samples_per_class: 60,
        epochs: 15,
        eval_samples: eval,
        width: 8,
        mlp_hidden: [64, 32],
        seed: 7,
    };

    // Campaign 1: gray-zone width × fault rate on the packed stochastic
    // engine. Scale 1.0 is the calibrated 0.4 µA operating point; the
    // wider rows show accuracy eroding as the comparators go noisy on top
    // of whatever the fault draw destroyed.
    let rates = [0.0, 0.02, 0.05];
    let grayzone_scales = [1.0, 8.0, 20.0];
    let cfg = SweepConfig::stuck_cell_grid(&rates, trials, scale.seed)
        .expect("rates are probabilities")
        .with_eval_samples(Some(eval))
        .with_grayzone_scales(&grayzone_scales)
        .expect("scales are non-negative")
        .with_rng_mode(rng_mode);
    println!(
        "=== digits MLP: gray-zone width x fault rate (packed stochastic engine) ===\n\
         {} scales x {} rates x {trials} trials, {eval} eval samples, {} workers, \
         rng_mode {rng_mode:?}",
        grayzone_scales.len(),
        rates.len(),
        cfg.workers
    );
    let start = Instant::now();
    let report = robustness_campaign(&scale, RobustnessWorkload::DigitsMlp, &cfg);
    let secs = start.elapsed().as_secs_f64();
    print_report(&report);
    let total = report.total_trials();
    println!(
        "{total} trials (train + deploy + sweep) in {secs:.1}s — {:.1} trials/s",
        total as f64 / secs
    );
    // The grid is variation-major: the first point is the nominal
    // operating condition (0.4 µA — only the handful of comparator
    // read-outs landing inside the narrow gray-zone are random, so the
    // printed pristine spread is pure SC switching noise) at the
    // pristine fault rate.
    let nominal_clean = &report.points[0];
    assert_eq!(nominal_clean.fault_model.stuck_cell_rate(), 0.0);
    assert_eq!(nominal_clean.variation.unwrap().grayzone_scale(), 1.0);
    assert!(report
        .points
        .iter()
        .flat_map(|p| &p.trials)
        .all(|t| (0.0..=1.0).contains(&t.accuracy)));
    println!(
        "nominal pristine trial spread: {:.3} (SC switching noise only)",
        nominal_clean.max_accuracy - nominal_clean.min_accuracy
    );

    // Campaign 2: fault-only on the packed digital engine (objects VGG).
    let cfg = SweepConfig::stuck_cell_grid(&[0.0, 0.02, 0.05, 0.10], trials, scale.seed)
        .expect("rates are probabilities")
        .with_eval_samples(Some(eval));
    println!("\n=== objects VGG: fault-only (packed digital engine) ===");
    let start = Instant::now();
    let report = robustness_campaign(&scale, RobustnessWorkload::ObjectsVgg, &cfg);
    let secs = start.elapsed().as_secs_f64();
    print_report(&report);
    println!(
        "{} trials (train + deploy + sweep) in {secs:.1}s — {:.1} trials/s",
        report.total_trials(),
        report.total_trials() as f64 / secs
    );
    // The pristine digital grid point must reproduce one deterministic value.
    let clean = &report.points[0];
    assert_eq!(clean.fault_model.stuck_cell_rate(), 0.0);
    assert_eq!(
        clean.min_accuracy, clean.max_accuracy,
        "pristine trials diverged"
    );
}
