//! Monte Carlo robustness sweep on the packed deploy engine: train the
//! digits MLP and the objects VGG once each, lower them onto bitplanes,
//! then measure the accuracy *distribution* under fabrication faults —
//! many independent defect draws per fault rate, fanned across threads.
//!
//! Run with:
//! `cargo run --release --example robustness_sweep -- [--trials N] [--eval N]`
//! (CI smoke runs `--trials 4`.)

use std::time::Instant;
use superbnn::experiments::{robustness_campaign, ExperimentScale, RobustnessWorkload};
use superbnn::robustness::SweepConfig;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = parse_flag(&args, "--trials", 8);
    let eval = parse_flag(&args, "--eval", 30);

    // Demo scale: small datasets and short training keep the focus on the
    // sweep itself (the bench runs the ≥100-trial campaigns).
    let scale = ExperimentScale {
        samples_per_class: 60,
        epochs: 15,
        eval_samples: eval,
        width: 8,
        mlp_hidden: [64, 32],
        seed: 7,
    };
    let rates = [0.0, 0.02, 0.05, 0.10];
    let cfg = SweepConfig::stuck_cell_grid(&rates, trials, scale.seed)
        .expect("rates are probabilities")
        .with_eval_samples(Some(eval));
    println!(
        "robustness sweep: {} rates x {trials} trials, {eval} eval samples, {} workers",
        rates.len(),
        cfg.workers
    );

    for workload in [
        RobustnessWorkload::DigitsMlp,
        RobustnessWorkload::ObjectsVgg,
    ] {
        println!("\n=== {} ===", workload.label());
        let start = Instant::now();
        let report = robustness_campaign(&scale, workload, &cfg);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>10}  {:>8}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}  {:>9}",
            "stuck rate", "defects", "mean", "min", "p10", "p50", "p90", "max"
        );
        for p in &report.points {
            println!(
                "{:>10.3}  {:>8.1}  {:>6.3}  {:>6.3}  {:>6.3}  {:>6.3}  {:>6.3}  {:>9.3}",
                p.fault_model.stuck_cell_rate(),
                p.mean_defects,
                p.mean_accuracy,
                p.min_accuracy,
                p.p10_accuracy,
                p.p50_accuracy,
                p.p90_accuracy,
                p.max_accuracy,
            );
        }
        let total = report.total_trials();
        println!(
            "{total} trials (train + deploy + sweep) in {secs:.1}s — {:.1} trials/s",
            total as f64 / secs
        );
        // The pristine grid point must reproduce one deterministic value.
        let clean = &report.points[0];
        assert_eq!(clean.fault_model.stuck_cell_rate(), 0.0);
        assert_eq!(
            clean.min_accuracy, clean.max_accuracy,
            "pristine trials diverged"
        );
    }
}
