//! Quickstart: train a small randomized-aware BNN, deploy it onto simulated
//! AQFP crossbars, and compare software vs hardware-faithful accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::energy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

fn main() {
    // 1. Data: the synthetic MNIST stand-in (see DESIGN.md §2).
    let data = generate_digits(&SynthConfig {
        samples_per_class: 60,
        ..Default::default()
    });
    let (train, test) = data.split(0.25);
    println!(
        "SynthDigits: {} train / {} test samples",
        train.len(),
        test.len()
    );

    // 2. Hardware configuration: the co-optimized accuracy-first point
    //    (8×8 crossbars whose gray-zone covers typical partial sums; see
    //    the config_search example for how this point is found).
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..HardwareConfig::default()
    };
    println!(
        "Hardware: {}x{} crossbars, ΔIin = {} µA, L = {}, I1(Cs) = {:.2} µA",
        hw.crossbar_rows,
        hw.crossbar_cols,
        hw.grayzone_ua,
        hw.bitstream_len,
        hw.i1_ua()
    );

    // 3. Randomized-aware training (Eq. 7 forward, Eq. 10 backward).
    let spec = NetSpec::mlp(&[1, 16, 16], &[64, 32], 10);
    let mut model = spec.build_software(&hw, 42);
    let trainer = Trainer::new(TrainConfig {
        epochs: 20,
        lr: 0.02,
        noise_warmup_epochs: 13,
        ..Default::default()
    });
    let history = trainer.train(&mut model, &train);
    for h in history.iter().step_by(5) {
        println!(
            "  epoch {:>2}: loss {:.3}, train acc {:.1}%",
            h.epoch,
            h.loss,
            100.0 * h.train_accuracy
        );
    }
    let sw_acc = trainer.evaluate(&mut model, &test);

    // 4. Deployment: BN matching (Eq. 16), weight tiling, SC accumulation.
    let deployed = deploy(&spec, &model, &hw).expect("model was built from this spec");
    let stats = deployed.stats(&hw);
    println!(
        "Deployed onto {} crossbars ({} JJ in the synapse arrays)",
        stats.crossbars, stats.crossbar_jj
    );

    // 5. Hardware-faithful evaluation.
    let mut rng = DeviceRng::seed_from_u64(1);
    let hw_acc = deployed.accuracy(&test, &mut rng, Some(200));
    println!("Software accuracy:          {:.1}%", 100.0 * sw_acc);
    println!("Hardware-faithful accuracy: {:.1}%", 100.0 * hw_acc);

    // 6. Energy estimate (the Table 2/3 "Ours" methodology).
    let report = energy::estimate(&spec, &hw);
    println!(
        "Energy: {:.1} aJ/inference, {:.3e} mW, {:.2e} TOPS/W ({:.2e} with 4.2 K cooling), {:.1} images/ms",
        report.energy_per_inference_aj,
        report.power_mw,
        report.tops_per_watt,
        report.tops_per_watt_cooled,
        report.images_per_ms
    );
}
