//! The batched bit-packed deploy engine on the digits MLP: train briefly,
//! deploy, verify bit-exactness against the scalar digital reference, and
//! compare eval throughput.
//!
//! Run with: `cargo run --release --example packed_deploy`

use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use std::time::Instant;
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

fn main() {
    // A lightly tiled operating point: with 32-row crossbars the 256-wide
    // input spans 8 row tiles, so the deterministic engine's per-tile
    // saturation costs little accuracy (heavier tiling shifts accuracy
    // recovery onto the stochastic SC datapath — see the paper's Fig. 10).
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let data = generate_digits(&SynthConfig {
        samples_per_class: 30,
        ..Default::default()
    });
    let (train, test) = data.split(0.25);
    let spec = NetSpec::mlp(&[1, 16, 16], &[128, 64], 10);
    let mut model = spec.build_software(&hw, 42);
    println!("training the digits MLP (256-128-64-10)...");
    Trainer::new(TrainConfig {
        epochs: 15,
        lr: 0.02,
        noise_warmup_epochs: 10,
        ..Default::default()
    })
    .train(&mut model, &train);

    let software = Trainer::new(TrainConfig::default()).evaluate(&mut model, &test);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let packed = deployed.to_packed();
    let n = test.len();

    // Bit-exactness: every packed prediction equals the scalar digital one.
    let batch = packed.classify_batch(&test.images, None);
    let mut agree = 0usize;
    for (i, got) in batch.iter().enumerate() {
        if *got == deployed.classify_digital(&test.images, i) {
            agree += 1;
        }
    }
    println!("bit-identical predictions: {agree}/{n}");
    assert_eq!(agree, n, "packed and scalar digital engines diverged");

    let start = Instant::now();
    let acc_scalar = deployed.accuracy_digital(&test, None);
    let t_scalar = start.elapsed();
    let start = Instant::now();
    let acc_packed = packed.accuracy(&test, None);
    let t_packed = start.elapsed();
    println!(
        "scalar digital engine: accuracy {:.1}% in {:.1} ms",
        100.0 * acc_scalar,
        t_scalar.as_secs_f64() * 1e3
    );
    println!(
        "packed engine        : accuracy {:.1}% in {:.1} ms  ({:.1}x faster)",
        100.0 * acc_packed,
        t_packed.as_secs_f64() * 1e3,
        t_scalar.as_secs_f64() / t_packed.as_secs_f64()
    );
    assert_eq!(acc_scalar, acc_packed);

    // Context: the software model and the full stochastic datapath. The
    // digital engines are the deterministic (gray-zone -> 0) limit, so a
    // gap against the stochastic engine is the accuracy the SC read-out
    // noise recovers from tile saturation.
    let mut rng = DeviceRng::seed_from_u64(1);
    let start = Instant::now();
    let acc_sto = deployed.accuracy(&test, &mut rng, None);
    let t_sto = start.elapsed();
    println!("software model       : accuracy {:.1}%", 100.0 * software);
    println!(
        "stochastic engine    : accuracy {:.1}% in {:.1} ms",
        100.0 * acc_sto,
        t_sto.as_secs_f64() * 1e3
    );
}
