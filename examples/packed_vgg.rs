//! The packed layer pipeline on the CIFAR-class VGG: lower a deployed
//! VGG-small onto the bitplane substrate, verify bit-exactness against the
//! scalar digital reference, and time every pipeline stage.
//!
//! Run with: `cargo run --release --example packed_vgg`

use bnn_datasets::{objects::generate_objects, SynthConfig};
use std::time::{Duration, Instant};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

fn main() {
    // CIFAR-shaped synthetic images: 3-channel SynthObjects textures.
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let data = generate_objects(&SynthConfig {
        samples_per_class: 8,
        ..Default::default()
    });
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let mut model = spec.build_software(&hw, 7);
    println!("training the objects VGG-small (8-16-32)...");
    Trainer::new(TrainConfig {
        epochs: 2,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut model, &data);

    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let packed = deployed.to_packed();
    let n = data.len();
    println!(
        "pipeline plan: {} stages ({})",
        packed.layers().len(),
        packed
            .layers()
            .iter()
            .map(superbnn::deploy::PackedLayer::name)
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // Bit-exactness: the packed pipeline must reproduce the scalar digital
    // engine on every sample.
    let batch = packed.classify_batch(&data.images, None);
    let mut agree = 0usize;
    for (i, got) in batch.iter().enumerate() {
        if *got == deployed.classify_digital(&data.images, i) {
            agree += 1;
        }
    }
    println!("bit-identical predictions: {agree}/{n}");
    assert_eq!(agree, n, "packed and scalar digital engines diverged");

    // Per-stage timings: drive the plan by hand over the whole batch.
    let reps = 20usize;
    let mut stage_time = vec![Duration::ZERO; packed.layers().len()];
    let batch_planes = superbnn::deploy::PackedModel::pack_batch(&data.images, n);
    let start = Instant::now();
    for _ in 0..reps {
        for s in 0..n {
            let mut plane = batch_planes.row_plane(s);
            let mut shape = packed.input_shape();
            for (li, layer) in packed.layers().iter().enumerate() {
                let t0 = Instant::now();
                let (next, next_shape) = layer.forward(plane, shape);
                stage_time[li] += t0.elapsed();
                plane = next;
                shape = next_shape;
            }
            std::hint::black_box(packed.classifier().scores_plane(&plane));
        }
    }
    let total = start.elapsed();
    println!("\nper-stage timings over {n} samples x {reps} reps:");
    let mut shape = packed.input_shape();
    for (li, layer) in packed.layers().iter().enumerate() {
        let out_shape = layer.out_shape(shape);
        // Packed words a stage moves per sample: input plane + output
        // plane, plus the unfolded im2col field matrix for conv stages —
        // the actual traffic through the wide-word kernels, and the
        // number the per-stage times should be read against.
        let in_words = (shape[0] * shape[1] * shape[2]).div_ceil(64);
        let out_words = (out_shape[0] * out_shape[1] * out_shape[2]).div_ceil(64);
        let field_words = match layer {
            superbnn::deploy::PackedLayer::Conv(c) => {
                let (_, k, _, _) = c.geometry();
                out_shape[1] * out_shape[2] * (shape[0] * k * k).div_ceil(64)
            }
            _ => 0,
        };
        println!(
            "  stage {li:>2} {:<8} {:>3}x{}x{} -> {:>3}x{}x{}  {:>8.2} ms  ({:>4.1}%)  {:>5} words/sample",
            layer.name(),
            shape[0],
            shape[1],
            shape[2],
            out_shape[0],
            out_shape[1],
            out_shape[2],
            stage_time[li].as_secs_f64() * 1e3,
            100.0 * stage_time[li].as_secs_f64() / total.as_secs_f64(),
            in_words + field_words + out_words,
        );
        shape = out_shape;
    }
    println!(
        "  total {:.2} ms  ({:.0} samples/s single-thread)",
        total.as_secs_f64() * 1e3,
        (reps * n) as f64 / total.as_secs_f64()
    );

    // Throughput against the scalar reference.
    let start = Instant::now();
    let acc_scalar = deployed.accuracy_digital(&data, None);
    let t_scalar = start.elapsed();
    let start = Instant::now();
    let acc_packed = packed.accuracy(&data, None);
    let t_packed = start.elapsed();
    println!(
        "\nscalar digital engine: accuracy {:.1}% in {:.1} ms",
        100.0 * acc_scalar,
        t_scalar.as_secs_f64() * 1e3
    );
    println!(
        "packed pipeline      : accuracy {:.1}% in {:.1} ms  ({:.1}x faster)",
        100.0 * acc_packed,
        t_packed.as_secs_f64() * 1e3,
        t_scalar.as_secs_f64() / t_packed.as_secs_f64()
    );
    assert_eq!(acc_scalar, acc_packed);
}
