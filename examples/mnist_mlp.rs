//! Table 3 scenario: the MNIST-class MLP compared against the published
//! CMOS / RSFQ / ERSFQ / SC-AQFP baselines.
//!
//! Run with: `cargo run --release --example mnist_mlp`

use baselines::published::mnist_baselines;
use superbnn::experiments::{table3_ours, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::full();
    scale.epochs = 15;
    println!("Training the MLP on SynthDigits (MNIST stand-in)...");
    let ours = table3_ours(&scale);

    println!("\n=== Table 3: MNIST-class MLP comparison ===");
    println!(
        "{:<12} {:>10} {:>22} {:>22}",
        "Design", "Accuracy", "TOPS/W (no cooling)", "TOPS/W (cooled)"
    );
    for b in mnist_baselines() {
        println!(
            "{:<12} {:>9.1}% {:>22.3e} {:>22}",
            b.name,
            b.accuracy_pct,
            b.tops_per_watt,
            b.tops_per_watt_cooled
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3e}")),
        );
    }
    println!(
        "{:<12} {:>9.1}% {:>22.3e} {:>22.3e}",
        "Ours",
        100.0 * ours.accuracy,
        ours.energy.tops_per_watt,
        ours.energy.tops_per_watt_cooled,
    );
    println!(
        "\n(accuracies are on the synthetic stand-in dataset, so compare the\n\
         *relative* software-vs-hardware gap: software {:.1}% vs deployed {:.1}%)",
        100.0 * ours.software_accuracy,
        100.0 * ours.accuracy
    );

    // The paper's headline: at least two orders of magnitude over the
    // superconducting baselines.
    let ersfq = mnist_baselines()
        .into_iter()
        .find(|b| b.name == "ERSFQ")
        .expect("table contains ERSFQ");
    println!(
        "Ours / ERSFQ efficiency ratio (no cooling): {:.1}x",
        ours.energy.tops_per_watt / ersfq.tops_per_watt
    );
}
