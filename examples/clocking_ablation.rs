//! The Section 4.4 clocking-scheme optimization: how raising the computing
//! clock's phase count removes path-balancing buffers, and how dropping the
//! buffer-chain memory from 4 to 3 phases saves 20 % of its JJs.
//!
//! Run with: `cargo run --release --example clocking_ablation`

use aqfp_device::CellLibrary;
use aqfp_netlist::clocking::{clocking_study, BcmMemory};
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use rand::SeedableRng;

fn main() {
    let lib = CellLibrary::hstp();

    println!("=== Computing part: buffer savings from n-phase clocking ===");
    println!("(paper: ≥20.8% JJ reduction at 8 phases, ≥27.3% at 16)\n");
    for (label, cfg) in [
        ("small (32 in, 600 gates)", RandomDagConfig::default()),
        (
            "large (64 in, 2000 gates)",
            RandomDagConfig {
                inputs: 64,
                gates: 2000,
                ..Default::default()
            },
        ),
    ] {
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(2023));
        let results = clocking_study(&base, &[4, 8, 16], &lib);
        println!("benchmark: {label}");
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>12}",
            "phases", "buffers", "total JJ", "energy (aJ)", "JJ saved"
        );
        for r in &results {
            println!(
                "{:>8} {:>10} {:>12} {:>14.2} {:>11.1}%",
                r.phases,
                r.buffers,
                r.cost.jj_total,
                r.cost.energy_per_cycle_aj,
                100.0 * r.jj_reduction_vs_4phase
            );
        }
        println!();
    }

    println!("=== Memory (BCM): clock-phase reduction ===");
    println!("(paper: 4 → 3 phases saves 20% of the memory JJs)\n");
    println!(
        "{:>10} {:>8} {:>12} {:>10}",
        "capacity", "phases", "total JJ", "saved"
    );
    for bits in [256usize, 4096] {
        for phases in [4u32, 3] {
            let m = BcmMemory::new(bits, phases).expect("valid phase count");
            println!(
                "{:>10} {:>8} {:>12.0} {:>9.1}%",
                bits,
                phases,
                m.total_jj(),
                100.0 * BcmMemory::reduction_from_4phase(bits, phases)
            );
        }
    }
}
