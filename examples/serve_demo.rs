//! Serving quickstart: snapshot a lowered model, cold-start a worker
//! pool from the file, and push a small closed-loop load through it.
//!
//! This is the CI smoke path for the serving layer — it must finish in
//! seconds and asserts the serving invariants (no request dropped, every
//! completion latency recorded) rather than measuring anything. For real
//! numbers run `cargo bench --bench serve_load`.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::Duration;

use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::spec::NetSpec;
use superbnn_serve::{closed_loop, ServeConfig, Server};

fn main() {
    // A small deployed digits MLP; untrained — the demo exercises the
    // serving machinery, not accuracy.
    let hw = HardwareConfig {
        crossbar_rows: 16,
        crossbar_cols: 16,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[64], 10);
    let model = spec.build_software(&hw, 42);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();

    // Save the lowered model, then cold-start purely from the file —
    // the round trip every serving box does.
    let path =
        std::env::temp_dir().join(format!("superbnn_serve_demo_{}.sbnn", std::process::id()));
    packed.save_snapshot(&path).expect("snapshot saves");
    let loaded = PackedModel::load_snapshot(&path).expect("snapshot loads");
    std::fs::remove_file(&path).ok();
    println!("snapshot round trip: ok");

    let data = generate_digits(&SynthConfig {
        samples_per_class: 5,
        ..Default::default()
    });
    let planes: Vec<_> = (0..data.len())
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let server = Server::start(
        loaded,
        ServeConfig {
            workers,
            replicas: workers,
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
        },
    )
    .expect("server starts");

    let report = closed_loop(&server, &planes, 2 * workers, 50);
    let metrics = server.shutdown();
    println!(
        "served {} requests at {:.0} req/s (p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us) \
         over {} batches (mean {:.1})",
        report.completed,
        report.throughput_rps,
        report.p50().as_secs_f64() * 1e6,
        report.p99().as_secs_f64() * 1e6,
        report.p999().as_secs_f64() * 1e6,
        metrics.batches,
        metrics.mean_batch,
    );

    // The smoke invariants CI checks for.
    assert_eq!(report.rejected, 0, "dropped requests");
    assert_eq!(metrics.rejected, 0, "dropped requests (server side)");
    assert_eq!(report.completed, report.offered, "lost requests");
    assert!(!metrics.latency.is_empty(), "empty latency histogram");
    assert_eq!(metrics.latency.count(), metrics.completed);
    println!("serve smoke: ok (zero dropped, non-empty histogram)");
}
