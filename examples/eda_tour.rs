//! A tour of the AQFP EDA substrate: majority-logic synthesis, accumulator
//! gate costing, clocking schemes.
//!
//! The paper's discussion section (Section 7) argues AQFP is viable for
//! general computing because a full EDA stack exists: majority synthesis,
//! buffer/splitter insertion, n-phase clocking. This example walks the
//! pieces this reproduction builds:
//!
//! 1. synthesize an AND/OR/INV ripple adder down to native majority cells;
//! 2. cost the SC accumulation counters (Section 4.3's design choice);
//! 3. compare conventional 4-phase, high-phase and delay-line clocking.
//!
//! Run with: `cargo run --release --example eda_tour`

use aqfp_device::CellLibrary;
use aqfp_netlist::builders::ripple_adder_aoi;
use aqfp_netlist::clocking::{clocking_study, delay_line_study};
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use aqfp_netlist::synth::optimize;
use aqfp_sc::apc::counter_comparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let lib = CellLibrary::hstp();

    // 1. Majority re-synthesis: a 16-bit adder as a CMOS-style AOI netlist
    //    collapses onto native MAJ cells.
    let (aoi, _, _, _) = ripple_adder_aoi(16);
    let (optimized, report) = optimize(&aoi, &lib);
    println!("majority synthesis of a 16-bit AOI ripple adder:");
    println!(
        "  {} gates / {} JJ  ->  {} gates / {} JJ  ({:.1}% JJ saved)",
        report.gates_before,
        report.jj_before,
        report.gates_after,
        report.jj_after,
        100.0 * report.jj_saving()
    );
    let majs = optimized
        .gate_histogram()
        .get(&aqfp_device::GateKind::Majority)
        .copied()
        .unwrap_or(0);
    println!("  majority cells recovered: {majs} (one per carry)");

    // 2. The SC accumulator choice (Section 4.3): APC vs the conventional
    //    accumulative parallel counter, for a 16-crossbar column group
    //    observed over a 32-cycle window.
    let clock = aqfp_device::ClockScheme::four_phase_5ghz();
    let cmp = counter_comparison(16, 32, &lib, &clock);
    println!("\nSC accumulator cost for 16 inputs, window 32 (JJ):");
    println!("  exact APC          {:>6}", cmp.exact_apc_jj);
    println!("  approximate APC    {:>6}", cmp.approx_apc_jj);
    println!(
        "  accumulative ctr   {:>6} (+{} memory)",
        cmp.accumulative_logic_jj, cmp.accumulative_memory_jj
    );

    // 3. Clocking schemes on a benchmark DAG (Sections 4.4 and 6.1).
    let cfg = RandomDagConfig {
        inputs: 32,
        gates: 800,
        ..Default::default()
    };
    let dag = random_dag(&cfg, &mut StdRng::seed_from_u64(7));
    println!("\nclocking a 800-gate benchmark DAG:");
    for r in clocking_study(&dag, &[4, 8, 16], &lib) {
        println!(
            "  {:>2}-phase: {:>6} JJ ({:>5.1}% saved vs 4-phase)",
            r.phases,
            r.cost.jj_total,
            100.0 * r.jj_reduction_vs_4phase
        );
    }
    let dl = delay_line_study(&dag, &lib);
    println!(
        "  delay-line: {:.0} ps -> {:.0} ps latency ({:.1}x), {:.1}% JJ saved",
        dl.conventional.latency_ps,
        dl.delay_line.latency_ps,
        dl.latency_speedup(),
        100.0 * dl.jj_reduction()
    );

    // 4. Splitter shape (buffer/splitter co-insertion trade-off): chains
    //    suit staggered consumers, balanced trees suit broadcast fan-out.
    use aqfp_netlist::balance::{balance, legalize_fanout, legalize_fanout_balanced};
    let clock4 = aqfp_device::ClockScheme::four_phase_5ghz();
    let mut broadcast = aqfp_netlist::Netlist::new();
    let shared = broadcast.add_input();
    for _ in 0..32 {
        let fresh = broadcast.add_input();
        let g = broadcast
            .add_gate(aqfp_device::GateKind::And, &[shared, fresh])
            .expect("valid ids");
        broadcast.mark_output(g);
    }
    let mut chain = broadcast.clone();
    legalize_fanout(&mut chain);
    let chain_buf = balance(&mut chain, &clock4).buffers_inserted;
    let mut tree = broadcast;
    legalize_fanout_balanced(&mut tree);
    let tree_buf = balance(&mut tree, &clock4).buffers_inserted;
    println!("\nsplitter shape on a 32-way broadcast (balancing buffers needed):");
    println!("  chain {chain_buf} vs balanced tree {tree_buf}");
}
