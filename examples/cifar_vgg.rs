//! Table 2 scenario: VGG-Small on the CIFAR-10-class dataset under several
//! energy-efficiency constraints (crossbar size / bit-stream trade-offs),
//! compared against the published DDN / IMB / STT-BNN / CMOS-BNN baselines.
//!
//! Run with: `cargo run --release --example cifar_vgg`

use baselines::published::cifar10_baselines;
use superbnn::experiments::{table2_ours, ExperimentScale};

fn main() {
    let mut scale = ExperimentScale::full();
    scale.epochs = 12; // keep the example snappy; tablegen uses more

    // (crossbar size, ΔIin, bit-stream length) from conservative to
    // aggressive — the paper's four constraint points trade accuracy for
    // efficiency, with ΔIin set by the co-optimizer per size.
    let configs = superbnn::experiments::TABLE2_CONFIGS;
    println!(
        "Training VGG-Small on SynthObjects at {} configs...",
        configs.len()
    );
    let rows = table2_ours(&scale, &configs);

    println!("\n=== Table 2: CIFAR-10-class comparison ===");
    println!(
        "{:<34} {:>9} {:>14} {:>12} {:>12}",
        "Design", "Accuracy", "TOPS/W", "Power (mW)", "img/ms"
    );
    for b in cifar10_baselines() {
        println!(
            "{:<34} {:>8.1}% {:>14.3e} {:>12} {:>12}",
            b.name,
            b.accuracy_pct,
            b.tops_per_watt,
            b.power_mw
                .map_or_else(|| "-".into(), |v: f64| format!("{v:.2}")),
            b.throughput_img_per_ms
                .map_or_else(|| "-".into(), |v: f64| format!("{v:.1}")),
        );
    }
    for r in &rows {
        println!(
            "{:<34} {:>8.1}% {:>14.3e} {:>12.2e} {:>12.1}",
            r.label,
            100.0 * r.accuracy,
            r.energy.tops_per_watt,
            r.energy.power_mw,
            r.energy.images_per_ms,
        );
    }

    // The qualitative shape the paper reports: efficiency climbs as the
    // constraint loosens, accuracy pays for it.
    println!("\nShape check (should be monotone across our rows):");
    for w in rows.windows(2) {
        println!(
            "  {} -> {}: efficiency x{:.1}, accuracy {:+.1} pts",
            w[0].label,
            w[1].label,
            w[1].energy.tops_per_watt / w[0].energy.tops_per_watt,
            100.0 * (w[1].accuracy - w[0].accuracy)
        );
    }
}
