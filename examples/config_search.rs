//! The Section 5.4 hardware-configuration co-optimization: sweep the
//! (crossbar size, gray-zone) grid, score each candidate with the average
//! mismatch error (Eq. 18), and pick the best configuration that meets an
//! energy-efficiency constraint.
//!
//! Run with: `cargo run --release --example config_search`

use superbnn::config::HardwareConfig;
use superbnn::optimize::{co_optimize, evaluate_grid, SearchSpace};
use superbnn::spec::NetSpec;

fn main() {
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let base = HardwareConfig::default();
    let space = SearchSpace::default();

    println!("=== AME over the (Cs, ΔIin) grid (Eq. 18) ===");
    let grid = evaluate_grid(&spec, &base, &space);
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "Cs", "ΔIin (µA)", "AME", "TOPS/W"
    );
    for c in &grid {
        println!(
            "{:>8} {:>10.1} {:>14.4} {:>14.3e}",
            c.crossbar, c.grayzone_ua, c.ame, c.tops_per_watt
        );
    }

    println!("\n=== Constrained co-optimization ===");
    for demand in [0.0, 1e5, 1e6] {
        let mut s = space.clone();
        s.min_tops_per_watt = demand;
        match co_optimize(&spec, &base, &s) {
            Some(best) => println!(
                "demand ≥ {demand:.1e} TOPS/W → pick Cs = {}, ΔIin = {} µA \
                 (AME {:.4}, {:.3e} TOPS/W)",
                best.crossbar, best.grayzone_ua, best.ame, best.tops_per_watt
            ),
            None => println!("demand ≥ {demand:.1e} TOPS/W → infeasible on this grid"),
        }
    }
}
