//! Pure stochastic computing vs SupeRBNN's SC-as-accumulator design.
//!
//! Paper Section 2.3 dismisses the pure-SC approach (SC-AQFP) because it
//! "requires a pretty large bit-stream length (i.e., 256∼2048)" while
//! SupeRBNN saturates at 16∼32. This example *measures* that contrast: it
//! trains a float MLP (no batch norm — SC-AQFP's stated limitation),
//! deploys it on the rebuilt pure-SC datapath of `baselines::sc_dnn` at a
//! range of stream lengths, and prints the SupeRBNN deployment of the same
//! task for reference.
//!
//! Run with: `cargo run --release --example sc_baseline`

use superbnn::experiments::{scaqfp_sweep, table3_ours, ExperimentScale};

fn main() {
    // Full training scale (the SupeRBNN reference needs a converged model);
    // a trimmed eval set keeps the example under a few minutes.
    let mut scale = ExperimentScale::full();
    scale.eval_samples = 60;

    // 1. The pure-SC baseline across stream lengths.
    println!("Pure-SC MLP (SC-AQFP datapath) on SynthDigits:");
    let lengths = [16usize, 64, 256, 1024, 2048];
    let sweep = scaqfp_sweep(&scale, &lengths);
    println!(
        "  float reference accuracy: {:.1}%",
        100.0 * sweep.float_accuracy
    );
    println!("  {:>6} {:>10} {:>10}", "L", "APC path", "MUX path");
    for p in &sweep.points {
        println!(
            "  {:>6} {:>9.1}% {:>9.1}%",
            p.stream_len,
            100.0 * p.apc_accuracy,
            100.0 * p.mux_accuracy
        );
    }

    // 2. SupeRBNN on the same task: SC only accumulates *between* crossbars,
    //    so a short window suffices (L from the co-optimized config).
    let ours = table3_ours(&scale);
    println!("\nSupeRBNN on the same task (crossbars + SC accumulation):");
    println!(
        "  L = {} -> deployed {:.1}% (software reference {:.1}%)",
        ours.bitstream_len,
        100.0 * ours.accuracy,
        100.0 * ours.software_accuracy
    );
    println!(
        "\nThe pure-SC datapath needs hundreds-to-thousands of stream bits to\n\
         approach its float ceiling; SupeRBNN reaches its ceiling with L = 16-32\n\
         because only inter-crossbar accumulation runs in the SC domain."
    );
}
