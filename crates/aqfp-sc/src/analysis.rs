//! Stochastic-computing error analysis (paper Section 5.4).
//!
//! Two error sources govern the hardware-configuration co-optimization:
//!
//! * the **average mismatch error** AME (Eq. 18) — the AQFP buffer's erf
//!   law is not the linear probability an ideal bipolar SN generator would
//!   use, so the expected carried value `y = erf(√π(x − Vth)/ΔVin(Cs))·Cs`
//!   deviates from the true latent value `x`;
//! * the **SN estimator noise** — a length-`L` Bernoulli estimate of a
//!   probability `p` has variance `p(1−p)/L`, which is what makes accuracy
//!   climb with bit-stream length and saturate around `L = 16–32`
//!   (Fig. 10).

use aqfp_device::GrayZone;

/// Probability density of `N(mean, std²)` at `x`.
fn gaussian_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

/// Average mismatch error of paper Eq. 18.
///
/// `value_law` is the *value-domain* gray-zone law of the neuron
/// (threshold `Vth`, width `ΔVin(Cs)`); `cs` is the crossbar size; the
/// latent pre-activation is modelled as `N(cs·act_mean, cs·act_var)`
/// following the paper ("f(x|Cs) ∼ N(Cs·µ, Cs·σ²)"). The expected carried
/// value is `y(x) = erf(√π(x − Vth)/ΔVin)·cs`, and
///
/// ```text
/// AME = (1/Cs) ∫_{−Cs}^{+Cs} f(x|Cs) · (x − y(x))² dx
/// ```
///
/// evaluated by Simpson's rule on 2001 points.
///
/// # Panics
/// Panics if `cs == 0` or `act_std <= 0`.
pub fn average_mismatch_error(value_law: &GrayZone, cs: usize, act_mean: f64, act_std: f64) -> f64 {
    assert!(cs > 0, "crossbar size must be positive");
    assert!(act_std > 0.0, "activation std must be positive");
    let csf = cs as f64;
    let mean = csf * act_mean;
    let std = (csf).sqrt() * act_std;

    let lo = -csf;
    let hi = csf;
    let n = 2000usize; // even, Simpson
    let h = (hi - lo) / n as f64;
    let integrand = |x: f64| {
        let y = value_law.expected_value(x) * csf;
        gaussian_pdf(x, mean, std) * (x - y) * (x - y)
    };
    let mut acc = integrand(lo) + integrand(hi);
    for i in 1..n {
        let x = lo + i as f64 * h;
        acc += integrand(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    (acc * h / 3.0) / csf
}

/// Expected stochastic-computing decision-noise power (the second error
/// term of Section 5.4: "the stochastic computing error including SN
/// quantization error and random fluctuation").
///
/// A column holding latent value `x` emits ones with `p = Pv(x)`; its
/// length-`len` bipolar estimate carries value `(2T/len − 1)·Cs` with
/// variance `Cs²·4p(1−p)/len`. Averaging over the activation distribution
/// and normalizing by `Cs` (matching [`average_mismatch_error`]'s units):
///
/// ```text
/// SCN = (1/Cs) ∫ f(x|Cs) · Cs² · 4·p(x)(1−p(x)) / len · dx
/// ```
///
/// AME falls and SCN rises as the gray-zone widens, so their sum has the
/// interior optimum the paper's Fig. 11 landscape exhibits.
///
/// # Panics
/// Panics if `cs == 0`, `act_std <= 0` or `len == 0`.
pub fn sc_decision_noise(
    value_law: &GrayZone,
    cs: usize,
    act_mean: f64,
    act_std: f64,
    len: usize,
) -> f64 {
    assert!(cs > 0, "crossbar size must be positive");
    assert!(act_std > 0.0, "activation std must be positive");
    assert!(len > 0, "stream length must be positive");
    let csf = cs as f64;
    let mean = csf * act_mean;
    let std = csf.sqrt() * act_std;
    let (lo, hi) = (-csf, csf);
    let n = 2000usize;
    let h = (hi - lo) / n as f64;
    let integrand = |x: f64| {
        let p = value_law.probability_one(x);
        gaussian_pdf(x, mean, std) * csf * csf * 4.0 * p * (1.0 - p) / len as f64
    };
    let mut acc = integrand(lo) + integrand(hi);
    for i in 1..n {
        let x = lo + i as f64 * h;
        acc += integrand(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    (acc * h / 3.0) / csf
}

/// The combined computing-error objective of the Section 5.4
/// co-optimization: `AME + SCN`.
pub fn total_computing_error(
    value_law: &GrayZone,
    cs: usize,
    act_mean: f64,
    act_std: f64,
    len: usize,
) -> f64 {
    average_mismatch_error(value_law, cs, act_mean, act_std)
        + sc_decision_noise(value_law, cs, act_mean, act_std, len)
}

/// Variance of the bipolar value estimate of a length-`len` stochastic
/// number with ones-probability `p`: `Var(2k/L − 1) = 4·p(1−p)/L`.
///
/// # Panics
/// Panics if `len == 0` or `p ∉ [0, 1]`.
pub fn sn_estimator_variance(p: f64, len: usize) -> f64 {
    assert!(len > 0, "stream length must be positive");
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    4.0 * p * (1.0 - p) / len as f64
}

/// Standard deviation of the accumulated value of `k` independent streams
/// of length `len` with ones-probabilities `ps` — the noise floor of the
/// SC accumulation module output.
pub fn accumulated_value_std(ps: &[f64], len: usize) -> f64 {
    ps.iter()
        .map(|&p| sn_estimator_variance(p, len))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_device::GrayZone;

    fn law(width: f64) -> GrayZone {
        GrayZone::new(0.0, width)
    }

    #[test]
    fn gaussian_pdf_normalizes() {
        let n = 4000;
        let (lo, hi) = (-8.0, 8.0);
        let h = (hi - lo) / n as f64;
        let total: f64 = (0..=n)
            .map(|i| {
                let x = lo + i as f64 * h;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * gaussian_pdf(x, 0.0, 1.0)
            })
            .sum::<f64>()
            * h;
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ame_is_nonnegative_and_finite() {
        let a = average_mismatch_error(&law(0.5), 16, 0.0, 1.0);
        assert!(a.is_finite() && a >= 0.0);
    }

    #[test]
    fn ame_grows_with_crossbar_size_in_sign_regime() {
        // With a narrow gray-zone the buffer behaves as a sign function;
        // the mismatch (x − Cs·sign(x))² grows with Cs — the analytic root
        // of the paper's limited-scalability argument.
        let a16 = average_mismatch_error(&law(0.3), 16, 0.0, 1.0);
        let a64 = average_mismatch_error(&law(0.3), 64, 0.0, 1.0);
        assert!(a64 > a16, "AME must grow: {a64} vs {a16}");
    }

    #[test]
    fn wider_grayzone_reduces_ame_at_fixed_size() {
        // A wider gray-zone makes the erf more linear over the activation
        // mass, tracking x better than a hard sign.
        let narrow = average_mismatch_error(&law(0.2), 16, 0.0, 1.0);
        let wide = average_mismatch_error(&law(4.0), 16, 0.0, 1.0);
        assert!(wide < narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn ame_penalizes_threshold_offset() {
        // An off-center threshold biases y against the activation mass.
        let centered = average_mismatch_error(&law(1.0), 16, 0.0, 1.0);
        let offset = average_mismatch_error(&GrayZone::new(3.0, 1.0), 16, 0.0, 1.0);
        assert!(offset > centered);
    }

    #[test]
    fn estimator_variance_shrinks_as_one_over_l() {
        let v16 = sn_estimator_variance(0.5, 16);
        let v64 = sn_estimator_variance(0.5, 64);
        assert!((v16 / v64 - 4.0).abs() < 1e-12);
        // Saturated probabilities carry no noise.
        assert_eq!(sn_estimator_variance(1.0, 16), 0.0);
        assert_eq!(sn_estimator_variance(0.0, 16), 0.0);
    }

    #[test]
    fn accumulated_std_combines_in_quadrature() {
        let s = accumulated_value_std(&[0.5, 0.5], 16);
        let single = sn_estimator_variance(0.5, 16);
        assert!((s - (2.0 * single).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn ame_rejects_zero_size() {
        average_mismatch_error(&law(1.0), 0, 0.0, 1.0);
    }

    #[test]
    fn sc_noise_grows_with_grayzone_width() {
        // Wider gray-zone → probabilities nearer 1/2 → more Bernoulli noise.
        let narrow = sc_decision_noise(&law(0.5), 16, 0.0, 1.0, 16);
        let wide = sc_decision_noise(&law(8.0), 16, 0.0, 1.0, 16);
        assert!(wide > narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn sc_noise_shrinks_with_stream_length() {
        let l16 = sc_decision_noise(&law(2.0), 16, 0.0, 1.0, 16);
        let l64 = sc_decision_noise(&law(2.0), 16, 0.0, 1.0, 64);
        assert!((l16 / l64 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn total_error_has_interior_optimum_in_width() {
        // AME falls, SCN rises: their sum is minimized at a finite width —
        // the mechanism behind Fig. 11's accuracy peaks.
        let cs = 32;
        let widths = [0.1f64, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0];
        let errs: Vec<f64> = widths
            .iter()
            .map(|&w| total_computing_error(&law(w), cs, 0.0, 1.0, 16))
            .collect();
        let (best, _) = errs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            best > 0 && best < widths.len() - 1,
            "optimum at the grid edge: width {} (errors {errs:?})",
            widths[best]
        );
    }
}
