//! Finite-state-machine SC elements: the saturating-counter `Stanh`
//! activation used by pure stochastic-computing DNNs.
//!
//! SupeRBNN itself never needs these — its activations are the AQFP
//! buffer's own randomized sign (paper Eq. 7). They exist here to build the
//! *pure-SC* baseline (SC-AQFP, paper Section 2.3), where every layer's
//! activation must be computed in the stream domain. The classic
//! construction is Brown & Card's K-state saturating up/down counter, whose
//! output stream approximates `tanh(K·x/2)` of the input stream's bipolar
//! value `x`.
//!
//! The FSM is inherently sequential (state carries across stream bits), so
//! it runs bit-serially even on [`PackedStream`]s — this is exactly the
//! latency cost pure-SC designs pay and one reason SupeRBNN's short-window
//! architecture wins.

use crate::packed::PackedStream;
use serde::{Deserialize, Serialize};

/// Brown–Card stochastic `tanh` FSM.
///
/// A `K`-state saturating counter: each input `1` increments, each `0`
/// decrements, and the output bit is `1` while the state sits in the upper
/// half. For a bipolar input stream of value `x` the stationary output
/// value approximates `tanh(K·x/2)`; large `K` therefore approaches the
/// hard sign/HardTanh used by BNN layers.
///
/// ```
/// use aqfp_sc::fsm::StanhFsm;
/// use aqfp_sc::packed::PackedStream;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = PackedStream::generate_bipolar(0.5, 8192, &mut rng);
/// let y = StanhFsm::new(8).run(&x);
/// // tanh(8 * 0.5 / 2) = tanh(2) ≈ 0.96
/// assert!((y.bipolar_value() - 0.96).abs() < 0.06);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StanhFsm {
    states: u32,
}

impl StanhFsm {
    /// Creates a `states`-state FSM. The gain of the approximated `tanh`
    /// is `states / 2`.
    ///
    /// # Panics
    /// Panics if `states < 2` or `states` is odd (the threshold must sit
    /// between two states).
    pub fn new(states: u32) -> Self {
        assert!(states >= 2, "Stanh needs at least two states");
        assert!(states.is_multiple_of(2), "Stanh state count must be even");
        Self { states }
    }

    /// Picks the state count whose `tanh(K·x/2)` best matches a desired
    /// linear gain `g` around zero, i.e. `K = 2·g` rounded up to even.
    ///
    /// # Panics
    /// Panics if `gain` is not a positive finite number.
    pub fn with_gain(gain: f64) -> Self {
        assert!(gain.is_finite() && gain > 0.0, "gain must be positive");
        let k = (2.0 * gain).round().max(2.0) as u32;
        Self::new(k + (k % 2))
    }

    /// Number of FSM states `K`.
    pub fn states(&self) -> u32 {
        self.states
    }

    /// Runs the FSM over `input`, returning the output stream.
    ///
    /// The counter starts in the lowest upper-half state so a zero-valued
    /// input produces a near-zero-valued output from the start.
    pub fn run(&self, input: &PackedStream) -> PackedStream {
        let mut out = PackedStream::zeros(input.len());
        let mut state = self.states / 2; // first state of the upper half
        let half = self.states / 2;
        for t in 0..input.len() {
            if input.bit(t) {
                state = (state + 1).min(self.states - 1);
            } else {
                state = state.saturating_sub(1);
            }
            if state >= half {
                out.set(t, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eval(states: u32, x: f64, len: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        let s = PackedStream::generate_bipolar(x, len, &mut rng);
        StanhFsm::new(states).run(&s).bipolar_value()
    }

    #[test]
    fn approximates_tanh_at_moderate_gain() {
        for &x in &[-0.8, -0.3, 0.0, 0.3, 0.8] {
            let y = eval(8, x, 65_536);
            let want = (8.0 * x / 2.0_f64).tanh();
            assert!((y - want).abs() < 0.08, "x={x}: got {y}, want {want}");
        }
    }

    #[test]
    fn saturates_at_large_inputs() {
        assert!(eval(16, 0.9, 16_384) > 0.95);
        assert!(eval(16, -0.9, 16_384) < -0.95);
    }

    #[test]
    fn is_monotone_in_input_value() {
        let ys: Vec<f64> = [-0.6, -0.2, 0.2, 0.6]
            .iter()
            .map(|&x| eval(6, x, 32_768))
            .collect();
        assert!(ys.windows(2).all(|w| w[0] < w[1]), "{ys:?}");
    }

    #[test]
    fn with_gain_rounds_to_even_states() {
        assert_eq!(StanhFsm::with_gain(3.0).states(), 6);
        assert_eq!(StanhFsm::with_gain(3.4).states(), 8); // 6.8 → 7 → +1
        assert_eq!(StanhFsm::with_gain(0.1).states(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_state_count() {
        StanhFsm::new(1);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_state_count() {
        StanhFsm::new(5);
    }
}
