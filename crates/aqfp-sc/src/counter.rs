//! Counter-based (stateless, keyed) random-bit generation for the packed
//! stochastic datapath.
//!
//! The seed-matched samplers in [`bitplane`](crate::bitplane) consume a
//! *serial* generator: every Bernoulli decision advances the shared
//! xoshiro state, so draw `t + 1` cannot start before draw `t` retires —
//! a ~1.5 ns/draw dependency chain that bounds the whole stochastic
//! engine once everything around the draws is vectorized (see
//! `docs/benchmarks.md`, "the RNG serial floor").
//!
//! This module provides the other operating mode: a **keyed counter
//! stream** in the Philox/SplitMix tradition, where draw `t` of a stream
//! is the *pure function* `mix(key + t · γ)` of the stream's key and the
//! counter — no state, no chain. Two consequences:
//!
//! * **Parallelism** — all 64 bits of an observation window (and all
//!   windows of a plane batch) are independent expressions; the inner
//!   loop is unrolled with no loop-carried dependency, so the
//!   multiply/xor-shift mix pipelines and autovectorizes instead of
//!   serializing.
//! * **Order-free reproducibility** — a draw is addressed by
//!   *coordinates* (derived stream key, counter), not by how many draws
//!   happened before it. Evaluating samples, pixels or trials in any
//!   order, on any worker count, reproduces identical bits.
//!
//! Streams form a tree: [`CounterStream::from_seed`] roots a campaign,
//! and [`CounterStream::derive`] splits off statistically independent
//! child streams by index (sample → stage → pixel → cell in the packed
//! stochastic engine), so every Bernoulli window is addressed by its full
//! coordinate tuple. The per-draw output function is the SplitMix64
//! finalizer over a Weyl sequence — exactly the generator SplitMix64
//! iterates, evaluated at an arbitrary counter instead of sequentially —
//! and key derivation uses a *different* finalizer (the 64-bit
//! Murmur3/variant mix) so child keys never collide with draw outputs by
//! construction of the same function.
//!
//! Decisions consume the draw words eight Bernoulli bits at a time: each
//! 64-bit draw is split into eight independent byte-wide uniform lanes,
//! and bit `g` of a stream's decision tape compares lane `g mod 8` of
//! draw `⌊g/8⌋` against the threshold rounded to 8 bits (see
//! [`bernoulli_threshold`](crate::bitplane::bernoulli_threshold) for the
//! 53-bit serial law it approximates). The seed-matched oracle must pay
//! one full draw per bit to stay aligned with the scalar engine; counter
//! mode owes nobody a draw sequence, so it amortizes one mix over eight
//! decisions at a probability quantization of 2⁻⁸ (bias ≤ 2⁻⁹ — the
//! resolution of the byte-wide LFSR comparators real SC front-ends
//! deploy, and well below the gray-zone model's own tolerances). The two
//! modes are statistically interchangeable, not draw-for-draw identical.
//!
//! Within one stream, a *batch* of observation windows (the cells of a
//! packed matrix evaluation) lives on that flat decision tape: window `i`
//! of length `L` starts at bit `i · ⌈L/8⌉·8` (draw-aligned), so a window
//! costs exactly `⌈L/8⌉` mixes and no per-window key derivation. The
//! stream *tree* ([`CounterStream::derive`]) addresses coarser
//! coordinates — sample, stage, pixel — where the fan-out is irregular.

use crate::bitplane::{BERNOULLI_ALWAYS, BERNOULLI_NEVER};

/// The golden-ratio Weyl increment of SplitMix64: coprime to 2⁶⁴, so
/// `key + ctr·γ` walks all of `u64` before repeating.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output finalizer (Stafford's Mix13): a bijective
/// xor-shift/multiply avalanche — every input bit flips each output bit
/// with probability ≈ 1/2.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rounds a 53-bit serial draw threshold (`⌈p·2⁵³⌉`, see
/// [`crate::bitplane::bernoulli_threshold`]) to the byte-lane domain: a
/// lane fires iff its 8 uniform bits fall below `round(p·2⁸)`, so the
/// realized probability is within 2⁻⁹ of `p`. Only called with live
/// (non-sentinel) thresholds, whose results span `0..=2⁸` — `2⁸` itself
/// must remain representable (`p = 1 - ε` rounds up to an always-fires
/// lane).
#[inline]
fn threshold8(thr: u64) -> u32 {
    (((thr >> 44) + 1) >> 1) as u32
}

/// True when `threshold` rounds to a byte-lane threshold of zero: under
/// the counter law **no** decision can fire, so a window fill is certainly
/// all-'0' — the draw-free equivalent of [`BERNOULLI_NEVER`], which this
/// predicate also accepts. Lets table builders mark deep-gray-zone-tail
/// cells (`0 < p < 2⁻⁹`) as counter-saturated and skip their draws
/// entirely; the skipped result is bit-identical, not approximate.
#[inline]
#[must_use]
pub fn counter_never(threshold: u64) -> bool {
    threshold >> 44 == 0
}

/// True when `threshold` rounds to a byte-lane threshold of 2⁸: every
/// decision fires, so a window fill is certainly all-'1' — the draw-free
/// equivalent of [`BERNOULLI_ALWAYS`], which this predicate also accepts
/// (`p > 1 − 2⁻⁹` rounds up to an always-fires lane).
#[inline]
#[must_use]
pub fn counter_always(threshold: u64) -> bool {
    threshold == BERNOULLI_ALWAYS || threshold8(threshold) >= 1 << 8
}

/// An 8-bit mask with bit `j` set iff byte lane `j` of draw `z` falls
/// below `t8` (which must be in `1..=255`): branch-free SWAR compare.
/// The even and odd byte lanes are widened into 16-bit fields, `256 -
/// t8` is added so bit 8 of each field becomes that lane's `byte ≥ t8`
/// carry (field sums peak at 510, so carries never cross fields), and
/// the inverted carries are gathered back into one byte.
#[inline]
fn byte_lt_mask(z: u64, t8: u32) -> u64 {
    const LO: u64 = 0x00FF_00FF_00FF_00FF;
    const ONES: u64 = 0x0001_0001_0001_0001;
    let c = (0x100 - u64::from(t8)) * ONES;
    let even = !((z & LO).wrapping_add(c) >> 8) & ONES; // lanes 0,2,4,6
    let odd = !(((z >> 8) & LO).wrapping_add(c) >> 8) & ONES; // lanes 1,3,5,7
    ((even | (even >> 14) | (even >> 28) | (even >> 42)) & 0x55)
        | (((odd << 1) | (odd >> 13) | (odd >> 27) | (odd >> 41)) & 0xAA)
}

/// The 64-bit Murmur3-style finalizer — a second, structurally different
/// bijective mix used for *key derivation* so stream keys and draw
/// outputs come from distinct functions (domain separation between the
/// tree structure and the random bits it yields).
#[inline]
fn mix64_rekey(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// A keyed counter stream: an immutable 64-bit key addressing 2⁶⁴
/// independent uniform draws (one per counter value), plus 2⁶⁴ derivable
/// child streams (one per index). Copy-cheap and stateless — sharing one
/// across threads needs no synchronization, and re-drawing any counter
/// reproduces the same word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterStream {
    key: u64,
}

impl CounterStream {
    /// Roots a stream tree at a campaign seed. The seed is avalanched
    /// through the re-key mix so that numerically adjacent seeds (the
    /// `campaign_seed ^ trial` convention of the robustness sweeps) yield
    /// unrelated keys.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            key: mix64_rekey(seed.wrapping_add(GOLDEN_GAMMA)),
        }
    }

    /// The stream's key — exposed for diagnostics and tests; two streams
    /// are the same stream iff their keys are equal.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Splits off the `index`-th child stream: a statistically
    /// independent key that is a pure function of `(self.key, index)`.
    /// Deriving the same index twice gives the same child, so coordinates
    /// (sample, stage, pixel, cell) can be re-resolved from anywhere.
    #[inline]
    #[must_use]
    pub fn derive(&self, index: u64) -> Self {
        Self {
            key: mix64_rekey(self.key.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA))),
        }
    }

    /// Draw `ctr` of the stream: the SplitMix64 finalizer over the keyed
    /// Weyl sequence. Uniform over `u64`, independent across counters,
    /// and (unlike a serial generator) evaluable in any order.
    #[inline]
    #[must_use]
    pub fn draw(&self, ctr: u64) -> u64 {
        mix64(self.key.wrapping_add(ctr.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// One Bernoulli decision at global bit position `g`: byte lane
    /// `g mod 8` of draw `⌊g/8⌋`, compared against `t8` (see
    /// [`threshold8`]).
    #[inline]
    fn lane_decision(&self, g: u64, t8: u32) -> bool {
        let z = self.draw(g >> 3);
        (((z >> (8 * (g & 7))) & 0xFF) as u32) < t8
    }

    /// One packed word of up to 64 Bernoulli bits: bit `t` is decided by
    /// byte lane `(base + t) mod 8` of draw `⌊(base + t) / 8⌋` against
    /// the 8-bit-rounded threshold — eight decisions per mix (see the
    /// module docs). Sentinel thresholds fill constant without draws.
    /// Bits at and above `bits` are zero.
    ///
    /// The inner loop has **no loop-carried dependency** — each draw's
    /// mix is independent — so the multiplies pipeline (and vectorize
    /// where the target has 64-bit vector multiply), unlike the serial
    /// chain of `sample_window_word`.
    ///
    /// # Panics
    /// Panics if `bits > 64`.
    #[inline]
    #[must_use]
    pub fn bernoulli_word(&self, threshold: u64, base: u64, bits: usize) -> u64 {
        assert!(bits <= 64, "a word holds at most 64 lanes, got {bits}");
        match threshold {
            BERNOULLI_NEVER => 0,
            BERNOULLI_ALWAYS => {
                if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                }
            }
            thr => {
                let t8 = threshold8(thr);
                // Quantized saturation: a threshold whose 8-bit rounding
                // hits 0 (or 2⁸) decides every lane the same way — fill
                // the constant without drawing (see [`counter_never`]).
                if t8 == 0 {
                    return 0;
                }
                if t8 > 0xFF {
                    return if bits == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                }
                let mut word = 0u64;
                let mut t = 0usize;
                // Align on a draw boundary, then take whole draws (eight
                // lanes each), then the ragged tail.
                while t < bits && base.wrapping_add(t as u64) & 7 != 0 {
                    word |= (self.lane_decision(base.wrapping_add(t as u64), t8) as u64) << t;
                    t += 1;
                }
                while t + 8 <= bits {
                    let z = self.draw(base.wrapping_add(t as u64) >> 3);
                    word |= byte_lt_mask(z, t8) << t;
                    t += 8;
                }
                while t < bits {
                    word |= (self.lane_decision(base.wrapping_add(t as u64), t8) as u64) << t;
                    t += 1;
                }
                word
            }
        }
    }

    /// The number of '1' bits a `len`-bit window fill at tape position
    /// `base` would produce —
    /// `self.sample_bernoulli_words(threshold, base, len, ..)`
    /// popcounted, without materializing the words: each draw's eight
    /// lane compares are reduced by SWAR carry-harvesting (widen lanes to
    /// 16-bit fields, add `256 - t8`, sum the `≥` carries at bit 8, fold
    /// with one multiply) — no per-lane extraction, no popcount. This is
    /// what the exact-APC accumulation actually consumes, so the packed
    /// stochastic engine's counter mode can skip the stream buffer
    /// entirely: saturated cells contribute their constant for free and
    /// live cells are counted straight out of the generator.
    #[inline]
    #[must_use]
    pub fn bernoulli_count(&self, threshold: u64, base: u64, len: usize) -> u32 {
        match threshold {
            BERNOULLI_NEVER => 0,
            BERNOULLI_ALWAYS => len as u32,
            thr => {
                let t8 = threshold8(thr);
                // Same quantized-saturation constants as `bernoulli_word`.
                if t8 == 0 {
                    return 0;
                }
                if t8 > 0xFF {
                    return len as u32;
                }
                let mut total = 0u32;
                let mut t = 0usize;
                while t < len && base.wrapping_add(t as u64) & 7 != 0 {
                    total += self.lane_decision(base.wrapping_add(t as u64), t8) as u32;
                    t += 1;
                }
                const LO: u64 = 0x00FF_00FF_00FF_00FF;
                const ONES: u64 = 0x0001_0001_0001_0001;
                let c = (0x100 - u64::from(t8)) * ONES;
                while t + 8 <= len {
                    // Accumulate `byte ≥ t8` carries per 16-bit field, two
                    // lanes per field per draw: a fold every ≤ 2¹² draws
                    // keeps the single-multiply horizontal sum below 2¹⁶.
                    let stop = t + ((len - t) & !7).min(8 << 12);
                    let span = (stop - t) as u32;
                    let mut ge = 0u64;
                    while t < stop {
                        let z = self.draw(base.wrapping_add(t as u64) >> 3);
                        ge += ((z & LO).wrapping_add(c) >> 8) & ONES;
                        ge += (((z >> 8) & LO).wrapping_add(c) >> 8) & ONES;
                        t += 8;
                    }
                    total += span - (ge.wrapping_mul(ONES) >> 48) as u32;
                }
                while t < len {
                    total += self.lane_decision(base.wrapping_add(t as u64), t8) as u32;
                    t += 1;
                }
                total
            }
        }
    }

    /// Writes the '1' counts of a dense batch of **live** windows:
    /// window `windows[i]` (threshold `thresholds[i]`, `len` bits) sits
    /// at tape position `windows[i] · window_stride(len)` — the same
    /// addressing as
    /// [`sample_bernoulli_planes`](Self::sample_bernoulli_planes) — and
    /// its would-be fill popcount lands in `out[i]`.
    ///
    /// This is the batch form of
    /// [`bernoulli_count`](Self::bernoulli_count) for callers that have
    /// already screened out saturated cells (the packed engine's
    /// counter-saturation cutoffs): every threshold here **must** round
    /// to a live byte-lane threshold (`1..=255`, debug-asserted), which
    /// lets the loop skip all sentinel/saturation dispatch and run the
    /// draw kernel back to back. The whole batch is pure elementwise
    /// arithmetic — thresholds, keys, counters, SWAR folds — so the
    /// dominant 16-bit-window shape runs as fixed 8-window blocks that
    /// the compiler turns into vector mixes (this is where the counter
    /// discipline's order freedom pays: eight windows' draws are eight
    /// independent expressions, something the serial chain can never
    /// offer).
    ///
    /// # Panics
    /// Panics if `windows` or `out` is shorter than `thresholds`.
    pub fn bernoulli_windows_counts(
        &self,
        thresholds: &[u64],
        windows: &[usize],
        len: usize,
        out: &mut [u32],
    ) {
        let n = thresholds.len();
        assert!(windows.len() >= n, "window index per threshold required");
        assert!(out.len() >= n, "count slot per threshold required");
        const LO: u64 = 0x00FF_00FF_00FF_00FF;
        const ONES: u64 = 0x0001_0001_0001_0001;
        let stride = Self::window_stride(len);
        let full = len / 8;
        let tail = len % 8;
        let tail_mask = (1u64 << tail) - 1;
        let mut done = 0usize;
        if full == 2 && tail == 0 {
            // The dominant shape (the default 16-cycle observation
            // window): two draws and one SWAR reduction per window, no
            // inner loops, processed in fixed-width blocks of eight so
            // the whole block is straight-line elementwise arithmetic
            // over arrays — the autovectorizer's favorite diet.
            let blocks = n / 8;
            for b in 0..blocks {
                let tc = &thresholds[b * 8..][..8];
                let wc = &windows[b * 8..][..8];
                let oc = &mut out[b * 8..][..8];
                for j in 0..8 {
                    let t8 = threshold8(tc[j]);
                    debug_assert!(
                        (1..=255).contains(&t8),
                        "saturated threshold in a live-window batch"
                    );
                    let c = (0x100 - u64::from(t8)) * ONES;
                    let d0 = (wc[j] as u64).wrapping_mul(2);
                    let z0 = self.draw(d0);
                    let z1 = self.draw(d0 + 1);
                    let ge = (((z0 & LO).wrapping_add(c) >> 8) & ONES)
                        + ((((z0 >> 8) & LO).wrapping_add(c) >> 8) & ONES)
                        + (((z1 & LO).wrapping_add(c) >> 8) & ONES)
                        + ((((z1 >> 8) & LO).wrapping_add(c) >> 8) & ONES);
                    oc[j] = 16 - (ge.wrapping_mul(ONES) >> 48) as u32;
                }
            }
            done = blocks * 8;
        }
        for i in done..n {
            let t8 = threshold8(thresholds[i]);
            debug_assert!(
                (1..=255).contains(&t8),
                "saturated threshold in a live-window batch"
            );
            let c = (0x100 - u64::from(t8)) * ONES;
            let d0 = (windows[i] as u64).wrapping_mul(stride) >> 3;
            let mut d = 0usize;
            let mut count = 0u64;
            while d < full {
                // Fold every ≤ 2¹² draws so the per-field carry sums stay
                // below 2¹⁶ (2 lanes per field per draw).
                let stop = full.min(d + (1 << 12));
                let span = ((stop - d) * 8) as u64;
                let mut ge = 0u64;
                while d < stop {
                    let z = self.draw(d0 + d as u64);
                    ge += ((z & LO).wrapping_add(c) >> 8) & ONES;
                    ge += (((z >> 8) & LO).wrapping_add(c) >> 8) & ONES;
                    d += 1;
                }
                count += span - (ge.wrapping_mul(ONES) >> 48);
            }
            if tail > 0 {
                let z = self.draw(d0 + full as u64);
                count += u64::from((byte_lt_mask(z, t8) & tail_mask).count_ones());
            }
            out[i] = count as u32;
        }
    }

    /// Samples `len` i.i.d. Bernoulli bits into a packed word slice
    /// ([`crate::BitPlane`] bit order, tail bits cleared): bit `t` of the
    /// window is decided by tape position `base + t` of this stream. The
    /// counter-mode twin of
    /// [`crate::bitplane::sample_bernoulli_words`] — same output layout
    /// and sentinel semantics, but pure in `(key, base + t)` so words can
    /// be filled independently and in any order.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `⌈len/64⌉` words.
    pub fn sample_bernoulli_words(&self, threshold: u64, base: u64, len: usize, out: &mut [u64]) {
        let words = len.div_ceil(64);
        assert!(words <= out.len(), "mask slice too short for {len} bits");
        for (w, slot) in out[..words].iter_mut().enumerate() {
            let bits = (len - w * 64).min(64);
            *slot = self.bernoulli_word(threshold, base.wrapping_add((w * 64) as u64), bits);
        }
    }

    /// The draw-aligned tape stride between consecutive windows of `len`
    /// bits: window `i` of a batch starts at tape position
    /// `i · window_stride(len)`. Rounding up to a whole draw (8 lanes)
    /// keeps every window's inner loop alignment-free.
    #[inline]
    #[must_use]
    pub fn window_stride(len: usize) -> u64 {
        len.next_multiple_of(8) as u64
    }

    /// Samples a batch of Bernoulli bit windows — window `i` (threshold
    /// `thresholds[i]`, `len` bits) occupies tape positions
    /// `i · window_stride(len) ..` of this stream and lands at words
    /// `out[offsets[i] .. offsets[i] + ⌈len/64⌉]` with
    /// [`sample_bernoulli_words`](Self::sample_bernoulli_words)
    /// semantics. The flat addressing costs no per-window key
    /// derivation: one batch of `n` live windows is `n · ⌈len/8⌉` mixes,
    /// period.
    ///
    /// The counter-mode twin of
    /// [`crate::bitplane::sample_bernoulli_planes`]: where the serial
    /// batch must walk windows in scalar draw order to keep one RNG
    /// aligned, here every `(window, bit)` is addressed by
    /// `(key, i · stride + t)` — the iteration order is a free choice and
    /// the result is identical under any schedule.
    ///
    /// # Panics
    /// Panics if `offsets` is shorter than `thresholds` or any window
    /// would write past `out`.
    pub fn sample_bernoulli_planes(
        &self,
        thresholds: &[u64],
        offsets: &[usize],
        len: usize,
        out: &mut [u64],
    ) {
        let words = len.div_ceil(64);
        assert!(
            offsets.len() >= thresholds.len(),
            "offset per window required"
        );
        let rem = len % 64;
        let stride = Self::window_stride(len);
        for (i, (&thr, &off)) in thresholds.iter().zip(offsets).enumerate() {
            let slot = &mut out[off..off + words];
            // Sentinel windows fill constant without paying any draws —
            // the counter twin of the serial batch's draw-free saturation
            // fast path.
            match thr {
                BERNOULLI_NEVER => slot.fill(0),
                BERNOULLI_ALWAYS => {
                    slot.fill(u64::MAX);
                    if rem > 0 {
                        slot[words - 1] = (1u64 << rem) - 1;
                    }
                }
                thr => {
                    self.sample_bernoulli_words(thr, (i as u64).wrapping_mul(stride), len, slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::bernoulli_threshold;

    #[test]
    fn draws_are_pure_and_order_free() {
        let s = CounterStream::from_seed(42);
        let forward: Vec<u64> = (0..64).map(|t| s.draw(t)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|t| s.draw(t)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "a draw must not depend on evaluation order"
        );
        // Re-drawing reproduces.
        assert_eq!(s.draw(7), s.draw(7));
    }

    #[test]
    fn seeds_and_children_decorrelate() {
        let a = CounterStream::from_seed(0);
        let b = CounterStream::from_seed(1);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.draw(0), b.draw(0));
        let c0 = a.derive(0);
        let c1 = a.derive(1);
        assert_ne!(c0.key(), c1.key());
        assert_ne!(c0.key(), a.key());
        // Derivation is a pure function of (key, index).
        assert_eq!(a.derive(5).key(), a.derive(5).key());
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 4096 draws ≈ 2⁶³; per-bit frequencies ≈ 1/2. Loose
        // 4-sigma-ish bounds — this is a sanity check, not a test suite
        // for the (well-studied) SplitMix64 finalizer.
        let s = CounterStream::from_seed(123);
        let n = 4096u64;
        let mut ones = [0u32; 64];
        for t in 0..n {
            let z = s.draw(t);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((z >> b) & 1) as u32;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            assert!(
                (1800..=2300).contains(&count),
                "bit {b} frequency {count}/{n}"
            );
        }
    }

    #[test]
    fn bernoulli_word_matches_per_bit_reference() {
        let s = CounterStream::from_seed(9).derive(3);
        for &p in &[0.01, 0.3, 0.5, 0.9, 0.999] {
            let thr = bernoulli_threshold(p);
            let t8 = super::threshold8(thr);
            for &(base, bits) in &[(0u64, 64usize), (64, 64), (128, 17), (5, 1), (13, 29)] {
                let word = s.bernoulli_word(thr, base, bits);
                for t in 0..64 {
                    let expect = if t < bits {
                        // Bit g: byte lane g mod 8 of draw ⌊g/8⌋.
                        let g = base + t as u64;
                        let z = s.draw(g >> 3);
                        (((z >> (8 * (g & 7))) & 0xFF) as u32) < t8
                    } else {
                        false // tail bits cleared
                    };
                    assert_eq!((word >> t) & 1 == 1, expect, "p={p} base={base} bit {t}");
                }
            }
        }
    }

    #[test]
    fn counts_equal_fill_popcounts() {
        let s = CounterStream::from_seed(55);
        for &p in &[0.0, 0.05, 0.5, 0.93, 1.0] {
            let thr = bernoulli_threshold(p);
            for &base in &[0u64, 5, 16, 120] {
                for &len in &[1usize, 16, 64, 130] {
                    let mut words = vec![0u64; len.div_ceil(64)];
                    s.sample_bernoulli_words(thr, base, len, &mut words);
                    let fill: u32 = words.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(
                        s.bernoulli_count(thr, base, len),
                        fill,
                        "p={p} base={base} len={len}: count must equal the fill's popcount"
                    );
                }
            }
        }
    }

    #[test]
    fn sentinels_fill_constant_with_cleared_tails() {
        let s = CounterStream::from_seed(4);
        let mut out = [u64::MAX; 3];
        s.sample_bernoulli_words(BERNOULLI_NEVER, 0, 130, &mut out);
        assert_eq!(out, [0, 0, 0]);
        let mut out = [0u64; 3];
        s.sample_bernoulli_words(BERNOULLI_ALWAYS, 0, 130, &mut out);
        assert_eq!(out, [u64::MAX, u64::MAX, 0b11]);
    }

    #[test]
    fn word_fill_rate_tracks_probability() {
        let s = CounterStream::from_seed(77);
        for &p in &[0.1, 0.5, 0.9] {
            let thr = bernoulli_threshold(p);
            let mut ones = 0u32;
            let n_words = 256usize;
            for w in 0..n_words {
                ones += s.derive(w as u64).bernoulli_word(thr, 0, 64).count_ones();
            }
            let rate = f64::from(ones) / (n_words as f64 * 64.0);
            assert!(
                (rate - p).abs() < 0.02,
                "p={p}: measured {rate} over {} bits",
                n_words * 64
            );
        }
    }

    #[test]
    fn planes_batch_equals_per_window_fills() {
        let s = CounterStream::from_seed(31);
        let thresholds: Vec<u64> = [0.0, 0.2, 1.0, 0.7, 0.5]
            .iter()
            .map(|&p| bernoulli_threshold(p))
            .collect();
        let len = 130usize; // 3 words per window
        let words = len.div_ceil(64);
        // Scattered, permuted offsets: batch order ≠ storage order.
        let offsets = [2 * words, 0, 4 * words, words, 3 * words];
        let mut batch = vec![0u64; 5 * words];
        s.sample_bernoulli_planes(&thresholds, &offsets, len, &mut batch);
        let stride = CounterStream::window_stride(len);
        for (i, (&thr, &off)) in thresholds.iter().zip(&offsets).enumerate() {
            let mut solo = vec![0u64; words];
            s.sample_bernoulli_words(thr, i as u64 * stride, len, &mut solo);
            assert_eq!(&batch[off..off + words], &solo[..], "window {i}");
        }
    }
}
