//! The SC-based accumulation module (paper Fig. 6b).
//!
//! A BNN filter tiled over `k` crossbars produces `k` stochastic numbers per
//! output column (one per crossbar, each an observation window of `L` bits).
//! The module:
//!
//! 1. feeds the `k` parallel column bits of each clock cycle into an APC,
//! 2. accumulates the APC counts over the window (total ones `T ∈ [0, kL]`),
//! 3. compares the total against a reference to emit the 1-bit activation
//!    for the next layer: in bipolar encoding the accumulated value is
//!    `v = 2T/L − k`, so the default reference is the midpoint `T ≥ kL/2`
//!    (ties binarize to '1', matching the paper's `sign(0) = +1`).
//!
//! The folded batch-norm threshold (Eq. 16) is divided evenly over the `k`
//! crossbars' neuron thresholds (Section 5.2), so the module's own
//! reference stays at the midpoint unless explicitly overridden.

use crate::apc::Apc;
use crate::number::Bitstream;
use aqfp_device::{Bit, CellLibrary, ClockScheme};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by the accumulation module.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScAccumError {
    /// The number of input streams did not match the configured width.
    WrongStreamCount {
        /// Configured number of crossbar inputs.
        expected: usize,
        /// Provided stream count.
        got: usize,
    },
    /// A stream's length did not match the configured window.
    WrongWindow {
        /// Configured observation window.
        expected: usize,
        /// Index of the offending stream.
        stream: usize,
        /// Its length.
        got: usize,
    },
}

impl fmt::Display for ScAccumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScAccumError::WrongStreamCount { expected, got } => {
                write!(
                    f,
                    "accumulation module has {expected} inputs, got {got} streams"
                )
            }
            ScAccumError::WrongWindow {
                expected,
                stream,
                got,
            } => write!(
                f,
                "stream {stream} has length {got}, expected the {expected}-bit window"
            ),
        }
    }
}

impl std::error::Error for ScAccumError {}

/// Which parallel counter the module instantiates (paper Section 4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// Exact Wallace-tree popcount.
    #[default]
    Exact,
    /// Kim et al.'s approximate parallel counter: the weight-0 column uses
    /// 2-gate approximate adders — fewer JJs, with a small unbiased
    /// counting error that SC accumulation tolerates.
    Approximate,
}

/// The SC-based accumulation module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulationModule {
    inputs: usize,
    window: usize,
    /// Ones-count reference of the comparator; output is '1' iff the total
    /// count is ≥ this value. Stored doubled internally to keep the exact
    /// `kL/2` midpoint representable for odd `k·L`.
    threshold_doubled: u64,
    counter: CounterKind,
}

impl AccumulationModule {
    /// Creates a module accumulating `inputs` crossbar outputs over a
    /// `window`-bit observation window, with the midpoint reference.
    ///
    /// # Panics
    /// Panics if `inputs == 0` or `window == 0`.
    pub fn new(inputs: usize, window: usize) -> Self {
        assert!(inputs > 0, "need at least one crossbar input");
        assert!(window > 0, "observation window must be at least 1 bit");
        Self {
            inputs,
            window,
            threshold_doubled: (inputs * window) as u64,
            counter: CounterKind::Exact,
        }
    }

    /// Overrides the comparator reference: output '1' iff `T ≥ threshold`
    /// (in ones counts).
    #[must_use]
    pub fn with_threshold_counts(mut self, threshold: u64) -> Self {
        self.threshold_doubled = threshold * 2;
        self
    }

    /// Selects the counter implementation (default [`CounterKind::Exact`]).
    #[must_use]
    pub fn with_counter(mut self, counter: CounterKind) -> Self {
        self.counter = counter;
        self
    }

    /// The configured counter kind.
    pub fn counter(&self) -> CounterKind {
        self.counter
    }

    /// Number of crossbar inputs `k`.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Observation window `L`.
    pub fn window(&self) -> usize {
        self.window
    }

    fn check(&self, streams: &[Bitstream]) -> crate::Result<()> {
        if streams.len() != self.inputs {
            return Err(ScAccumError::WrongStreamCount {
                expected: self.inputs,
                got: streams.len(),
            });
        }
        for (i, s) in streams.iter().enumerate() {
            if s.len() != self.window {
                return Err(ScAccumError::WrongWindow {
                    expected: self.window,
                    stream: i,
                    got: s.len(),
                });
            }
        }
        Ok(())
    }

    /// Total ones count `T` over all streams and cycles — what the APC +
    /// accumulator register compute in hardware. Evaluated cycle-by-cycle
    /// through the functional APC to mirror the datapath.
    pub fn total_count(&self, streams: &[Bitstream]) -> crate::Result<u64> {
        self.check(streams)?;
        let apc = Apc::new(self.inputs);
        let mut total = 0u64;
        let mut word = vec![Bit::Zero; self.inputs];
        for t in 0..self.window {
            for (i, s) in streams.iter().enumerate() {
                word[i] = s.bits()[t];
            }
            total += match self.counter {
                CounterKind::Exact => apc.count(&word),
                CounterKind::Approximate => apc.count_approx(&word),
            } as u64;
        }
        Ok(total)
    }

    /// The accumulated bipolar value estimate `v = 2T/L − k ∈ [−k, +k]`,
    /// in per-crossbar units.
    pub fn accumulate_value(&self, streams: &[Bitstream]) -> crate::Result<f64> {
        let total = self.total_count(streams)?;
        Ok(2.0 * total as f64 / self.window as f64 - self.inputs as f64)
    }

    /// The module's 1-bit output: '1' iff `T ≥ threshold` (default: the
    /// bipolar midpoint, i.e. the sign of the accumulated value with ties
    /// resolving to '1').
    pub fn binarize(&self, streams: &[Bitstream]) -> crate::Result<Bit> {
        let total = self.total_count(streams)?;
        Ok(Bit::from_bool(2 * total >= self.threshold_doubled))
    }

    /// Hardware JJ count of the module: the gate-level APC, a `w`-bit
    /// accumulator (full-adder chain with feedback), and a `w`-bit
    /// comparator, where `w = ⌈log2(kL + 1)⌉`.
    pub fn hardware_jj(&self, lib: &CellLibrary, clock: &ClockScheme) -> u64 {
        let apc = match self.counter {
            CounterKind::Exact => Apc::new(self.inputs).hardware_cost(lib, clock),
            CounterKind::Approximate => Apc::new(self.inputs).approx_hardware_cost(lib, clock),
        };
        let w = 64 - ((self.inputs * self.window) as u64).leading_zeros() as u64;
        // Full adder: 3 MAJ + 2 INV = 22 JJ. Comparator bit: MAJ + INV = 8.
        let accumulator = w * 22;
        let comparator = w * 8 + 2;
        apc.jj_total + accumulator + comparator
    }

    /// Latency of one accumulation in clock stages: the APC tree depth plus
    /// the window (one APC word per cycle) plus accumulator/comparator.
    pub fn latency_stages(&self) -> u32 {
        let apc_depth = Apc::new(self.inputs).netlist().depth();
        let w = 64 - ((self.inputs * self.window) as u64).leading_zeros();
        apc_depth + self.window as u32 + w + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::number::parse_stream;
    use rand::SeedableRng;

    #[test]
    fn approximate_counter_is_cheaper_and_usually_agrees() {
        use aqfp_device::{CellLibrary, ClockScheme};
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        let exact = AccumulationModule::new(8, 16);
        let approx = exact.with_counter(CounterKind::Approximate);
        assert!(approx.hardware_jj(&lib, &clock) < exact.hardware_jj(&lib, &clock));

        // Functional agreement of the 1-bit decision on random stream
        // batches with random values (typical decisions have margin; only
        // near-midpoint totals can flip under the ±1-per-adder unbiased
        // counting error).
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut agree = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let streams: Vec<Bitstream> = (0..8)
                .map(|_| {
                    let p = rand::Rng::gen_range(&mut rng, 0.0..1.0);
                    Bitstream::generate_unipolar(p, 16, &mut rng)
                })
                .collect();
            if exact.binarize(&streams).unwrap() == approx.binarize(&streams).unwrap() {
                agree += 1;
            }
        }
        // Uniform-random stream values over-represent near-midpoint totals
        // (the sum of 8 uniform values concentrates at the threshold), so
        // a few near-tie flips are expected; real deployments have
        // BN-matched margins.
        assert!(agree >= trials * 17 / 20, "only {agree}/{trials} agreed");
    }

    #[test]
    fn counter_kind_defaults_to_exact() {
        assert_eq!(AccumulationModule::new(2, 2).counter(), CounterKind::Exact);
        assert_eq!(CounterKind::default(), CounterKind::Exact);
    }

    #[test]
    fn total_count_sums_all_ones() {
        let m = AccumulationModule::new(3, 4);
        let streams = vec![
            parse_stream("1010"), // 2 ones
            parse_stream("1111"), // 4
            parse_stream("0000"), // 0
        ];
        assert_eq!(m.total_count(&streams).unwrap(), 6);
    }

    #[test]
    fn accumulated_value_is_sum_of_bipolar_values() {
        let m = AccumulationModule::new(2, 4);
        let streams = vec![parse_stream("1111"), parse_stream("0100")];
        // values: +1 and (2·1/4 − 1) = −0.5 → sum 0.5
        let v = m.accumulate_value(&streams).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binarize_signs_the_sum() {
        let m = AccumulationModule::new(2, 4);
        let pos = vec![parse_stream("1111"), parse_stream("0100")];
        assert_eq!(m.binarize(&pos).unwrap(), Bit::One);
        let neg = vec![parse_stream("0000"), parse_stream("0111")];
        assert_eq!(m.binarize(&neg).unwrap(), Bit::Zero);
    }

    #[test]
    fn tie_resolves_to_one() {
        let m = AccumulationModule::new(2, 2);
        // T = 2 = kL/2 exactly.
        let tie = vec![parse_stream("10"), parse_stream("01")];
        assert_eq!(m.binarize(&tie).unwrap(), Bit::One);
    }

    #[test]
    fn custom_threshold_shifts_decision() {
        let m = AccumulationModule::new(2, 4).with_threshold_counts(7);
        let streams = vec![parse_stream("1111"), parse_stream("0100")]; // T=5
        assert_eq!(m.binarize(&streams).unwrap(), Bit::Zero);
        let m = m.with_threshold_counts(5);
        assert_eq!(m.binarize(&streams).unwrap(), Bit::One);
    }

    #[test]
    fn longer_windows_reduce_estimate_noise() {
        // Estimate Σ erf values from sampled streams; the long-window
        // estimate must be closer on average (law of large numbers).
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let ps = [0.7, 0.3, 0.55];
        let truth: f64 = ps.iter().map(|p| 2.0 * p - 1.0).sum();
        let mut err_short = 0.0;
        let mut err_long = 0.0;
        for _ in 0..200 {
            for (window, err) in [(4usize, &mut err_short), (64, &mut err_long)] {
                let m = AccumulationModule::new(3, window);
                let streams: Vec<Bitstream> = ps
                    .iter()
                    .map(|&p| Bitstream::generate_unipolar(p, window, &mut rng))
                    .collect();
                *err += (m.accumulate_value(&streams).unwrap() - truth).abs();
            }
        }
        assert!(
            err_long < err_short * 0.6,
            "64-bit window error {err_long} not ≪ 4-bit {err_short}"
        );
    }

    #[test]
    fn shape_errors() {
        let m = AccumulationModule::new(2, 4);
        let e = m.total_count(&[parse_stream("1111")]).unwrap_err();
        assert!(matches!(
            e,
            ScAccumError::WrongStreamCount {
                expected: 2,
                got: 1
            }
        ));
        let e = m
            .total_count(&[parse_stream("1111"), parse_stream("11")])
            .unwrap_err();
        assert!(matches!(
            e,
            ScAccumError::WrongWindow {
                expected: 4,
                stream: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn hardware_cost_scales() {
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        let small = AccumulationModule::new(2, 8).hardware_jj(&lib, &clock);
        let big = AccumulationModule::new(8, 32).hardware_jj(&lib, &clock);
        assert!(big > small);
        assert!(small > 0);
    }

    #[test]
    fn latency_includes_window() {
        let m8 = AccumulationModule::new(4, 8);
        let m32 = AccumulationModule::new(4, 32);
        assert!(m32.latency_stages() > m8.latency_stages());
        assert!(m32.latency_stages() as usize >= 32);
    }
}
