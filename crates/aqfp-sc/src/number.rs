//! Stochastic numbers: bit-streams whose ones-density encodes a value.
//!
//! Two encodings (paper Fig. 2):
//!
//! * **unipolar** — a stream `X` of length `L` with `k` ones carries
//!   `x = k / L ∈ [0, 1]`;
//! * **bipolar** — the same stream carries `x = 2k/L − 1 ∈ [−1, 1]`,
//!   i.e. `P(X = 1) = (x + 1) / 2`. BNN activations are bipolar.

use aqfp_device::Bit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic bit-stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream(Vec<Bit>);

impl Bitstream {
    /// Wraps raw bits (e.g. an AQFP neuron observation window).
    pub fn from_bits(bits: Vec<Bit>) -> Self {
        Self(bits)
    }

    /// Stream length `L`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw bits.
    pub fn bits(&self) -> &[Bit] {
        &self.0
    }

    /// Number of ones `k`.
    pub fn ones(&self) -> usize {
        self.0.iter().filter(|b| b.as_bool()).count()
    }

    /// Unipolar value `k / L`.
    ///
    /// # Panics
    /// Panics on an empty stream (a zero-length SN carries no value).
    pub fn unipolar_value(&self) -> f64 {
        assert!(!self.is_empty(), "empty stochastic number has no value");
        self.ones() as f64 / self.len() as f64
    }

    /// Bipolar value `2k/L − 1`.
    ///
    /// # Panics
    /// Panics on an empty stream.
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.unipolar_value() - 1.0
    }

    /// Samples a stream of length `len` with i.i.d. `P(1) = p`.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    pub fn generate_unipolar<R: Rng + ?Sized>(p: f64, len: usize, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        Self(
            (0..len)
                .map(|_| Bit::from_bool(rng.gen::<f64>() < p))
                .collect(),
        )
    }

    /// Samples a bipolar stream encoding `x ∈ [−1, 1]`.
    ///
    /// # Panics
    /// Panics unless `x ∈ [−1, 1]`.
    pub fn generate_bipolar<R: Rng + ?Sized>(x: f64, len: usize, rng: &mut R) -> Self {
        assert!((-1.0..=1.0).contains(&x), "bipolar value {x} out of range");
        Self::generate_unipolar((x + 1.0) / 2.0, len, rng)
    }

    /// Bit-wise AND with another stream — unipolar SC multiplication.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &Bitstream) -> Bitstream {
        assert_eq!(self.len(), other.len(), "stream length mismatch");
        Bitstream(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| Bit::from_bool(a.as_bool() && b.as_bool()))
                .collect(),
        )
    }

    /// Bit-wise XNOR with another stream — bipolar SC multiplication.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor(&self, other: &Bitstream) -> Bitstream {
        assert_eq!(self.len(), other.len(), "stream length mismatch");
        Bitstream(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| a.xnor(b))
                .collect(),
        )
    }
}

impl FromIterator<Bit> for Bitstream {
    fn from_iter<T: IntoIterator<Item = Bit>>(iter: T) -> Self {
        Self(iter.into_iter().collect())
    }
}

/// Parses a compact `"0100110100"` literal, useful in tests and docs.
///
/// # Panics
/// Panics on characters other than '0'/'1'.
pub fn parse_stream(s: &str) -> Bitstream {
    s.chars()
        .map(|c| match c {
            '0' => Bit::Zero,
            '1' => Bit::One,
            other => panic!("invalid stream character {other:?}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_unipolar_example() {
        // Section 2.3: 0100110100 carries 4/10 = 0.4.
        let x = parse_stream("0100110100");
        assert_eq!(x.ones(), 4);
        assert!((x.unipolar_value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn paper_bipolar_examples() {
        // 0.4 ↔ P(1) = 7/10: 1011011101.
        let x = parse_stream("1011011101");
        assert!((x.bipolar_value() - 0.4).abs() < 1e-12);
        // −0.6 ↔ P(1) = 2/10: 0100100000.
        let y = parse_stream("0100100000");
        assert!((y.bipolar_value() + 0.6).abs() < 1e-12);
    }

    #[test]
    fn generation_concentrates_on_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s = Bitstream::generate_bipolar(0.3, 50_000, &mut rng);
        assert!(
            (s.bipolar_value() - 0.3).abs() < 0.02,
            "{}",
            s.bipolar_value()
        );
    }

    #[test]
    fn xnor_multiplies_bipolar_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = Bitstream::generate_bipolar(0.6, 100_000, &mut rng);
        let b = Bitstream::generate_bipolar(-0.5, 100_000, &mut rng);
        let prod = a.xnor(&b);
        assert!(
            (prod.bipolar_value() - (0.6 * -0.5)).abs() < 0.02,
            "{}",
            prod.bipolar_value()
        );
    }

    #[test]
    fn and_multiplies_unipolar_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Bitstream::generate_unipolar(0.8, 100_000, &mut rng);
        let b = Bitstream::generate_unipolar(0.25, 100_000, &mut rng);
        let prod = a.and(&b);
        assert!((prod.unipolar_value() - 0.2).abs() < 0.01);
    }

    #[test]
    fn saturated_probabilities_are_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(Bitstream::generate_unipolar(1.0, 64, &mut rng).ones(), 64);
        assert_eq!(Bitstream::generate_unipolar(0.0, 64, &mut rng).ones(), 0);
    }

    #[test]
    #[should_panic(expected = "empty stochastic number")]
    fn empty_stream_has_no_value() {
        Bitstream::from_bits(vec![]).unipolar_value();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        Bitstream::generate_unipolar(1.5, 8, &mut rng);
    }
}
