//! Bit-packed stochastic streams for throughput-critical SC simulation.
//!
//! [`Bitstream`] stores one [`Bit`](aqfp_device::Bit) per element,
//! which is convenient for the short observation windows SupeRBNN needs
//! (L = 16–32) but far too slow for simulating the *pure* stochastic
//! computing baseline (SC-AQFP, paper Section 2.3), whose streams run to
//! 2048 bits and whose multiplies happen once per weight. [`PackedStream`]
//! packs 64 stream bits per `u64` word so XNOR multiplication and
//! popcount-style accumulation run as word operations.
//!
//! The word layout, tail-masking invariant and popcount kernels are shared
//! with every other packed fast path in the workspace through
//! [`BitPlane`]: a `PackedStream` is a `BitPlane`
//! whose index axis is *time* (stream position `t` lives in word `t / 64`,
//! bit `t % 64`) plus the stochastic-number value readouts.

use crate::bitplane::BitPlane;
use crate::number::Bitstream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic bit-stream packed 64 bits per word.
///
/// Supports the same unipolar/bipolar value readouts as
/// [`Bitstream`] plus word-parallel logic ops.
///
/// ```
/// use aqfp_sc::packed::PackedStream;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let a = PackedStream::generate_bipolar(0.5, 4096, &mut rng);
/// let b = PackedStream::generate_bipolar(-0.8, 4096, &mut rng);
/// let prod = a.xnor(&b); // bipolar SC multiplication
/// assert!((prod.bipolar_value() - (-0.4)).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedStream {
    plane: BitPlane,
}

impl PackedStream {
    /// An all-zero (`-1`-valued in bipolar terms) stream of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            plane: BitPlane::zeros(len),
        }
    }

    /// An all-one (`+1`-valued in bipolar terms) stream of length `len`.
    pub fn ones_stream(len: usize) -> Self {
        Self {
            plane: BitPlane::ones(len),
        }
    }

    /// Samples a unipolar stream with `P(bit = 1) = p`.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]`.
    pub fn generate_unipolar<R: Rng + ?Sized>(p: f64, len: usize, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // One u64 draw per bit, compared against a fixed threshold: exact
        // Bernoulli to within 2^-64 and branch-free inside the word loop.
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        };
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(64);
            let mut w = 0u64;
            for bit in 0..take {
                let draw: u64 = rng.gen();
                // `p >= 1.0` must yield all-ones; `<=` keeps that exact.
                if draw <= threshold && p > 0.0 {
                    w |= 1 << bit;
                }
            }
            words.push(w);
            remaining -= take;
        }
        Self {
            plane: BitPlane::from_words(words, len),
        }
    }

    /// Samples a bipolar stream carrying the value `x ∈ [−1, 1]` via
    /// `P(1) = (x + 1)/2` (paper Section 2.3).
    ///
    /// # Panics
    /// Panics if `x ∉ [−1, 1]`.
    pub fn generate_bipolar<R: Rng + ?Sized>(x: f64, len: usize, rng: &mut R) -> Self {
        assert!(
            (-1.0..=1.0).contains(&x),
            "bipolar value {x} outside [−1, 1]"
        );
        Self::generate_unipolar((x + 1.0) / 2.0, len, rng)
    }

    /// Packs an unpacked [`Bitstream`].
    pub fn from_bitstream(bits: &Bitstream) -> Self {
        Self {
            plane: BitPlane::from_bits(bits.bits()),
        }
    }

    /// Unpacks into a [`Bitstream`].
    pub fn to_bitstream(&self) -> Bitstream {
        Bitstream::from_bits(self.plane.to_bits())
    }

    /// The time-indexed [`BitPlane`] backing this stream.
    pub fn plane(&self) -> &BitPlane {
        &self.plane
    }

    /// Stream length in bits.
    pub fn len(&self) -> usize {
        self.plane.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.plane.is_empty()
    }

    /// The bit at stream position `t`.
    ///
    /// # Panics
    /// Panics if `t >= self.len()`.
    pub fn bit(&self, t: usize) -> bool {
        assert!(
            t < self.len(),
            "stream position {t} out of range (len {})",
            self.len()
        );
        self.plane.get(t)
    }

    /// Sets the bit at stream position `t`.
    ///
    /// # Panics
    /// Panics if `t >= self.len()`.
    pub fn set(&mut self, t: usize, value: bool) {
        assert!(
            t < self.len(),
            "stream position {t} out of range (len {})",
            self.len()
        );
        self.plane.set(t, value);
    }

    /// Number of ones in the stream.
    pub fn ones(&self) -> usize {
        self.plane.count_ones()
    }

    /// Number of ones among the first `prefix` bits.
    ///
    /// # Panics
    /// Panics if `prefix > self.len()`.
    pub fn ones_prefix(&self, prefix: usize) -> usize {
        assert!(
            prefix <= self.len(),
            "prefix {prefix} exceeds length {}",
            self.len()
        );
        self.plane.count_ones_prefix(prefix)
    }

    /// Unipolar value `ones / len`.
    ///
    /// # Panics
    /// Panics on an empty stream.
    pub fn unipolar_value(&self) -> f64 {
        assert!(!self.is_empty(), "empty stochastic number has no value");
        self.ones() as f64 / self.len() as f64
    }

    /// Bipolar value `2·ones/len − 1`.
    ///
    /// # Panics
    /// Panics on an empty stream.
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.unipolar_value() - 1.0
    }

    /// Bipolar multiplication: bitwise XNOR (paper Section 2.3).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor(&self, other: &PackedStream) -> PackedStream {
        assert_eq!(self.len(), other.len(), "stream length mismatch");
        Self {
            plane: self.plane.xnor(&other.plane),
        }
    }

    /// Number of ones of `self XNOR other` without materializing the
    /// product stream — the inner loop of SC matrix–vector products.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor_ones(&self, other: &PackedStream) -> usize {
        assert_eq!(self.len(), other.len(), "stream length mismatch");
        self.plane.xnor_ones(&other.plane)
    }

    /// Unipolar multiplication: bitwise AND.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &PackedStream) -> PackedStream {
        assert_eq!(self.len(), other.len(), "stream length mismatch");
        Self {
            plane: self.plane.and(&other.plane),
        }
    }

    /// Bitwise complement (bipolar negation).
    pub fn not(&self) -> PackedStream {
        Self {
            plane: self.plane.not(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packing_round_trips_through_bitstream() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Bitstream::generate_bipolar(0.3, 1000, &mut rng);
        let p = PackedStream::from_bitstream(&b);
        assert_eq!(p.to_bitstream(), b);
        assert_eq!(p.ones(), b.ones());
    }

    #[test]
    fn values_match_unpacked_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = PackedStream::generate_bipolar(-0.6, 200_000, &mut rng);
        assert!((p.bipolar_value() + 0.6).abs() < 0.01);
        let q = PackedStream::generate_unipolar(0.4, 200_000, &mut rng);
        assert!((q.unipolar_value() - 0.4).abs() < 0.01);
    }

    #[test]
    fn xnor_multiplies_bipolar_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = PackedStream::generate_bipolar(0.6, 400_000, &mut rng);
        let b = PackedStream::generate_bipolar(-0.5, 400_000, &mut rng);
        assert!((a.xnor(&b).bipolar_value() + 0.3).abs() < 0.01);
    }

    #[test]
    fn xnor_ones_agrees_with_materialized_product() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in [1usize, 63, 64, 65, 130, 1000] {
            let a = PackedStream::generate_bipolar(0.2, len, &mut rng);
            let b = PackedStream::generate_bipolar(-0.7, len, &mut rng);
            assert_eq!(a.xnor_ones(&b), a.xnor(&b).ones(), "len {len}");
        }
    }

    #[test]
    fn and_multiplies_unipolar_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = PackedStream::generate_unipolar(0.8, 400_000, &mut rng);
        let b = PackedStream::generate_unipolar(0.25, 400_000, &mut rng);
        assert!((a.and(&b).unipolar_value() - 0.2).abs() < 0.01);
    }

    #[test]
    fn not_negates_bipolar_value_and_keeps_tail_clean() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = PackedStream::generate_bipolar(0.4, 999, &mut rng);
        let n = a.not();
        assert_eq!(n.ones(), 999 - a.ones());
        assert!((n.bipolar_value() + a.bipolar_value()).abs() < 1e-12);
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            PackedStream::generate_unipolar(1.0, 200, &mut rng).ones(),
            200
        );
        assert_eq!(
            PackedStream::generate_unipolar(0.0, 200, &mut rng).ones(),
            0
        );
        assert_eq!(PackedStream::generate_bipolar(1.0, 65, &mut rng).ones(), 65);
        assert_eq!(PackedStream::generate_bipolar(-1.0, 65, &mut rng).ones(), 0);
    }

    #[test]
    fn ones_prefix_counts_partial_windows() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = PackedStream::generate_unipolar(0.5, 300, &mut rng);
        let b = p.to_bitstream();
        for prefix in [0usize, 1, 63, 64, 65, 128, 299, 300] {
            let expect = b.bits()[..prefix].iter().filter(|x| x.as_bool()).count();
            assert_eq!(p.ones_prefix(prefix), expect, "prefix {prefix}");
        }
    }

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(PackedStream::ones_stream(70).ones(), 70);
        assert_eq!(PackedStream::zeros(70).ones(), 0);
        assert!(PackedStream::zeros(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        PackedStream::generate_unipolar(1.5, 8, &mut rng);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let a = PackedStream::zeros(8);
        let b = PackedStream::zeros(9);
        a.xnor(&b);
    }
}
