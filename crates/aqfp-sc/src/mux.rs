//! MUX-based scaled addition — the classic pure-SC accumulator.
//!
//! A stochastic multiplexer selects one of its `n` input streams uniformly
//! at random each cycle; the output stream's bipolar value is the *mean* of
//! the input values, i.e. the sum scaled by `1/n`. This keeps every wire a
//! valid stochastic number (unlike an APC, whose output is binary), which
//! is why pure-SC DNNs such as SC-AQFP (paper Section 2.3) use it — and
//! also why they need very long streams: a sum whose useful signal is
//! `y` becomes a stream value `y/n`, and resolving it against stream
//! quantization noise of order `1/√L` demands `L ≫ (n/y)²`.
//!
//! SupeRBNN avoids this wall by accumulating with APCs in the binary
//! domain (paper Fig. 6b); this module exists to quantify the wall for the
//! baseline comparison.

use crate::packed::PackedStream;
use rand::Rng;

/// Scaled addition of bipolar streams via a random-select multiplexer.
///
/// Returns a stream whose bipolar value estimates
/// `(Σᵢ xᵢ) / n` for input values `xᵢ`.
///
/// ```
/// use aqfp_sc::mux::mux_scaled_add;
/// use aqfp_sc::packed::PackedStream;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let a = PackedStream::generate_bipolar(0.8, 262_144, &mut rng);
/// let b = PackedStream::generate_bipolar(-0.4, 262_144, &mut rng);
/// let s = mux_scaled_add(&[&a, &b], &mut rng);
/// assert!((s.bipolar_value() - 0.2).abs() < 0.02); // (0.8 − 0.4) / 2
/// ```
///
/// # Panics
/// Panics if `streams` is empty or the streams have unequal lengths.
pub fn mux_scaled_add<R: Rng + ?Sized>(streams: &[&PackedStream], rng: &mut R) -> PackedStream {
    assert!(!streams.is_empty(), "MUX addition needs at least one input");
    let len = streams[0].len();
    assert!(
        streams.iter().all(|s| s.len() == len),
        "MUX inputs must share one stream length"
    );
    let mut out = PackedStream::zeros(len);
    for t in 0..len {
        let pick = rng.gen_range(0..streams.len());
        if streams[pick].bit(t) {
            out.set(t, true);
        }
    }
    out
}

/// Per-cycle MUX selection driven by a caller-supplied select function —
/// used by the SC inference engine, which cannot afford to materialize all
/// product streams. `select(t)` returns the chosen input's bit at cycle
/// `t`.
pub fn mux_collect(len: usize, mut select: impl FnMut(usize) -> bool) -> PackedStream {
    let mut out = PackedStream::zeros(len);
    for t in 0..len {
        if select(t) {
            out.set(t, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_of_many_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        let values = [0.9, -0.2, 0.5, -0.8, 0.1, 0.3, -0.4, 0.6];
        let streams: Vec<PackedStream> = values
            .iter()
            .map(|&v| PackedStream::generate_bipolar(v, 300_000, &mut rng))
            .collect();
        let refs: Vec<&PackedStream> = streams.iter().collect();
        let got = mux_scaled_add(&refs, &mut rng).bipolar_value();
        let want = values.iter().sum::<f64>() / values.len() as f64;
        assert!((got - want).abs() < 0.02, "got {got}, want {want}");
    }

    #[test]
    fn single_input_passes_value_through() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = PackedStream::generate_bipolar(-0.35, 200_000, &mut rng);
        let got = mux_scaled_add(&[&a], &mut rng).bipolar_value();
        assert!((got - a.bipolar_value()).abs() < 0.01);
    }

    #[test]
    fn output_variance_shrinks_with_length() {
        // The 1/√L convergence that forces pure-SC designs to long streams.
        let mut errs = Vec::new();
        for &len in &[256usize, 4096, 65_536] {
            let mut rng = StdRng::seed_from_u64(13);
            let a = PackedStream::generate_bipolar(0.3, len, &mut rng);
            let b = PackedStream::generate_bipolar(-0.1, len, &mut rng);
            let got = mux_scaled_add(&[&a, &b], &mut rng).bipolar_value();
            errs.push((got - 0.1).abs());
        }
        assert!(errs[2] < errs[0], "error did not shrink: {errs:?}");
    }

    #[test]
    fn mux_collect_matches_manual_selection() {
        let out = mux_collect(130, |t| t % 3 == 0);
        assert_eq!(out.ones(), (0..130).filter(|t| t % 3 == 0).count());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_empty_input_set() {
        let mut rng = StdRng::seed_from_u64(14);
        mux_scaled_add(&[], &mut rng);
    }

    #[test]
    #[should_panic(expected = "share one stream length")]
    fn rejects_mismatched_lengths() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = PackedStream::zeros(8);
        let b = PackedStream::zeros(16);
        mux_scaled_add(&[&a, &b], &mut rng);
    }
}
