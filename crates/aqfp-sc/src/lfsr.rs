//! LFSR-based stochastic-number generation — the conventional-SC baseline.
//!
//! Classical stochastic-computing hardware generates bit-streams by
//! comparing a linear-feedback shift register against the target value.
//! The paper (Section 4.3) emphasizes that AQFP gets i.i.d. streams *for
//! free* from thermal switching ("thanks to the true randomness property of
//! the AQFP buffer"), whereas LFSR streams are pseudo-random and mutually
//! correlated unless every generator is carefully seeded/offset — a real
//! cost and accuracy concern in CMOS SC designs. This module provides the
//! LFSR generator and the cross-correlation metric used to quantify that
//! difference.

use crate::number::Bitstream;
use aqfp_device::Bit;
use serde::{Deserialize, Serialize};

/// A 16-bit Fibonacci LFSR (taps 16, 15, 13, 4 — maximal length 2¹⁶ − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR; a zero seed is mapped to 1 (the all-zero state is a
    /// fixed point of the recurrence).
    pub fn new(seed: u16) -> Self {
        Self {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Advances one step and returns the new state.
    pub fn next_state(&mut self) -> u16 {
        let bit = (self.state >> 15) ^ (self.state >> 14) ^ (self.state >> 12) ^ (self.state >> 3);
        self.state = (self.state << 1) | (bit & 1);
        self.state
    }

    /// Generates a unipolar stream of `len` bits encoding probability `p`:
    /// each cycle emits 1 iff the LFSR state (as a fraction of 2¹⁶) is
    /// below `p`.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    pub fn generate_unipolar(&mut self, p: f64, len: usize) -> Bitstream {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let threshold = (p * 65536.0) as u32;
        (0..len)
            .map(|_| Bit::from_bool((self.next_state() as u32) < threshold))
            .collect()
    }

    /// Generates a bipolar stream encoding `x ∈ [−1, 1]`.
    ///
    /// # Panics
    /// Panics unless `x ∈ [−1, 1]`.
    pub fn generate_bipolar(&mut self, x: f64, len: usize) -> Bitstream {
        assert!((-1.0..=1.0).contains(&x), "bipolar value {x} out of range");
        self.generate_unipolar((x + 1.0) / 2.0, len)
    }
}

/// Pearson correlation between two equal-length bit-streams (±1 values).
/// Returns 0 for constant streams (no variance ⇒ no linear dependence to
/// measure).
///
/// # Panics
/// Panics on length mismatch or empty streams.
pub fn stream_correlation(a: &Bitstream, b: &Bitstream) -> f64 {
    assert_eq!(a.len(), b.len(), "stream length mismatch");
    assert!(!a.is_empty(), "empty streams have no correlation");
    let n = a.len() as f64;
    let va: Vec<f64> = a.bits().iter().map(|b| b.to_value()).collect();
    let vb: Vec<f64> = b.bits().iter().map(|b| b.to_value()).collect();
    let ma = va.iter().sum::<f64>() / n;
    let mb = vb.iter().sum::<f64>() / n;
    let cov: f64 = va
        .iter()
        .zip(&vb)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / n;
    let sa = (va.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n).sqrt();
    let sb = (vb.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n).sqrt();
    if sa == 0.0 || sb == 0.0 {
        return 0.0;
    }
    cov / (sa * sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lfsr_is_maximal_length() {
        let mut l = Lfsr16::new(1);
        let start = l.next_state();
        let mut period = 1u32;
        while l.next_state() != start {
            period += 1;
            assert!(period <= 65535, "period exceeded 2^16 − 1");
        }
        assert_eq!(period, 65535);
    }

    #[test]
    fn zero_seed_is_rescued() {
        let mut l = Lfsr16::new(0);
        // Must not be stuck at zero.
        assert_ne!(l.next_state(), 0);
    }

    #[test]
    fn unipolar_value_concentrates() {
        let mut l = Lfsr16::new(0xACE1);
        let s = l.generate_unipolar(0.3, 4096);
        assert!(
            (s.unipolar_value() - 0.3).abs() < 0.02,
            "{}",
            s.unipolar_value()
        );
    }

    #[test]
    fn shared_lfsr_streams_are_strongly_correlated() {
        // The classical SC pitfall: two values generated from the SAME
        // LFSR sequence (as in a shared-RNG design) are highly correlated,
        // while AQFP thermal streams are independent.
        let mut shared = Lfsr16::new(0xBEEF);
        let states: Vec<u16> = (0..2048).map(|_| shared.next_state()).collect();
        let from_states = |p: f64| -> Bitstream {
            let threshold = (p * 65536.0) as u32;
            states
                .iter()
                .map(|&s| Bit::from_bool((s as u32) < threshold))
                .collect()
        };
        let a = from_states(0.5);
        let b = from_states(0.55);
        let corr_lfsr = stream_correlation(&a, &b).abs();

        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Bitstream::generate_unipolar(0.5, 2048, &mut rng);
        let y = Bitstream::generate_unipolar(0.55, 2048, &mut rng);
        let corr_aqfp = stream_correlation(&x, &y).abs();

        assert!(corr_lfsr > 0.8, "shared-LFSR correlation {corr_lfsr}");
        assert!(corr_aqfp < 0.1, "thermal-stream correlation {corr_aqfp}");
    }

    #[test]
    fn correlation_of_identical_and_inverted_streams() {
        let mut l = Lfsr16::new(7);
        let a = l.generate_unipolar(0.5, 512);
        assert!((stream_correlation(&a, &a) - 1.0).abs() < 1e-9);
        let inv: Bitstream = a.bits().iter().map(|b| b.not()).collect();
        assert!((stream_correlation(&a, &inv) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_streams_report_zero() {
        let ones: Bitstream = (0..64).map(|_| Bit::One).collect();
        let mut l = Lfsr16::new(5);
        let s = l.generate_unipolar(0.5, 64);
        assert_eq!(stream_correlation(&ones, &s), 0.0);
    }

    #[test]
    fn correlated_inputs_break_sc_multiplication() {
        // XNOR multiplication assumes independence; feeding it two streams
        // from the same LFSR produces a badly biased product, while
        // independent thermal streams multiply correctly. This is the
        // quantitative version of the paper's "true randomness" advantage.
        let mut shared = Lfsr16::new(0x1234);
        let states: Vec<u16> = (0..8192).map(|_| shared.next_state()).collect();
        let from_states = |x: f64| -> Bitstream {
            let threshold = (((x + 1.0) / 2.0) * 65536.0) as u32;
            states
                .iter()
                .map(|&s| Bit::from_bool((s as u32) < threshold))
                .collect()
        };
        let a = from_states(0.6);
        let b = from_states(-0.4);
        let bad = a.xnor(&b).bipolar_value();

        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Bitstream::generate_bipolar(0.6, 8192, &mut rng);
        let y = Bitstream::generate_bipolar(-0.4, 8192, &mut rng);
        let good = x.xnor(&y).bipolar_value();

        let truth = 0.6 * -0.4;
        assert!((good - truth).abs() < 0.05, "independent product {good}");
        assert!(
            (bad - truth).abs() > 0.2,
            "shared-LFSR product {bad} should be visibly biased"
        );
    }
}
