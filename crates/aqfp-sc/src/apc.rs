//! The approximate parallel counter (APC).
//!
//! The APC "counts the number of 1s in the inputs and represents the result
//! with a binary number" (paper Section 4.3, citing Kim et al.). We provide
//! a fast functional model used by the inference engine and a gate-level
//! build (a Wallace-tree popcount from [`aqfp_netlist::builders`]) used for
//! validation and for JJ/energy costing of the accumulation module.

use aqfp_device::{Bit, CellLibrary, ClockScheme};
use aqfp_netlist::{balance, builders, report};
use serde::{Deserialize, Serialize};

/// An `n`-input parallel counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Apc {
    inputs: usize,
}

impl Apc {
    /// Creates an APC with `inputs` parallel input lines.
    ///
    /// # Panics
    /// Panics if `inputs == 0`.
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "APC needs at least one input");
        Self { inputs }
    }

    /// Number of parallel input lines.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Functional count of ones in one parallel input word.
    ///
    /// # Panics
    /// Panics if `word.len() != self.inputs()`.
    pub fn count(&self, word: &[Bit]) -> u32 {
        assert_eq!(word.len(), self.inputs, "APC width mismatch");
        word.iter().filter(|b| b.as_bool()).count() as u32
    }

    /// Builds the gate-level popcount netlist of this APC.
    pub fn netlist(&self) -> aqfp_netlist::Netlist {
        let (nl, _, _) = builders::popcount(self.inputs);
        nl
    }

    /// Builds the gate-level netlist of the *approximate* APC variant
    /// (weight-0 column reduced with 2-gate approximate adders — Kim et
    /// al.\[41\]; see [`builders::approx_popcount`]).
    pub fn approx_netlist(&self) -> aqfp_netlist::Netlist {
        let (nl, _, _) = builders::approx_popcount(self.inputs, 1);
        nl
    }

    /// Functional count of the approximate APC — a cycle-accurate mirror
    /// of [`Self::approx_netlist`] (validated bit-exactly in tests), fast
    /// enough for the inference datapath.
    ///
    /// The result differs from the true count by at most ±1 per weight-0
    /// approximate adder, and the error is unbiased for balanced streams.
    ///
    /// # Panics
    /// Panics if `word.len() != self.inputs()`.
    pub fn count_approx(&self, word: &[Bit]) -> u32 {
        assert_eq!(word.len(), self.inputs, "APC width mismatch");
        // Mirror of builders::popcount_impl(n, 1): carry-save column
        // reduction where the *first-level* weight-0 column uses
        // carry = MAJ, sum = ¬carry.
        let mut columns: Vec<Vec<bool>> = vec![word.iter().map(|b| b.as_bool()).collect()];
        let mut level = 0u32;
        loop {
            let mut reduced = false;
            let mut next: Vec<Vec<bool>> = vec![Vec::new(); columns.len() + 1];
            for (w, col) in columns.iter().enumerate() {
                let approx = level == 0 && w == 0;
                let mut wires = col.clone();
                while wires.len() >= 3 {
                    let c = wires.pop().unwrap();
                    let b = wires.pop().unwrap();
                    let a = wires.pop().unwrap();
                    let carry = (a as u8 + b as u8 + c as u8) >= 2;
                    let sum = if approx { !carry } else { a ^ b ^ c };
                    next[w].push(sum);
                    next[w + 1].push(carry);
                    reduced = true;
                }
                if wires.len() == 2 {
                    let b = wires.pop().unwrap();
                    let a = wires.pop().unwrap();
                    next[w].push(a ^ b);
                    next[w + 1].push(a && b);
                    reduced = true;
                } else {
                    next[w].extend(wires);
                }
            }
            while next.last().is_some_and(Vec::is_empty) {
                next.pop();
            }
            columns = next;
            level += 1;
            if !reduced {
                break;
            }
        }
        columns
            .iter()
            .enumerate()
            .map(|(w, col)| (col[0] as u32) << w)
            .sum()
    }

    /// Hardware cost of the approximate APC variant (legalized and
    /// balanced, like [`Self::hardware_cost`]).
    pub fn approx_hardware_cost(
        &self,
        lib: &CellLibrary,
        clock: &ClockScheme,
    ) -> report::CostReport {
        let mut nl = self.approx_netlist();
        balance::legalize_fanout(&mut nl);
        balance::balance(&mut nl, clock);
        report::cost_report(&nl, lib, clock)
    }

    /// Evaluates the gate-level netlist on one input word (slow; for
    /// validation).
    ///
    /// # Panics
    /// Panics if `word.len() != self.inputs()`.
    pub fn count_gate_level(&self, word: &[Bit]) -> u32 {
        assert_eq!(word.len(), self.inputs, "APC width mismatch");
        let nl = self.netlist();
        let inputs: Vec<bool> = word.iter().map(|b| b.as_bool()).collect();
        let outs = nl.eval(&inputs).expect("width checked above");
        outs.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum()
    }

    /// Hardware cost of the APC after fan-out legalization and 4-phase path
    /// balancing — what the accumulation-module energy model charges.
    pub fn hardware_cost(&self, lib: &CellLibrary, clock: &ClockScheme) -> report::CostReport {
        let mut nl = self.netlist();
        balance::legalize_fanout(&mut nl);
        balance::balance(&mut nl, clock);
        report::cost_report(&nl, lib, clock)
    }
}

/// Gate-level cost of the three candidate SN accumulators for one
/// `n`-input column group (paper Section 4.3's design choice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterComparison {
    /// Parallel input lines `n`.
    pub inputs: usize,
    /// Observation-window length the accumulative design must cover.
    pub window: usize,
    /// JJ count of the exact APC (Wallace-tree popcount).
    pub exact_apc_jj: u64,
    /// JJ count of the approximate APC (weight-0 column uses 2-gate
    /// approximate adders — Kim et al.\[41\]).
    pub approx_apc_jj: u64,
    /// JJ count of the conventional accumulative parallel counter
    /// (Parhami & Yeh \[53\]): popcount + ripple-carry accumulate add.
    pub accumulative_logic_jj: u64,
    /// JJ count of the accumulative design's running-total register
    /// (buffer-chain memory cells, clocked separately per Section 4.4).
    pub accumulative_memory_jj: u64,
}

impl CounterComparison {
    /// Total JJ of the conventional accumulative design (logic + memory).
    pub fn accumulative_total_jj(&self) -> u64 {
        self.accumulative_logic_jj + self.accumulative_memory_jj
    }
}

/// Compares the APC the paper chose against the conventional accumulative
/// parallel counter it cites, for `n` inputs observed over `window` clock
/// cycles: "The APC ... consumes fewer logic gates compared with the
/// conventional accumulative parallel counter" (Section 4.3).
///
/// All three designs are built gate-for-gate from the minimalist cell
/// library and costed after fan-out legalization and path balancing.
///
/// # Panics
/// Panics if `n == 0` or `window == 0`.
pub fn counter_comparison(
    n: usize,
    window: usize,
    lib: &CellLibrary,
    clock: &ClockScheme,
) -> CounterComparison {
    assert!(n > 0, "counter needs at least one input");
    assert!(window > 0, "window must cover at least one cycle");

    let cost_of = |mut nl: aqfp_netlist::Netlist| {
        balance::legalize_fanout(&mut nl);
        balance::balance(&mut nl, clock);
        report::cost_report(&nl, lib, clock).jj_total
    };

    let exact_apc_jj = cost_of(builders::popcount(n).0);
    let approx_apc_jj = cost_of(builders::approx_popcount(n, 1).0);

    // The accumulative design's running total must hold n·window.
    let max_total = (n * window) as u64;
    let acc_width = (64 - max_total.leading_zeros()).max(1) as usize;
    let accumulative_logic_jj = cost_of(builders::accumulative_counter(n, acc_width).0);
    let buffer_jj = u64::from(lib.cost(aqfp_device::GateKind::Buffer).jj_count);
    let accumulative_memory_jj = (acc_width as u64 + 1) * buffer_jj;

    CounterComparison {
        inputs: n,
        window,
        exact_apc_jj,
        approx_apc_jj,
        accumulative_logic_jj,
        accumulative_memory_jj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(pattern: u32, n: usize) -> Vec<Bit> {
        (0..n)
            .map(|i| Bit::from_bool((pattern >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn functional_counts_ones() {
        let apc = Apc::new(8);
        assert_eq!(apc.count(&word(0b0000_0000, 8)), 0);
        assert_eq!(apc.count(&word(0b1111_1111, 8)), 8);
        assert_eq!(apc.count(&word(0b1010_0110, 8)), 4);
    }

    #[test]
    fn gate_level_matches_functional_exhaustively() {
        for n in [1usize, 2, 3, 5, 8] {
            let apc = Apc::new(n);
            for m in 0..(1u32 << n) {
                let w = word(m, n);
                assert_eq!(
                    apc.count_gate_level(&w),
                    apc.count(&w),
                    "n={n} pattern={m:b}"
                );
            }
        }
    }

    #[test]
    fn gate_level_matches_functional_sampled_16() {
        let apc = Apc::new(16);
        for m in [0u32, 0xFFFF, 0x5555, 0xAAAA, 0x1234, 0x8001] {
            let w = word(m, 16);
            assert_eq!(apc.count_gate_level(&w), apc.count(&w), "pattern={m:x}");
        }
    }

    #[test]
    fn hardware_cost_grows_with_width() {
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        let c4 = Apc::new(4).hardware_cost(&lib, &clock);
        let c16 = Apc::new(16).hardware_cost(&lib, &clock);
        assert!(c16.jj_total > c4.jj_total);
        assert!(c16.depth >= c4.depth);
        assert!(c4.jj_total > 0);
    }

    #[test]
    fn functional_approx_mirrors_gate_level_exhaustively() {
        for n in [1usize, 2, 3, 4, 5, 6, 8] {
            let apc = Apc::new(n);
            let nl = apc.approx_netlist();
            for m in 0..(1u32 << n) {
                let w = word(m, n);
                let inputs: Vec<bool> = w.iter().map(|b| b.as_bool()).collect();
                let outs = nl.eval(&inputs).unwrap();
                let gate: u32 = outs.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
                assert_eq!(apc.count_approx(&w), gate, "n={n} pattern={m:b}");
            }
        }
    }

    #[test]
    fn approx_count_error_is_bounded_and_small_on_average() {
        let apc = Apc::new(16);
        let mut total_err = 0i64;
        let mut cases = 0i64;
        for m in (0..(1u32 << 16)).step_by(97) {
            let w = word(m, 16);
            let err = apc.count_approx(&w) as i64 - apc.count(&w) as i64;
            assert!(err.abs() <= 6, "pattern {m:x}: error {err}");
            total_err += err;
            cases += 1;
        }
        assert!(
            (total_err as f64 / cases as f64).abs() < 0.5,
            "mean error {total_err}/{cases}"
        );
    }

    #[test]
    fn approx_hardware_is_cheaper() {
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        let apc = Apc::new(16);
        assert!(
            apc.approx_hardware_cost(&lib, &clock).jj_total
                < apc.hardware_cost(&lib, &clock).jj_total
        );
    }

    #[test]
    fn papers_gate_count_claim_holds() {
        // Section 4.3: the APC consumes fewer logic gates than the
        // conventional accumulative parallel counter.
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        for n in [8usize, 16, 32] {
            let cmp = counter_comparison(n, 32, &lib, &clock);
            assert!(
                cmp.exact_apc_jj < cmp.accumulative_logic_jj,
                "n={n}: APC {} vs accumulative logic {}",
                cmp.exact_apc_jj,
                cmp.accumulative_logic_jj
            );
            assert!(
                cmp.approx_apc_jj < cmp.exact_apc_jj,
                "n={n}: approximation should save JJs"
            );
            assert!(cmp.accumulative_memory_jj > 0);
        }
    }

    #[test]
    fn comparison_window_widens_the_accumulator() {
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        let short = counter_comparison(16, 2, &lib, &clock);
        let long = counter_comparison(16, 2048, &lib, &clock);
        assert!(long.accumulative_total_jj() > short.accumulative_total_jj());
        assert_eq!(long.exact_apc_jj, short.exact_apc_jj, "APC is window-free");
    }

    #[test]
    #[should_panic(expected = "window must cover")]
    fn comparison_rejects_zero_window() {
        let lib = CellLibrary::hstp();
        let clock = ClockScheme::four_phase_5ghz();
        counter_comparison(4, 0, &lib, &clock);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_width_panics() {
        Apc::new(0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_word_width_panics() {
        Apc::new(4).count(&[Bit::One; 3]);
    }
}
