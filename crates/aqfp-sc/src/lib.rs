//! Stochastic computing on AQFP (paper Sections 2.3, 4.3, 5.4.2).
//!
//! SupeRBNN's key architectural insight is that the *defect* of the AQFP
//! buffer — stochastic switching inside its gray-zone — is exactly the
//! random-bit source stochastic computing needs. Holding a crossbar input
//! for an observation window of `L` clock cycles turns each column's neuron
//! output into a stochastic number whose probability encodes the column's
//! analog value; approximate parallel counters (APCs) then add those numbers
//! across the crossbars that share one logical filter, and a comparator
//! re-binarizes the total (paper Fig. 6).
//!
//! Modules:
//!
//! * [`number`] — bit-streams with unipolar/bipolar encodings;
//! * [`apc`] — the approximate parallel counter, as a functional model
//!   validated bit-exactly against its gate-level netlist;
//! * [`accumulate`] — the SC-based accumulation module (Fig. 6b) with its
//!   hardware cost model;
//! * [`analysis`] — SC error analysis: the average mismatch error AME of
//!   Eq. 18 and the Bernoulli estimator variance governing the bit-stream
//!   length trade-off (Fig. 10);
//! * [`lfsr`] — the conventional LFSR stochastic-number generator and the
//!   stream-correlation metric quantifying the paper's "true randomness"
//!   advantage of AQFP thermal switching;
//! * [`bitplane`] — the shared bit-packing substrate: ±1 planes and
//!   matrices in `u64` words with XNOR–popcount dot/GEMM kernels, used by
//!   the packed streams here, the software BNN baseline, and the batched
//!   deploy engine;
//! * [`counter`] — the keyed counter-mode RNG ([`CounterStream`]): every
//!   Bernoulli draw a pure function of (key, counter) coordinates, so
//!   observation windows generate independently, in any order, on any
//!   worker count — the parallel alternative to the serial seed-matched
//!   samplers in [`bitplane`];
//! * [`packed`] — bit-packed streams (64 bits/word) for simulating the
//!   long-stream *pure-SC* baseline at tolerable cost;
//! * [`mux`] — MUX-based scaled addition, the accumulator of pure-SC
//!   designs and the source of their long-stream requirement;
//! * [`fsm`] — the Brown–Card `Stanh` saturating-counter activation used
//!   by pure-SC DNN layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
pub mod analysis;
pub mod apc;
pub mod bitplane;
pub mod counter;
pub mod fsm;
pub mod lfsr;
pub mod mux;
pub mod number;
pub mod packed;

pub use accumulate::{AccumulationModule, ScAccumError};
pub use apc::Apc;
pub use bitplane::{random_probe_plane, striped_probe_plane, BitPlane, PackedMatrix, Word, V256};
pub use counter::CounterStream;
pub use number::Bitstream;
pub use packed::PackedStream;

/// Crate-wide result alias: every fallible SC-accumulation API fails with
/// [`ScAccumError`].
pub type Result<T> = std::result::Result<T, ScAccumError>;
