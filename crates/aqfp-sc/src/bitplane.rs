//! Bit-packed ±1 planes and matrices — the shared substrate of every
//! XNOR–popcount fast path in the workspace.
//!
//! A [`BitPlane`] packs a vector of AQFP logic values (±1 in the BNN value
//! domain) into `u64` words, 64 bits per word. The packing is little-endian
//! in the index: element `i` lives in word `i / 64`, bit `i % 64`. Unused
//! high bits of the last word are kept zero by every constructor and
//! mutation, so whole-plane popcounts need no masking.
//!
//! On top of the plane, [`PackedMatrix`] stores a row-major matrix of
//! planes sharing one width (one contiguous `u64` buffer, each row padded
//! to a whole number of words). Together they turn the signed dot product
//! of ±1 vectors into `2·popcount(XNOR(a, b)) − n` evaluated word-by-word —
//! the software analogue of the paper's massively parallel single-bit
//! hardware datapath. [`xnor_ones_range`] additionally counts matches over
//! an arbitrary bit range, which is what crossbar *tiles* (sub-ranges of a
//! layer's fan-in) need.
//!
//! # Word layout invariant
//!
//! Every kernel in this module — and every consumer in the workspace, from
//! the training-side packed GEMM to the batched deploy engine — assumes
//! **little-endian-in-index** packing: element `i` lives in word `i / 64`
//! at bit position `i % 64`, logic '1' encodes the value `+1`, and bits
//! past the declared length (the *tail* of the last word, and row bits
//! past `width` in a [`PackedMatrix`]) are zero. Constructors establish
//! the tail invariant and safe mutators preserve it; the raw-word escape
//! hatches ([`PackedMatrix::storage_mut`], [`PackedMatrix::row_words_mut`],
//! [`PackedMatrix::apply_row_mask`]) document it as a caller obligation.
//! Breaking it silently corrupts whole-plane popcounts.
//!
//! # Worked example: pack → `packed_im2col` → sign-GEMM
//!
//! The three steps every packed convolution takes — binarize and pack a
//! feature map, unfold its receptive fields by whole-word shifts, and hit
//! the fields with an XNOR–popcount GEMM:
//!
//! ```
//! use aqfp_sc::bitplane::{packed_im2col, BitPlane, PackedMatrix};
//!
//! // 1. Pack a 1-channel 4×4 feature map by sign (v ≥ 0 packs as +1).
//! let values: Vec<f32> = (0..16).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
//! let plane = BitPlane::from_signs(&values);
//! assert_eq!(plane.len(), 16);
//!
//! // 2. Unfold 3×3 receptive fields (stride 1, pad 1 reads as −1):
//! //    one row per output pixel, c·k·k = 9 bits per row.
//! let fields = packed_im2col(&plane, 1, 4, 4, 3, 1, 1, false);
//! assert_eq!((fields.rows(), fields.width()), (16, 9));
//!
//! // 3. Two ±1 filters as packed rows; the GEMM returns every signed dot
//! //    `2·popcount(XNOR) − 9` in `[filters × pixels]` row-major order.
//! let filters = PackedMatrix::from_signs(&[1.0; 18], 2, 9);
//! let dots = filters.xnor_gemm(&fields);
//! assert_eq!(dots.len(), 2 * 16);
//! // An all-(+1) filter's dot is the field's popcount scaled to ±1.
//! let field0 = fields.row_plane(0);
//! assert_eq!(dots[0], 2 * field0.count_ones() as i64 - 9);
//! ```

use aqfp_device::Bit;
use serde::{Deserialize, Serialize};

/// A packed vector of ±1 values: bit `1` carries `+1`, bit `0` carries `−1`.
///
/// Layout invariant (see the [module docs](self)): element `i` is stored
/// little-endian in the index — word `i / 64`, bit `i % 64` — and all bits
/// of the last word past [`len`](BitPlane::len) are zero, so whole-plane
/// popcounts ([`count_ones`](BitPlane::count_ones), XNOR dots) never need a
/// tail mask.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPlane {
    words: Vec<u64>,
    len: usize,
}

/// Popcount of the bit range `[start, start + len)` of a packed word
/// slice, with [`BitPlane`] bit order. The one audited boundary-masking
/// kernel: [`BitPlane::count_ones_prefix`] and the packed deploy engine's
/// tile loop both count through it.
///
/// # Panics
/// Panics if the range reads past the slice.
#[inline]
pub fn count_ones_range(words: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let first = start / 64;
    let last = (end - 1) / 64;
    assert!(last < words.len(), "range past packed slice");
    if first == last {
        let mask = if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << (start % 64)
        };
        return (words[first] & mask).count_ones() as usize;
    }
    let mut n = (words[first] >> (start % 64)).count_ones() as usize;
    for w in &words[first + 1..last] {
        n += w.count_ones() as usize;
    }
    let hi = end % 64;
    let last_word = if hi == 0 {
        words[last]
    } else {
        words[last] & ((1u64 << hi) - 1)
    };
    n + last_word.count_ones() as usize
}

/// Counts the positions in `[start, start + len)` where `a` and `b` agree
/// (XNOR ones), reading both slices with the [`BitPlane`] bit order.
///
/// This is the tile-partial kernel of the packed deploy engine: a crossbar
/// tile covers a sub-range of the fan-in, and its XNOR-product sum is
/// `2·matches − len`. Boundary words are masked like
/// [`count_ones_range`], so ranges may start and end anywhere, including
/// mid-word and at non-multiple-of-64 widths.
///
/// # Panics
/// Panics if the range reads past either slice.
pub fn xnor_ones_range(a: &[u64], b: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let first = start / 64;
    let last = (end - 1) / 64;
    assert!(last < a.len() && last < b.len(), "range past packed slice");
    let mut ones = 0usize;
    for w in first..=last {
        let mut x = !(a[w] ^ b[w]);
        if w == first {
            let lo = start % 64;
            if lo > 0 {
                x &= u64::MAX << lo;
            }
        }
        if w == last {
            let hi = end % 64;
            if hi > 0 {
                x &= (1u64 << hi) - 1;
            }
        }
        ones += x.count_ones() as usize;
    }
    ones
}

/// Reads up to 64 bits starting at bit `start` of a packed slice,
/// low-aligned (bit `start` lands in bit 0 of the result), with bits past
/// the requested count cleared.
///
/// # Panics
/// Debug-panics if the range reads past the slice (release builds index
/// out of bounds only when the *first* needed word is past the end).
#[inline]
fn read_bits(src: &[u64], start: usize, n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n), "read_bits takes 1..=64 bits");
    debug_assert!(start + n <= src.len() * 64, "read past packed slice");
    let w = start / 64;
    let b = start % 64;
    let mut val = src[w] >> b;
    if b != 0 && b + n > 64 {
        val |= src[w + 1] << (64 - b);
    }
    if n < 64 {
        val &= (1u64 << n) - 1;
    }
    val
}

/// Writes `n ≤ 64` low-aligned bits at bit `pos` of a packed slice,
/// handling a word straddle; with `overwrite` the destination range is
/// cleared first, otherwise bits OR in.
#[inline]
fn write_bits(dst: &mut [u64], pos: usize, bits: u64, n: usize, overwrite: bool) {
    debug_assert!((1..=64).contains(&n), "write_bits takes 1..=64 bits");
    debug_assert!(pos + n <= dst.len() * 64, "write past packed slice");
    let w = pos / 64;
    let b = pos % 64;
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    if overwrite {
        dst[w] &= !(mask << b);
    }
    dst[w] |= bits << b;
    if b + n > 64 {
        if overwrite {
            dst[w + 1] &= !(mask >> (64 - b));
        }
        dst[w + 1] |= bits >> (64 - b);
    }
}

/// ORs the bit range `[src_start, src_start + len)` of `src` into `dst` at
/// `dst_start`, moving whole `u64` words per step (a shifted-word
/// scatter). This is the gather kernel of [`packed_im2col`]: one call
/// moves a full kernel row of a receptive field instead of `k` per-bit
/// `set` calls.
///
/// Destination bits already set stay set (OR semantics); use
/// [`copy_bits_range`] to overwrite.
///
/// # Panics
/// Panics if either range reads or writes past its slice.
#[inline]
pub fn or_shifted_range(
    dst: &mut [u64],
    dst_start: usize,
    src: &[u64],
    src_start: usize,
    len: usize,
) {
    if len == 0 {
        return;
    }
    assert!(src_start + len <= src.len() * 64, "source range past slice");
    assert!(
        dst_start + len <= dst.len() * 64,
        "destination range past slice"
    );
    let mut done = 0usize;
    while done < len {
        let d = dst_start + done;
        let take = (64 - d % 64).min(len - done);
        dst[d / 64] |= read_bits(src, src_start + done, take) << (d % 64);
        done += take;
    }
}

/// Copies (overwrites) the bit range `[src_start, src_start + len)` of
/// `src` into `dst` at `dst_start`, clearing the destination bits first.
/// The word-shift kernel of [`or_shifted_range`] with replace semantics —
/// what a `+1`-filled (all-ones) im2col row needs.
///
/// # Panics
/// Panics if either range reads or writes past its slice.
#[inline]
pub fn copy_bits_range(
    dst: &mut [u64],
    dst_start: usize,
    src: &[u64],
    src_start: usize,
    len: usize,
) {
    if len == 0 {
        return;
    }
    assert!(src_start + len <= src.len() * 64, "source range past slice");
    assert!(
        dst_start + len <= dst.len() * 64,
        "destination range past slice"
    );
    let mut done = 0usize;
    while done < len {
        let d = dst_start + done;
        let take = (64 - d % 64).min(len - done);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        let w = &mut dst[d / 64];
        *w = (*w & !(mask << (d % 64))) | (read_bits(src, src_start + done, take) << (d % 64));
        done += take;
    }
}

/// Draw threshold of the "never" Bernoulli law (`p ≤ 0`): sampling
/// consumes **no** RNG draws and every lane reads '0' — mirroring the
/// saturated fast path of the scalar gray-zone sampler
/// (`GrayZone::sample` skips the draw outside the gray-zone).
pub const BERNOULLI_NEVER: u64 = 0;

/// Draw threshold of the "always" Bernoulli law (`p ≥ 1`): sampling
/// consumes **no** RNG draws and every lane reads '1'.
pub const BERNOULLI_ALWAYS: u64 = u64::MAX;

/// Quantizes a Bernoulli probability into the integer draw threshold the
/// packed samplers compare against: `⌈p · 2⁵³⌉` for `p ∈ (0, 1)`, or the
/// draw-free sentinels [`BERNOULLI_NEVER`] / [`BERNOULLI_ALWAYS`] for the
/// saturated cases (NaN quantizes to never, like the `f64` comparison it
/// replaces).
///
/// The threshold is *exact*, not approximate: a 53-bit uniform draw `u`
/// (one `next_u64() >> 11`) satisfies `u < ⌈p·2⁵³⌉` **iff**
/// `u · 2⁻⁵³ < p`, which is precisely the `rng.gen::<f64>() < p` decision
/// of the scalar stochastic datapath — both consume one `u64` draw per
/// sample. This is what lets the packed stochastic deploy engine
/// reproduce the scalar reference flip-for-flip from the same seed.
pub fn bernoulli_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        BERNOULLI_ALWAYS
    } else if p > 0.0 {
        // Exact: p has a 53-bit mantissa, so p·2⁵³ and its ceiling are
        // representable without rounding. The result is in 1..=2⁵³, which
        // cannot collide with either sentinel.
        (p * (1u64 << 53) as f64).ceil() as u64
    } else {
        BERNOULLI_NEVER
    }
}

/// Samples `len` i.i.d. Bernoulli bits into a packed word slice
/// ([`BitPlane`] bit order, tail bits of the last touched word cleared):
/// bit `t` is '1' iff `rng.next_u64() >> 11 < threshold`.
///
/// With a sentinel threshold ([`BERNOULLI_NEVER`] / [`BERNOULLI_ALWAYS`])
/// the words are filled constant and **no draws are consumed** — the
/// packed mirror of the scalar `AqfpBuffer::observe` saturation fast
/// path. Otherwise exactly `len` draws are consumed, each deciding one
/// lane, in stream order: the draw sequence (count *and* decisions) is
/// identical to `len` scalar `rng.gen::<f64>() < p` samples of the same
/// probability (see [`bernoulli_threshold`]).
///
/// # Panics
/// Panics if `out` is shorter than `⌈len/64⌉` words.
pub fn sample_bernoulli_words<R: rand::RngCore + ?Sized>(
    threshold: u64,
    len: usize,
    out: &mut [u64],
    rng: &mut R,
) {
    let words = len.div_ceil(64);
    assert!(words <= out.len(), "mask slice too short for {len} bits");
    match threshold {
        BERNOULLI_NEVER => out[..words].fill(0),
        BERNOULLI_ALWAYS => {
            out[..words].fill(u64::MAX);
            let rem = len % 64;
            if rem > 0 {
                out[words - 1] = (1u64 << rem) - 1;
            }
        }
        thr => {
            for (w, slot) in out[..words].iter_mut().enumerate() {
                let bits = (len - w * 64).min(64);
                *slot = sample_window_word(thr, bits, rng);
            }
        }
    }
}

/// Draws one packed word of up to 64 live Bernoulli bits — the shared
/// inner loop of [`sample_bernoulli_words`] and
/// [`sample_bernoulli_planes`]. Draw `t` decides bit `t`, in draw order;
/// the 4-way unroll only splits the bit-OR accumulation across
/// independent registers (the RNG chain itself is inherently serial), so
/// the draw sequence and decisions are untouched.
#[inline]
fn sample_window_word<R: rand::RngCore + ?Sized>(thr: u64, bits: usize, rng: &mut R) -> u64 {
    let (mut w0, mut w1, mut w2, mut w3) = (0u64, 0u64, 0u64, 0u64);
    let mut t = 0;
    while t + 4 <= bits {
        w0 |= (((rng.next_u64() >> 11) < thr) as u64) << t;
        w1 |= (((rng.next_u64() >> 11) < thr) as u64) << (t + 1);
        w2 |= (((rng.next_u64() >> 11) < thr) as u64) << (t + 2);
        w3 |= (((rng.next_u64() >> 11) < thr) as u64) << (t + 3);
        t += 4;
    }
    let mut word = (w0 | w1) | (w2 | w3);
    while t < bits {
        word |= (((rng.next_u64() >> 11) < thr) as u64) << t;
        t += 1;
    }
    word
}

/// Samples up to 64 i.i.d. Bernoulli bits as one packed word mask — the
/// single-word convenience form of [`sample_bernoulli_words`], used for
/// observation windows that fit one `u64` (the common `L ≤ 64` case).
///
/// # Panics
/// Panics if `len > 64`.
pub fn sample_bernoulli_mask<R: rand::RngCore + ?Sized>(
    threshold: u64,
    len: usize,
    rng: &mut R,
) -> u64 {
    assert!(len <= 64, "a word mask holds at most 64 lanes, got {len}");
    let mut word = [0u64; 1];
    sample_bernoulli_words(threshold, len, &mut word, rng);
    word[0]
}

/// Samples a batch of Bernoulli bit windows — one per entry of
/// `thresholds` — into caller-chosen word slots of `out`, consuming the
/// RNG in batch order then bit order.
///
/// Window `i` (threshold `thresholds[i]`, `len` bits) lands at words
/// `out[offsets[i] .. offsets[i] + ⌈len/64⌉]` with exactly the semantics
/// of one [`sample_bernoulli_words`] call: tail bits cleared, sentinel
/// thresholds filled constant **without consuming draws**, live
/// thresholds consuming one draw per bit. The draw sequence — count and
/// decisions — is therefore identical to looping [`sample_bernoulli_words`]
/// over the batch; what the batch form buys is the plane-at-a-time loop
/// structure of the packed stochastic engine: thresholds are gathered
/// once in scalar draw order and all windows of an output pixel are
/// filled in one pass, instead of re-entering the sampler per
/// (tile, column) cell. The `offsets` indirection lets that pass scatter
/// into cell-major stream storage while drawing in (group, tile, column)
/// order.
///
/// # Panics
/// Panics if `offsets` is shorter than `thresholds` or any window would
/// write past `out`.
pub fn sample_bernoulli_planes<R: rand::RngCore + ?Sized>(
    thresholds: &[u64],
    offsets: &[usize],
    len: usize,
    out: &mut [u64],
    rng: &mut R,
) {
    let words = len.div_ceil(64);
    assert!(
        offsets.len() >= thresholds.len(),
        "offset per window required"
    );
    let rem = len % 64;
    for (&thr, &off) in thresholds.iter().zip(offsets) {
        let slot = &mut out[off..off + words];
        match thr {
            BERNOULLI_NEVER => slot.fill(0),
            BERNOULLI_ALWAYS => {
                slot.fill(u64::MAX);
                if rem > 0 {
                    slot[words - 1] = (1u64 << rem) - 1;
                }
            }
            thr => {
                for (w, s) in slot.iter_mut().enumerate() {
                    let bits = (len - w * 64).min(64);
                    *s = sample_window_word(thr, bits, rng);
                }
            }
        }
    }
}

/// Packs a density-`p` pseudo-random probe input plane: `len` i.i.d.
/// Bernoulli('1' with probability `p`) bits with the zero-tail invariant
/// established. This is the probe-synthesis entry point of the ATPG
/// screening loop — sweeping `p` from sparse to dense excites comparators
/// whose XNOR sums sit far from threshold on natural eval inputs, which a
/// single density cannot reach.
pub fn random_probe_plane<R: rand::RngCore + ?Sized>(len: usize, p: f64, rng: &mut R) -> BitPlane {
    let mut words = vec![0u64; len.div_ceil(64)];
    sample_bernoulli_words(bernoulli_threshold(p), len, &mut words, rng);
    BitPlane::from_words(words, len)
}

/// Packs a deterministic striped probe plane: alternating runs of
/// `period` '1's and `period` '0's, shifted left by `phase` bits. Stripes
/// are the structured complement of [`random_probe_plane`]: walking
/// `period` across powers of two and `phase` across offsets toggles
/// aligned groups of fan-in rows together, driving tile partial sums
/// through their full range (all-'0' and all-'1' planes are the
/// `period ≥ len` degenerate cases). Synthesis-time only — built per-bit,
/// not a packed kernel.
///
/// # Panics
/// Panics if `period == 0`.
pub fn striped_probe_plane(len: usize, period: usize, phase: usize) -> BitPlane {
    assert!(period > 0, "stripe period must be positive");
    let mut plane = BitPlane::zeros(len);
    for i in 0..len {
        if ((i + phase) / period).is_multiple_of(2) {
            plane.set(i, true);
        }
    }
    plane
}

/// Compresses the even-position bits of `x` (positions 0, 2, 4, …) into
/// the low 32 bits — the classic shift-or bit-compress for the mask
/// `0x5555…`. Odd-position bits of `x` are ignored. This is the
/// column-halving step of the word-level 2×2 pooling kernel: after a
/// pairwise OR/AND folds bit pairs into their even slots, one call packs a
/// word of 32 pooled outputs.
#[inline]
pub fn compress_even_bits(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    (x | (x >> 16)) & 0x0000_0000_ffff_ffff
}

/// Lane-generic machine word of the wide SIMD datapath: a fixed array of
/// `u64` lanes with element-wise bit logic, per-lane shifts, and per-lane
/// wrapping adds — the operation set the SWAR kernels
/// ([`lane_counts_w`], the fused XNOR+vote tile kernel of the packed
/// deploy engine) are written against.
///
/// Two widths are provided: plain `u64` (`LANES = 1`, the scalar
/// reference every wider width is differentially tested to be
/// bit-identical with) and [`V256`] (`LANES = 4`, one AVX2-sized chunk).
/// Every operation is expressed as a short per-lane loop over the array,
/// which the autovectorizer turns into single wide instructions when the
/// target has them (`-C target-cpu=native`); per-lane
/// [`count_ones`](Word::count_ones) lowers to the hardware popcount the
/// same way. No `unsafe`, no intrinsics, no new dependencies — the crate
/// keeps its `forbid(unsafe_code)`.
///
/// Kernels generic over `Word` process `LANES` independent bit-streams
/// (e.g. `LANES` output pixels of a conv layer) per operation; lane `l`
/// of every word belongs to stream `l` throughout, so results are read
/// back per lane with [`lane`](Word::lane).
pub trait Word: Copy + core::fmt::Debug + PartialEq + Eq + Send + Sync + 'static {
    /// Number of 64-bit lanes.
    const LANES: usize;

    /// The all-zero word.
    fn zero() -> Self;

    /// Broadcasts `w` into every lane.
    fn splat(w: u64) -> Self;

    /// Reads lane `i` (`i < LANES`).
    fn lane(&self, i: usize) -> u64;

    /// Writes lane `i` (`i < LANES`).
    fn set_lane(&mut self, i: usize, w: u64);

    /// Lane-wise XNOR: `!(self ^ other)` per lane — the ±1 product word
    /// of the packed datapath.
    fn xnor(self, other: Self) -> Self;

    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;

    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;

    /// Lane-wise wrapping add. SWAR counter fields live *inside* lanes,
    /// so a 64-bit add per lane is exactly the field-parallel add of the
    /// scalar reduction, `LANES` streams at once.
    fn add64(self, other: Self) -> Self;

    /// Lane-wise wrapping subtract.
    fn sub64(self, other: Self) -> Self;

    /// Lane-wise logical right shift by `n < 64` bits.
    fn shr(self, n: u32) -> Self;

    /// Sum of the popcounts of all lanes (masked popcount when the caller
    /// ANDs a boundary mask in first).
    fn count_ones(&self) -> u32;
}

impl Word for u64 {
    const LANES: usize = 1;

    #[inline(always)]
    fn zero() -> Self {
        0
    }

    #[inline(always)]
    fn splat(w: u64) -> Self {
        w
    }

    #[inline(always)]
    fn lane(&self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        *self
    }

    #[inline(always)]
    fn set_lane(&mut self, i: usize, w: u64) {
        debug_assert_eq!(i, 0);
        *self = w;
    }

    #[inline(always)]
    fn xnor(self, other: Self) -> Self {
        !(self ^ other)
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline(always)]
    fn add64(self, other: Self) -> Self {
        self.wrapping_add(other)
    }

    #[inline(always)]
    fn sub64(self, other: Self) -> Self {
        self.wrapping_sub(other)
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        self >> n
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        u64::count_ones(*self)
    }
}

/// A 256-bit wide word: four `u64` lanes in one chunk (see [`Word`]).
///
/// The representation is a plain `[u64; 4]` and every operation a
/// fixed-length per-lane loop, which the autovectorizer lowers to one
/// 256-bit instruction on AVX2 targets; per-lane popcounts lower to four
/// hardware `popcnt`s. Lane `l` holds bit-stream `l` of whatever the
/// kernel is processing four-at-a-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V256([u64; 4]);

impl Word for V256 {
    const LANES: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        V256([0; 4])
    }

    #[inline(always)]
    fn splat(w: u64) -> Self {
        V256([w; 4])
    }

    #[inline(always)]
    fn lane(&self, i: usize) -> u64 {
        self.0[i]
    }

    #[inline(always)]
    fn set_lane(&mut self, i: usize, w: u64) {
        self.0[i] = w;
    }

    #[inline(always)]
    fn xnor(self, other: Self) -> Self {
        V256(core::array::from_fn(|l| !(self.0[l] ^ other.0[l])))
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        V256(core::array::from_fn(|l| self.0[l] & other.0[l]))
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        V256(core::array::from_fn(|l| self.0[l] | other.0[l]))
    }

    #[inline(always)]
    fn add64(self, other: Self) -> Self {
        V256(core::array::from_fn(|l| self.0[l].wrapping_add(other.0[l])))
    }

    #[inline(always)]
    fn sub64(self, other: Self) -> Self {
        V256(core::array::from_fn(|l| self.0[l].wrapping_sub(other.0[l])))
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        V256(core::array::from_fn(|l| self.0[l] >> n))
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }
}

/// Per-lane-field popcounts of `x` for SWAR field width
/// `lane ∈ {4, 8, 16, 32}`: a truncated parallel bit-count reduction, run
/// on every 64-bit lane of `x` at once. After the call each `lane`-bit
/// field of each 64-bit lane holds the popcount of that field's input
/// bits (for `lane == 32` the counts sit in 16-bit sub-fields, which is
/// wide enough — a 32-bit field counts at most 32).
///
/// This is the counting stage of the packed deploy engine's tile kernels:
/// at `W = u64` it is the classic scalar SWAR reduction; at [`V256`] it
/// reduces four activation words (four output pixels) per step.
#[inline]
pub fn lane_counts_w<W: Word>(x: W, lane: u32) -> W {
    let mut x = x.sub64(x.shr(1).and(W::splat(0x5555_5555_5555_5555)));
    let m2 = W::splat(0x3333_3333_3333_3333);
    x = x.and(m2).add64(x.shr(2).and(m2));
    if lane == 4 {
        return x;
    }
    x = x.add64(x.shr(4)).and(W::splat(0x0f0f_0f0f_0f0f_0f0f));
    if lane == 8 {
        return x;
    }
    x = x.add64(x.shr(8)).and(W::splat(0x00ff_00ff_00ff_00ff));
    if lane == 16 {
        return x;
    }
    x.add64(x.shr(16)).and(W::splat(0x0000_ffff_0000_ffff))
}

/// Unfolds the receptive fields of a packed `[C, H, W]` feature plane into
/// a `[oh·ow × c·k·k]` [`PackedMatrix`] — im2col evaluated by whole-word
/// shifts instead of per-bit gathers.
///
/// Row `oy·ow + ox` of the result is the flattened (channel-major, then
/// kernel-row-major — the deploy weight order) receptive field of output
/// pixel `(oy, ox)`. Each in-bounds kernel row moves as **one**
/// [`copy_bits_range`] call of up to `k` bits, so the gather cost per
/// field is `O(c·k)` word operations instead of `O(c·k²)` bit operations.
///
/// Padding fills with `pad_one`: `false` packs out-of-bounds positions as
/// '0' (value −1, the BNN deployment convention), `true` as '1' (+1, for
/// training-side layers padded with +1).
///
/// # Panics
/// Panics unless `plane.len() == c·h·w`, `k, stride > 0` and the kernel
/// fits the padded input.
#[allow(clippy::too_many_arguments)] // conv geometry is irreducibly 5 scalars
pub fn packed_im2col(
    plane: &BitPlane,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    pad_one: bool,
) -> PackedMatrix {
    assert_eq!(plane.len(), c * h * w, "plane length mismatch");
    assert!(k > 0 && stride > 0, "kernel and stride must be positive");
    assert!(
        h + 2 * pad >= k && w + 2 * pad >= k,
        "kernel exceeds padded input"
    );
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let width = c * k * k;
    let mut m = if pad_one {
        PackedMatrix::ones(oh * ow, width)
    } else {
        PackedMatrix::zeros(oh * ow, width)
    };
    let wpr = m.words_per_row();
    let src = plane.words();
    let dst = m.storage.as_mut_slice();
    for oy in 0..oh {
        let y0 = oy * stride;
        let pix_base = oy * ow;
        for ky in 0..k {
            let iy = y0 + ky;
            if iy < pad || iy >= h + pad {
                continue; // padding row: keep the fill
            }
            let iy = iy - pad;
            // Pixels whose kernel row needs no clipping: pad ≤ x0 and
            // x0 + k ≤ w + pad.
            let ox_lo = pad.div_ceil(stride).min(ow);
            let ox_hi = ((w + pad).saturating_sub(k) / stride + 1).clamp(ox_lo, ow);
            for ci in 0..c {
                let src_off = (ci * h + iy) * w;
                let dst_off = (ci * k + ky) * k;
                // Clipped border pixels: compute the valid sub-range.
                for ox in (0..ox_lo).chain(ox_hi..ow) {
                    let x0 = ox * stride;
                    // Valid kernel-column sub-range: 0 ≤ x0 + kx − pad < w.
                    let kx0 = pad.saturating_sub(x0).min(k);
                    let kx1 = (w + pad).saturating_sub(x0).min(k);
                    if kx1 <= kx0 {
                        continue;
                    }
                    let len = kx1 - kx0;
                    let d = (pix_base + ox) * wpr * 64 + dst_off + kx0;
                    let s = src_off + x0 + kx0 - pad;
                    if len <= 64 {
                        write_bits(dst, d, read_bits(src, s, len), len, pad_one);
                    } else {
                        copy_bits_range(dst, d, src, s, len);
                    }
                }
                // Interior: whole kernel rows, incremental offsets only.
                // Consecutive receptive fields overlap by `k − stride`
                // bits, so a 64-bit window is loaded once and sliced for
                // every pixel it covers — the per-pixel cost drops to a
                // shift, a mask and the destination write.
                if k <= 64 {
                    let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
                    let mut s = src_off + ox_lo * stride - pad.min(ox_lo * stride);
                    let mut d = (pix_base + ox_lo) * wpr * 64 + dst_off;
                    let mut ox = ox_lo;
                    while ox < ox_hi {
                        let wq = s / 64;
                        let b = (s % 64) as u32;
                        let mut win = src[wq] >> b;
                        if b != 0 && wq + 1 < src.len() {
                            win |= src[wq + 1] << (64 - b);
                        }
                        // Valid low bits of the window (short only at the
                        // very end of the source slice).
                        let avail = 64.min(src.len() * 64 - s);
                        let mut off = 0usize;
                        // Always advances: the k-bit read at `s` is in
                        // bounds, so `k ≤ avail` on entry.
                        while ox < ox_hi && off + k <= avail {
                            write_bits(dst, d, (win >> off) & mask, k, pad_one);
                            off += stride;
                            d += wpr * 64;
                            ox += 1;
                        }
                        s += off;
                    }
                } else {
                    for ox in ox_lo..ox_hi {
                        copy_bits_range(
                            dst,
                            (pix_base + ox) * wpr * 64 + dst_off,
                            src,
                            src_off + ox * stride - pad,
                            k,
                        );
                    }
                }
            }
        }
    }
    m
}

impl BitPlane {
    /// An all-zero (all-`−1`) plane of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one (all-`+1`) plane of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut p = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        p.mask_tail();
        p
    }

    /// Packs a slice of logic values.
    pub fn from_bits(bits: &[Bit]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if b.as_bool() {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Packs a slice of booleans (`true` = `+1`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Packs real values by sign: `v ≥ 0` packs as `+1`, matching the
    /// paper's Eq. 6 binarization convention.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut p = Self::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Adopts a pre-packed word buffer. The tail bits beyond `len` are
    /// cleared to restore the invariant.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `⌈len/64⌉` long.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let rem = len % 64;
        if rem > 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        Self { words, len }
    }

    /// Unpacks into logic values.
    pub fn to_bits(&self) -> Vec<Bit> {
        (0..self.len).map(|i| Bit::from_bool(self.get(i))).collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of `+1` bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of `+1` bits among the first `prefix` bits.
    ///
    /// # Panics
    /// Panics if `prefix > len`.
    pub fn count_ones_prefix(&self, prefix: usize) -> usize {
        assert!(prefix <= self.len, "prefix {prefix} exceeds {}", self.len);
        count_ones_range(&self.words, 0, prefix)
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor_ones(&self, other: &BitPlane) -> usize {
        assert_eq!(self.len, other.len, "plane length mismatch");
        xnor_ones_range(&self.words, &other.words, 0, self.len)
    }

    /// Signed ±1 dot product via XNOR + popcount:
    /// `2·matches − len ∈ [−len, +len]`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor_dot(&self, other: &BitPlane) -> i64 {
        2 * self.xnor_ones(other) as i64 - self.len as i64
    }

    /// Bitwise XNOR (±1 elementwise product) as a new plane.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor(&self, other: &BitPlane) -> BitPlane {
        assert_eq!(self.len, other.len, "plane length mismatch");
        let mut out = Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| !(a ^ b))
                .collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Bitwise AND as a new plane.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &BitPlane) -> BitPlane {
        assert_eq!(self.len, other.len, "plane length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise complement (±1 negation) as a new plane.
    pub fn not(&self) -> BitPlane {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    pub(crate) fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A row-major matrix of equally wide [`BitPlane`]s in one contiguous
/// buffer. Rows are padded to whole words, so `row_words(r)` is always a
/// word-aligned slice — the layout packed GEMMs and the batched deploy
/// engine iterate over (row index = output channel or batch sample, stride
/// = `words_per_row()`).
///
/// Each row obeys the [`BitPlane`] layout invariant: bit `i` of a row is
/// word `i / 64`, bit `i % 64` of that row's slice, and row bits past
/// [`width`](PackedMatrix::width) stay zero (padding words included).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMatrix {
    storage: Vec<u64>,
    rows: usize,
    width: usize,
    words_per_row: usize,
}

impl PackedMatrix {
    /// An all-zero (all-`−1`) matrix.
    pub fn zeros(rows: usize, width: usize) -> Self {
        let words_per_row = width.div_ceil(64).max(1);
        Self {
            storage: vec![0; rows * words_per_row],
            rows,
            width,
            words_per_row,
        }
    }

    /// An all-one (all-`+1`) matrix. Row bits past `width` stay zero, so
    /// whole-row popcounts need no masking.
    pub fn ones(rows: usize, width: usize) -> Self {
        let mut m = Self::zeros(rows, width);
        let words = width / 64;
        let rem = width % 64;
        for r in 0..rows {
            let row = &mut m.storage[r * m.words_per_row..(r + 1) * m.words_per_row];
            row[..words].fill(u64::MAX);
            if rem > 0 {
                row[words] = (1u64 << rem) - 1;
            }
        }
        m
    }

    /// Packs a row-major `[rows × width]` sign matrix (`v ≥ 0` = `+1`).
    ///
    /// # Panics
    /// Panics if `values.len() != rows * width`.
    pub fn from_signs(values: &[f32], rows: usize, width: usize) -> Self {
        assert_eq!(values.len(), rows * width, "sign matrix shape mismatch");
        let mut m = Self::zeros(rows, width);
        for r in 0..rows {
            for (i, &v) in values[r * width..(r + 1) * width].iter().enumerate() {
                if v >= 0.0 {
                    m.storage[r * m.words_per_row + i / 64] |= 1 << (i % 64);
                }
            }
        }
        m
    }

    /// Builds from equally long planes.
    ///
    /// # Panics
    /// Panics if the planes' lengths differ.
    pub fn from_planes(planes: &[BitPlane]) -> Self {
        let width = planes.first().map_or(0, BitPlane::len);
        let mut m = Self::zeros(planes.len(), width);
        for (r, p) in planes.iter().enumerate() {
            assert_eq!(p.len(), width, "row {r} length mismatch");
            m.storage[r * m.words_per_row..r * m.words_per_row + p.words().len()]
                .copy_from_slice(p.words());
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per row (the row stride of the backing buffer).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.storage[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The packed words of row `r`, mutable — for kernels that assemble
    /// whole words per row (vectorized sign packing, the batched deploy
    /// engine's channel loop). Callers must keep row bits past `width`
    /// zero.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.storage[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Applies a clear/set mask pair to word `w` of row `r`: bits in
    /// `clear` are zeroed first, then bits in `set` are ORed in
    /// (`word = (word & !clear) | set`).
    ///
    /// This is the masked mutation primitive of stuck-at fault injection
    /// on packed weight planes: a die's stuck cells for one output channel
    /// reduce to one mask pair per covered word (`clear` = every stuck
    /// position, `set` = the positions stuck at '1'), applied without
    /// unpacking the row. Callers must keep row bits past
    /// [`width`](Self::width) zero, i.e. `set` must not reach into the
    /// tail of the last data word.
    ///
    /// # Panics
    /// Panics if `r >= rows` or `w >= words_per_row`.
    #[inline]
    pub fn apply_row_mask(&mut self, r: usize, w: usize, clear: u64, set: u64) {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        assert!(
            w < self.words_per_row,
            "word {w} out of range ({} words per row)",
            self.words_per_row
        );
        let word = &mut self.storage[r * self.words_per_row + w];
        *word = (*word & !clear) | set;
    }

    /// The whole backing buffer, row stride [`Self::words_per_row`] —
    /// lets batched kernels walk rows with `chunks_exact` instead of
    /// per-row slicing.
    #[inline]
    pub fn storage(&self) -> &[u64] {
        &self.storage
    }

    /// The whole backing buffer, mutable, row stride
    /// [`Self::words_per_row`] — the scatter target of the word-level
    /// im2col gather ([`packed_im2col`] writes receptive-field spans at
    /// `row · words_per_row · 64 + bit` offsets). Callers must keep row
    /// bits past `width` zero.
    #[inline]
    pub fn storage_mut(&mut self) -> &mut [u64] {
        &mut self.storage
    }

    /// Concatenates all rows tightly (row `r` at bit `r · width`) into one
    /// [`BitPlane`] — the word-level inverse of row padding, used to turn a
    /// `[channels × pixels]` output matrix into a flat `[C, H, W]` feature
    /// plane.
    pub fn concat_rows(&self) -> BitPlane {
        let len = self.rows * self.width;
        let mut words = vec![0u64; len.div_ceil(64)];
        for r in 0..self.rows {
            or_shifted_range(&mut words, r * self.width, self.row_words(r), 0, self.width);
        }
        BitPlane::from_words(words, len)
    }

    /// The bit at `(r, i)`.
    #[inline]
    pub fn get(&self, r: usize, i: usize) -> bool {
        assert!(
            i < self.width,
            "bit {i} out of range (width {})",
            self.width
        );
        (self.row_words(r)[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, i)`.
    pub fn set(&mut self, r: usize, i: usize, value: bool) {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        assert!(
            i < self.width,
            "bit {i} out of range (width {})",
            self.width
        );
        let w = r * self.words_per_row + i / 64;
        if value {
            self.storage[w] |= 1 << (i % 64);
        } else {
            self.storage[w] &= !(1 << (i % 64));
        }
    }

    /// Copies row `r` out as a plane.
    pub fn row_plane(&self, r: usize) -> BitPlane {
        // Rows are padded to at least one word; a plane wants exactly
        // ⌈width/64⌉ of them (0 for a width-0 matrix).
        let words = self.width.div_ceil(64);
        BitPlane::from_words(self.row_words(r)[..words].to_vec(), self.width)
    }

    /// Signed ±1 dot product of row `r` with `plane`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn xnor_dot(&self, r: usize, plane: &BitPlane) -> i64 {
        assert_eq!(plane.len(), self.width, "plane width mismatch");
        2 * xnor_ones_range(self.row_words(r), plane.words(), 0, self.width) as i64
            - self.width as i64
    }

    /// XNOR match count of row `r` against `plane` over the bit range
    /// `[start, start + len)` — the crossbar-tile partial kernel.
    ///
    /// # Panics
    /// Panics if the range exceeds the width.
    pub fn xnor_ones_range(&self, r: usize, plane: &BitPlane, start: usize, len: usize) -> usize {
        assert!(start + len <= self.width, "tile range exceeds width");
        assert_eq!(plane.len(), self.width, "plane width mismatch");
        xnor_ones_range(self.row_words(r), plane.words(), start, len)
    }

    /// Full packed GEMM: the signed dot of every matrix row with every row
    /// of `acts` (activations packed row-major, same width). Returns the
    /// dots in `[self.rows × acts.rows]` row-major order.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn xnor_gemm(&self, acts: &PackedMatrix) -> Vec<i64> {
        assert_eq!(acts.width, self.width, "GEMM width mismatch");
        let mut out = Vec::with_capacity(self.rows * acts.rows);
        for r in 0..self.rows {
            let rw = self.row_words(r);
            for a in 0..acts.rows {
                let dot = 2 * xnor_ones_range(rw, acts.row_words(a), 0, self.width) as i64
                    - self.width as i64;
                out.push(dot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_dot(a: &[bool], b: &[bool]) -> i64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| if x == y { 1i64 } else { -1 })
            .sum()
    }

    fn pseudo_bools(n: usize, salt: usize) -> Vec<bool> {
        (0..n).map(|i| (i * 7 + salt * 13 + 3) % 5 < 2).collect()
    }

    #[test]
    fn random_probe_plane_keeps_tail_zero_and_tracks_density() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for len in [1usize, 63, 64, 65, 1000] {
            for p in [0.0, 0.3, 1.0] {
                let plane = random_probe_plane(len, p, &mut rng);
                assert_eq!(plane.len(), len);
                let rem = len % 64;
                if rem > 0 {
                    assert_eq!(plane.words().last().unwrap() >> rem, 0, "tail bits set");
                }
                if p == 0.0 {
                    assert_eq!(plane.count_ones(), 0);
                }
                if p == 1.0 {
                    assert_eq!(plane.count_ones(), len);
                }
            }
        }
        let plane = random_probe_plane(10_000, 0.3, &mut rng);
        let ones = plane.count_ones();
        assert!((2500..3500).contains(&ones), "{ones} ones at p = 0.3");
    }

    #[test]
    fn striped_probe_plane_alternates_runs() {
        let plane = striped_probe_plane(10, 3, 0);
        let want = [
            true, true, true, false, false, false, true, true, true, false,
        ];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(plane.get(i), w, "bit {i}");
        }
        // Phase shifts the pattern left; period ≥ len degenerates to ones.
        let shifted = striped_probe_plane(10, 3, 3);
        for i in 0..7 {
            assert_eq!(shifted.get(i), plane.get(i + 3));
        }
        assert_eq!(striped_probe_plane(16, 16, 0).count_ones(), 16);
        let rem_plane = striped_probe_plane(70, 2, 1);
        assert_eq!(rem_plane.words().last().unwrap() >> (70 % 64), 0);
    }

    #[test]
    fn dot_matches_scalar_on_ragged_widths() {
        for len in [1usize, 7, 63, 64, 65, 127, 128, 130, 200, 1000] {
            let a = pseudo_bools(len, 1);
            let b = pseudo_bools(len, 2);
            let pa = BitPlane::from_bools(&a);
            let pb = BitPlane::from_bools(&b);
            assert_eq!(pa.xnor_dot(&pb), scalar_dot(&a, &b), "len {len}");
        }
    }

    #[test]
    fn range_counts_match_scalar_on_boundary_words() {
        let len = 200;
        let a = pseudo_bools(len, 3);
        let b = pseudo_bools(len, 4);
        let pa = BitPlane::from_bools(&a);
        let pb = BitPlane::from_bools(&b);
        for &(start, sub) in &[
            (0usize, 200usize),
            (0, 1),
            (63, 2),
            (64, 64),
            (1, 63),
            (65, 70),
            (199, 1),
            (128, 0),
            (60, 8),
        ] {
            let expect = (start..start + sub).filter(|&i| a[i] == b[i]).count();
            assert_eq!(
                xnor_ones_range(pa.words(), pb.words(), start, sub),
                expect,
                "start {start} len {sub}"
            );
        }
    }

    #[test]
    fn set_get_roundtrip_and_tail_invariant() {
        let mut p = BitPlane::zeros(70);
        p.set(69, true);
        p.set(0, true);
        assert!(p.get(69) && p.get(0) && !p.get(33));
        assert_eq!(p.count_ones(), 2);
        let q = p.not();
        assert_eq!(q.count_ones(), 68);
        // Tail bits of the last word stay clear through not().
        assert_eq!(q.words()[1] >> 6, 0);
    }

    #[test]
    fn from_words_clears_tail() {
        let p = BitPlane::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(p.count_ones(), 70);
    }

    #[test]
    fn plane_ops_match_bit_ops() {
        let a = pseudo_bools(130, 5);
        let b = pseudo_bools(130, 6);
        let pa = BitPlane::from_bools(&a);
        let pb = BitPlane::from_bools(&b);
        for i in 0..130 {
            assert_eq!(pa.xnor(&pb).get(i), a[i] == b[i]);
            assert_eq!(pa.and(&pb).get(i), a[i] && b[i]);
        }
        assert_eq!(pa.to_bits().len(), 130);
        assert_eq!(BitPlane::from_bits(&pa.to_bits()), pa);
    }

    #[test]
    fn matrix_rows_behave_like_planes() {
        let width = 100;
        let rows = 5;
        let values: Vec<f32> = (0..rows * width)
            .map(|i| if (i * 11) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = PackedMatrix::from_signs(&values, rows, width);
        assert_eq!(m.rows(), rows);
        assert_eq!(m.width(), width);
        let act = BitPlane::from_signs(&values[..width]);
        for r in 0..rows {
            let row = BitPlane::from_signs(&values[r * width..(r + 1) * width]);
            assert_eq!(m.row_plane(r), row);
            assert_eq!(m.xnor_dot(r, &act), row.xnor_dot(&act), "row {r}");
            assert_eq!(
                m.xnor_ones_range(r, &act, 30, 50),
                xnor_ones_range(row.words(), act.words(), 30, 50)
            );
        }
    }

    #[test]
    fn gemm_matches_per_row_dots() {
        let w = PackedMatrix::from_signs(
            &(0..3 * 70)
                .map(|i| if (i * 5) % 4 < 2 { 1.0 } else { -1.0 })
                .collect::<Vec<f32>>(),
            3,
            70,
        );
        let acts = PackedMatrix::from_signs(
            &(0..2 * 70)
                .map(|i| if (i * 3) % 5 < 3 { 1.0 } else { -1.0 })
                .collect::<Vec<f32>>(),
            2,
            70,
        );
        let dots = w.xnor_gemm(&acts);
        assert_eq!(dots.len(), 6);
        for r in 0..3 {
            for a in 0..2 {
                assert_eq!(dots[r * 2 + a], w.xnor_dot(r, &acts.row_plane(a)));
            }
        }
    }

    #[test]
    fn ones_prefix_is_truncated_count() {
        let bits = pseudo_bools(300, 9);
        let p = BitPlane::from_bools(&bits);
        for cut in [0usize, 1, 63, 64, 65, 128, 299, 300] {
            assert_eq!(
                p.count_ones_prefix(cut),
                bits[..cut].iter().filter(|&&b| b).count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatch() {
        BitPlane::zeros(8).xnor_dot(&BitPlane::zeros(9));
    }

    #[test]
    fn zero_width_matrix_rows_are_empty_planes() {
        let m = PackedMatrix::zeros(2, 0);
        let p = m.row_plane(0);
        assert!(p.is_empty());
        assert_eq!(p.words().len(), 0);
    }

    #[test]
    fn shifted_copies_match_per_bit_reference() {
        let bits = pseudo_bools(300, 13);
        let src = BitPlane::from_bools(&bits);
        for &(dst_start, src_start, len) in &[
            (0usize, 0usize, 300usize),
            (1, 0, 64),
            (0, 1, 64),
            (63, 65, 130),
            (64, 64, 64),
            (37, 191, 109),
            (250, 299, 1),
            (10, 10, 0),
        ] {
            // OR into a pre-seeded buffer: old bits survive.
            let seed = pseudo_bools(384, 17);
            let mut ored = BitPlane::from_bools(&seed);
            or_shifted_range(&mut ored.words, dst_start, src.words(), src_start, len);
            // Overwrite copy into the same seed: old bits in range die.
            let mut copied = BitPlane::from_bools(&seed);
            copy_bits_range(&mut copied.words, dst_start, src.words(), src_start, len);
            for i in 0..384 {
                let in_range = i >= dst_start && i < dst_start + len;
                let moved = in_range && bits[src_start + (i - dst_start)];
                assert_eq!(
                    ored.get(i),
                    seed[i] || moved,
                    "or: bit {i} (dst {dst_start} src {src_start} len {len})"
                );
                assert_eq!(
                    copied.get(i),
                    if in_range { moved } else { seed[i] },
                    "copy: bit {i} (dst {dst_start} src {src_start} len {len})"
                );
            }
        }
    }

    #[test]
    fn compress_even_bits_packs_alternating_positions() {
        assert_eq!(compress_even_bits(0), 0);
        assert_eq!(compress_even_bits(u64::MAX), 0xffff_ffff);
        assert_eq!(compress_even_bits(0x5555_5555_5555_5555), 0xffff_ffff);
        // Odd positions are ignored.
        assert_eq!(compress_even_bits(0xaaaa_aaaa_aaaa_aaaa), 0);
        for salt in 0..8u64 {
            let x = salt
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(salt as u32 * 7);
            let mut expect = 0u64;
            for i in 0..32 {
                if (x >> (2 * i)) & 1 == 1 {
                    expect |= 1 << i;
                }
            }
            assert_eq!(compress_even_bits(x), expect, "salt {salt}");
        }
    }

    #[test]
    fn packed_im2col_matches_per_bit_gather() {
        // 2 channels, 5×7, 3×3 kernel, stride 2, pad 1 — boundary-heavy.
        let (c, h, w, k, stride, pad) = (2usize, 5usize, 7usize, 3usize, 2usize, 1usize);
        let bits = pseudo_bools(c * h * w, 21);
        let plane = BitPlane::from_bools(&bits);
        for pad_one in [false, true] {
            let m = packed_im2col(&plane, c, h, w, k, stride, pad, pad_one);
            let oh = (h + 2 * pad - k) / stride + 1;
            let ow = (w + 2 * pad - k) / stride + 1;
            assert_eq!((m.rows(), m.width()), (oh * ow, c * k * k));
            for oy in 0..oh {
                for ox in 0..ow {
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                let inside =
                                    iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize;
                                let expect = if inside {
                                    bits[(ci * h + iy as usize) * w + ix as usize]
                                } else {
                                    pad_one
                                };
                                assert_eq!(
                                    m.get(oy * ow + ox, (ci * k + ky) * k + kx),
                                    expect,
                                    "pad_one {pad_one} pixel ({oy},{ox}) ch {ci} k ({ky},{kx})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn apply_row_mask_clears_then_sets() {
        let mut m = PackedMatrix::zeros(3, 130);
        for i in 0..130 {
            m.set(1, i, i % 2 == 0);
        }
        // Word 1 of row 1 covers bits 64..128: stick bits 64, 65, 70
        // (clear all three, re-set 65 and 70 to '1').
        m.apply_row_mask(1, 1, 0b100_0011, 0b100_0010);
        assert!(!m.get(1, 64)); // was 1 (even), stuck at 0
        assert!(m.get(1, 65)); // was 0 (odd), stuck at 1
        assert!(m.get(1, 70)); // was 1, stuck at 1
        assert!(m.get(1, 66) && !m.get(1, 67)); // untouched bits survive
        assert_eq!(m.row_plane(0).count_ones(), 0, "other rows untouched");
        assert_eq!(m.row_plane(2).count_ones(), 0, "other rows untouched");
    }

    #[test]
    fn ones_matrix_keeps_row_tails_clear() {
        let m = PackedMatrix::ones(3, 70);
        for r in 0..3 {
            assert_eq!(m.row_plane(r).count_ones(), 70, "row {r}");
            assert_eq!(m.row_words(r)[1] >> 6, 0, "row {r} tail");
        }
    }

    #[test]
    fn concat_rows_is_tight_row_major() {
        let values: Vec<f32> = (0..3 * 70)
            .map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = PackedMatrix::from_signs(&values, 3, 70);
        let plane = m.concat_rows();
        assert_eq!(plane.len(), 210);
        for r in 0..3 {
            for i in 0..70 {
                assert_eq!(plane.get(r * 70 + i), m.get(r, i), "({r}, {i})");
            }
        }
    }

    #[test]
    fn bernoulli_threshold_quantizes_exactly() {
        assert_eq!(bernoulli_threshold(0.0), BERNOULLI_NEVER);
        assert_eq!(bernoulli_threshold(-0.5), BERNOULLI_NEVER);
        assert_eq!(bernoulli_threshold(f64::NAN), BERNOULLI_NEVER);
        assert_eq!(bernoulli_threshold(1.0), BERNOULLI_ALWAYS);
        assert_eq!(bernoulli_threshold(1.5), BERNOULLI_ALWAYS);
        assert_eq!(bernoulli_threshold(0.5), 1u64 << 52);
        // Open interval probabilities stay clear of both sentinels.
        for p in [1e-300, 0.25, 0.999_999, 1.0 - f64::EPSILON] {
            let t = bernoulli_threshold(p);
            assert!(t > BERNOULLI_NEVER && t < BERNOULLI_ALWAYS, "p = {p}");
        }
    }

    #[test]
    fn bernoulli_mask_matches_scalar_f64_draws() {
        use rand::{Rng as _, SeedableRng as _};
        // The packed sampler must reproduce the scalar `gen::<f64>() < p`
        // decision sequence draw-for-draw from the same seed — the
        // property the packed stochastic deploy engine is built on.
        for (seed, p, len) in [
            (1u64, 0.5f64, 64usize),
            (2, 0.123456789, 37),
            (3, 0.9999, 64),
            (4, 1e-9, 10),
            (5, 0.75, 1),
        ] {
            let thr = bernoulli_threshold(p);
            let mut packed_rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mask = sample_bernoulli_mask(thr, len, &mut packed_rng);
            let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(seed);
            for t in 0..len {
                let want = scalar_rng.gen::<f64>() < p;
                assert_eq!((mask >> t) & 1 == 1, want, "p {p} bit {t}");
            }
            if len < 64 {
                assert_eq!(mask >> len, 0, "bits past the window stay clear");
            }
            // Both consumed the same number of draws: the next value agrees.
            assert_eq!(packed_rng.gen::<u64>(), scalar_rng.gen::<u64>());
        }
    }

    #[test]
    fn saturated_bernoulli_consumes_no_draws() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let untouched = rand::rngs::StdRng::seed_from_u64(9).gen::<u64>();
        let mut out = [u64::MAX; 2];
        sample_bernoulli_words(BERNOULLI_NEVER, 70, &mut out, &mut rng);
        assert_eq!(out, [0, 0]);
        sample_bernoulli_words(BERNOULLI_ALWAYS, 70, &mut out, &mut rng);
        assert_eq!(out, [u64::MAX, (1 << 6) - 1], "tail bits stay clear");
        assert_eq!(rng.gen::<u64>(), untouched, "no draws were consumed");
    }

    #[test]
    fn multi_word_bernoulli_covers_every_lane() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let thr = bernoulli_threshold(0.6);
        let len = 200;
        let mut out = [0u64; 4];
        sample_bernoulli_words(thr, len, &mut out, &mut rng);
        let ones: u32 = out.iter().map(|w| w.count_ones()).sum();
        // 6σ binomial bound around 120.
        assert!((78..=162).contains(&ones), "{ones} ones of {len}");
        assert_eq!(out[3] >> (len - 192), 0, "tail bits stay clear");
    }

    #[test]
    fn word_lanes_roundtrip_and_ops_match_u64() {
        // Every V256 op must equal the u64 op applied lane by lane — the
        // property that makes kernels generic over `Word` bit-identical
        // across widths.
        let a = [0x0123_4567_89ab_cdefu64, u64::MAX, 0, 0x5555_aaaa_0f0f_f0f0];
        let b = [0xdead_beef_0bad_f00du64, 0x8000_0000_0000_0001, 7, !0 >> 3];
        let mut va = V256::zero();
        let mut vb = V256::zero();
        for l in 0..4 {
            va.set_lane(l, a[l]);
            vb.set_lane(l, b[l]);
        }
        for l in 0..4 {
            assert_eq!(va.lane(l), a[l]);
            assert_eq!(va.xnor(vb).lane(l), !(a[l] ^ b[l]));
            assert_eq!(va.and(vb).lane(l), a[l] & b[l]);
            assert_eq!(va.or(vb).lane(l), a[l] | b[l]);
            assert_eq!(va.add64(vb).lane(l), a[l].wrapping_add(b[l]));
            assert_eq!(va.sub64(vb).lane(l), a[l].wrapping_sub(b[l]));
            assert_eq!(va.shr(13).lane(l), a[l] >> 13);
            assert_eq!(V256::splat(a[l]).lane(3 - l), a[l]);
        }
        assert_eq!(
            Word::count_ones(&va),
            a.iter().map(|w| w.count_ones()).sum::<u32>()
        );
        assert_eq!(Word::count_ones(&V256::zero()), 0);
    }

    #[test]
    fn lane_counts_w_matches_per_field_popcounts_at_both_widths() {
        for lane in [4u32, 8, 16, 32] {
            let fields = 64 / lane;
            let mask = if lane == 64 {
                u64::MAX
            } else {
                (1u64 << lane) - 1
            };
            // Counts for lane 32 land in 16-bit sub-fields.
            let read = |counts: u64, j: u32| -> u64 {
                if lane == 32 {
                    (counts >> (j * lane)) & 0xffff
                } else {
                    (counts >> (j * lane)) & mask
                }
            };
            for salt in 0..16u64 {
                let x = salt
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left((salt as u32) * 11)
                    ^ (salt << 40);
                let scalar = lane_counts_w::<u64>(x, lane);
                for j in 0..fields {
                    let expect = ((x >> (j * lane)) & mask).count_ones() as u64;
                    assert_eq!(read(scalar, j), expect, "lane {lane} field {j}");
                }
                // The wide word agrees with the scalar reduction per lane.
                let mut v = V256::zero();
                for l in 0..4 {
                    v.set_lane(l, x.rotate_left(l as u32 * 17));
                }
                let wide = lane_counts_w(v, lane);
                for l in 0..4 {
                    assert_eq!(
                        wide.lane(l),
                        lane_counts_w::<u64>(v.lane(l), lane),
                        "lane {lane} u64-lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn bernoulli_planes_match_per_call_sampling() {
        use rand::{Rng as _, SeedableRng as _};
        // The batched scatter sampler must consume the RNG exactly like a
        // loop of per-window calls — including draw-free sentinels — and
        // land every window at its offset.
        let thresholds = [
            bernoulli_threshold(0.4),
            BERNOULLI_NEVER,
            bernoulli_threshold(0.9),
            BERNOULLI_ALWAYS,
            bernoulli_threshold(0.05),
        ];
        for window in [1usize, 31, 64, 70, 128] {
            let words = window.div_ceil(64);
            // Scatter out of draw order: window i lands at slot 4 - i.
            let offsets: Vec<usize> = (0..thresholds.len())
                .map(|i| (thresholds.len() - 1 - i) * words)
                .collect();
            let mut batched = vec![u64::MAX; thresholds.len() * words];
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            sample_bernoulli_planes(&thresholds, &offsets, window, &mut batched, &mut rng);
            let mut reference = vec![u64::MAX; thresholds.len() * words];
            let mut ref_rng = rand::rngs::StdRng::seed_from_u64(99);
            for (i, &thr) in thresholds.iter().enumerate() {
                sample_bernoulli_words(
                    thr,
                    window,
                    &mut reference[offsets[i]..offsets[i] + words],
                    &mut ref_rng,
                );
            }
            assert_eq!(batched, reference, "window {window}");
            assert_eq!(
                rng.gen::<u64>(),
                ref_rng.gen::<u64>(),
                "draw counts diverged at window {window}"
            );
        }
    }

    #[test]
    fn count_ones_range_matches_prefix_counts() {
        let bits = pseudo_bools(200, 11);
        let p = BitPlane::from_bools(&bits);
        for &(start, len) in &[
            (0usize, 0usize),
            (0, 64),
            (63, 2),
            (10, 150),
            (199, 1),
            (64, 64),
        ] {
            let expect = bits[start..start + len].iter().filter(|&&b| b).count();
            assert_eq!(count_ones_range(p.words(), start, len), expect);
        }
    }
}
