//! Bit-packed ±1 planes and matrices — the shared substrate of every
//! XNOR–popcount fast path in the workspace.
//!
//! A [`BitPlane`] packs a vector of AQFP logic values (±1 in the BNN value
//! domain) into `u64` words, 64 bits per word. The packing is little-endian
//! in the index: element `i` lives in word `i / 64`, bit `i % 64`. Unused
//! high bits of the last word are kept zero by every constructor and
//! mutation, so whole-plane popcounts need no masking.
//!
//! On top of the plane, [`PackedMatrix`] stores a row-major matrix of
//! planes sharing one width (one contiguous `u64` buffer, each row padded
//! to a whole number of words). Together they turn the signed dot product
//! of ±1 vectors into `2·popcount(XNOR(a, b)) − n` evaluated word-by-word —
//! the software analogue of the paper's massively parallel single-bit
//! hardware datapath. [`xnor_ones_range`] additionally counts matches over
//! an arbitrary bit range, which is what crossbar *tiles* (sub-ranges of a
//! layer's fan-in) need.

use aqfp_device::Bit;
use serde::{Deserialize, Serialize};

/// A packed vector of ±1 values: bit `1` carries `+1`, bit `0` carries `−1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPlane {
    words: Vec<u64>,
    len: usize,
}

/// Popcount of the bit range `[start, start + len)` of a packed word
/// slice, with [`BitPlane`] bit order. The one audited boundary-masking
/// kernel: [`BitPlane::count_ones_prefix`] and the packed deploy engine's
/// tile loop both count through it.
///
/// # Panics
/// Panics if the range reads past the slice.
#[inline]
pub fn count_ones_range(words: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let first = start / 64;
    let last = (end - 1) / 64;
    assert!(last < words.len(), "range past packed slice");
    if first == last {
        let mask = if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << (start % 64)
        };
        return (words[first] & mask).count_ones() as usize;
    }
    let mut n = (words[first] >> (start % 64)).count_ones() as usize;
    for w in &words[first + 1..last] {
        n += w.count_ones() as usize;
    }
    let hi = end % 64;
    let last_word = if hi == 0 {
        words[last]
    } else {
        words[last] & ((1u64 << hi) - 1)
    };
    n + last_word.count_ones() as usize
}

/// Counts the positions in `[start, start + len)` where `a` and `b` agree
/// (XNOR ones), reading both slices with the [`BitPlane`] bit order.
///
/// This is the tile-partial kernel of the packed deploy engine: a crossbar
/// tile covers a sub-range of the fan-in, and its XNOR-product sum is
/// `2·matches − len`. Boundary words are masked like
/// [`count_ones_range`], so ranges may start and end anywhere, including
/// mid-word and at non-multiple-of-64 widths.
///
/// # Panics
/// Panics if the range reads past either slice.
pub fn xnor_ones_range(a: &[u64], b: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let first = start / 64;
    let last = (end - 1) / 64;
    assert!(last < a.len() && last < b.len(), "range past packed slice");
    let mut ones = 0usize;
    for w in first..=last {
        let mut x = !(a[w] ^ b[w]);
        if w == first {
            let lo = start % 64;
            if lo > 0 {
                x &= u64::MAX << lo;
            }
        }
        if w == last {
            let hi = end % 64;
            if hi > 0 {
                x &= (1u64 << hi) - 1;
            }
        }
        ones += x.count_ones() as usize;
    }
    ones
}

impl BitPlane {
    /// An all-zero (all-`−1`) plane of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one (all-`+1`) plane of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut p = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        p.mask_tail();
        p
    }

    /// Packs a slice of logic values.
    pub fn from_bits(bits: &[Bit]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if b.as_bool() {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Packs a slice of booleans (`true` = `+1`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut p = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Packs real values by sign: `v ≥ 0` packs as `+1`, matching the
    /// paper's Eq. 6 binarization convention.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut p = Self::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                p.words[i / 64] |= 1 << (i % 64);
            }
        }
        p
    }

    /// Adopts a pre-packed word buffer. The tail bits beyond `len` are
    /// cleared to restore the invariant.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `⌈len/64⌉` long.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let rem = len % 64;
        if rem > 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        Self { words, len }
    }

    /// Unpacks into logic values.
    pub fn to_bits(&self) -> Vec<Bit> {
        (0..self.len).map(|i| Bit::from_bool(self.get(i))).collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of `+1` bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of `+1` bits among the first `prefix` bits.
    ///
    /// # Panics
    /// Panics if `prefix > len`.
    pub fn count_ones_prefix(&self, prefix: usize) -> usize {
        assert!(prefix <= self.len, "prefix {prefix} exceeds {}", self.len);
        count_ones_range(&self.words, 0, prefix)
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor_ones(&self, other: &BitPlane) -> usize {
        assert_eq!(self.len, other.len, "plane length mismatch");
        xnor_ones_range(&self.words, &other.words, 0, self.len)
    }

    /// Signed ±1 dot product via XNOR + popcount:
    /// `2·matches − len ∈ [−len, +len]`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor_dot(&self, other: &BitPlane) -> i64 {
        2 * self.xnor_ones(other) as i64 - self.len as i64
    }

    /// Bitwise XNOR (±1 elementwise product) as a new plane.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xnor(&self, other: &BitPlane) -> BitPlane {
        assert_eq!(self.len, other.len, "plane length mismatch");
        let mut out = Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| !(a ^ b))
                .collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Bitwise AND as a new plane.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &BitPlane) -> BitPlane {
        assert_eq!(self.len, other.len, "plane length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise complement (±1 negation) as a new plane.
    pub fn not(&self) -> BitPlane {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    pub(crate) fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A row-major matrix of equally wide [`BitPlane`]s in one contiguous
/// buffer. Rows are padded to whole words, so `row_words(r)` is always a
/// word-aligned slice — the layout packed GEMMs and the batched deploy
/// engine iterate over (row index = output channel or batch sample, stride
/// = `words_per_row()`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMatrix {
    storage: Vec<u64>,
    rows: usize,
    width: usize,
    words_per_row: usize,
}

impl PackedMatrix {
    /// An all-zero (all-`−1`) matrix.
    pub fn zeros(rows: usize, width: usize) -> Self {
        let words_per_row = width.div_ceil(64).max(1);
        Self {
            storage: vec![0; rows * words_per_row],
            rows,
            width,
            words_per_row,
        }
    }

    /// Packs a row-major `[rows × width]` sign matrix (`v ≥ 0` = `+1`).
    ///
    /// # Panics
    /// Panics if `values.len() != rows * width`.
    pub fn from_signs(values: &[f32], rows: usize, width: usize) -> Self {
        assert_eq!(values.len(), rows * width, "sign matrix shape mismatch");
        let mut m = Self::zeros(rows, width);
        for r in 0..rows {
            for (i, &v) in values[r * width..(r + 1) * width].iter().enumerate() {
                if v >= 0.0 {
                    m.storage[r * m.words_per_row + i / 64] |= 1 << (i % 64);
                }
            }
        }
        m
    }

    /// Builds from equally long planes.
    ///
    /// # Panics
    /// Panics if the planes' lengths differ.
    pub fn from_planes(planes: &[BitPlane]) -> Self {
        let width = planes.first().map_or(0, BitPlane::len);
        let mut m = Self::zeros(planes.len(), width);
        for (r, p) in planes.iter().enumerate() {
            assert_eq!(p.len(), width, "row {r} length mismatch");
            m.storage[r * m.words_per_row..r * m.words_per_row + p.words().len()]
                .copy_from_slice(p.words());
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per row (the row stride of the backing buffer).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.storage[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The bit at `(r, i)`.
    #[inline]
    pub fn get(&self, r: usize, i: usize) -> bool {
        assert!(
            i < self.width,
            "bit {i} out of range (width {})",
            self.width
        );
        (self.row_words(r)[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, i)`.
    pub fn set(&mut self, r: usize, i: usize, value: bool) {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        assert!(
            i < self.width,
            "bit {i} out of range (width {})",
            self.width
        );
        let w = r * self.words_per_row + i / 64;
        if value {
            self.storage[w] |= 1 << (i % 64);
        } else {
            self.storage[w] &= !(1 << (i % 64));
        }
    }

    /// Copies row `r` out as a plane.
    pub fn row_plane(&self, r: usize) -> BitPlane {
        // Rows are padded to at least one word; a plane wants exactly
        // ⌈width/64⌉ of them (0 for a width-0 matrix).
        let words = self.width.div_ceil(64);
        BitPlane::from_words(self.row_words(r)[..words].to_vec(), self.width)
    }

    /// Signed ±1 dot product of row `r` with `plane`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn xnor_dot(&self, r: usize, plane: &BitPlane) -> i64 {
        assert_eq!(plane.len(), self.width, "plane width mismatch");
        2 * xnor_ones_range(self.row_words(r), plane.words(), 0, self.width) as i64
            - self.width as i64
    }

    /// XNOR match count of row `r` against `plane` over the bit range
    /// `[start, start + len)` — the crossbar-tile partial kernel.
    ///
    /// # Panics
    /// Panics if the range exceeds the width.
    pub fn xnor_ones_range(&self, r: usize, plane: &BitPlane, start: usize, len: usize) -> usize {
        assert!(start + len <= self.width, "tile range exceeds width");
        assert_eq!(plane.len(), self.width, "plane width mismatch");
        xnor_ones_range(self.row_words(r), plane.words(), start, len)
    }

    /// Full packed GEMM: the signed dot of every matrix row with every row
    /// of `acts` (activations packed row-major, same width). Returns the
    /// dots in `[self.rows × acts.rows]` row-major order.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn xnor_gemm(&self, acts: &PackedMatrix) -> Vec<i64> {
        assert_eq!(acts.width, self.width, "GEMM width mismatch");
        let mut out = Vec::with_capacity(self.rows * acts.rows);
        for r in 0..self.rows {
            let rw = self.row_words(r);
            for a in 0..acts.rows {
                let dot = 2 * xnor_ones_range(rw, acts.row_words(a), 0, self.width) as i64
                    - self.width as i64;
                out.push(dot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_dot(a: &[bool], b: &[bool]) -> i64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| if x == y { 1i64 } else { -1 })
            .sum()
    }

    fn pseudo_bools(n: usize, salt: usize) -> Vec<bool> {
        (0..n).map(|i| (i * 7 + salt * 13 + 3) % 5 < 2).collect()
    }

    #[test]
    fn dot_matches_scalar_on_ragged_widths() {
        for len in [1usize, 7, 63, 64, 65, 127, 128, 130, 200, 1000] {
            let a = pseudo_bools(len, 1);
            let b = pseudo_bools(len, 2);
            let pa = BitPlane::from_bools(&a);
            let pb = BitPlane::from_bools(&b);
            assert_eq!(pa.xnor_dot(&pb), scalar_dot(&a, &b), "len {len}");
        }
    }

    #[test]
    fn range_counts_match_scalar_on_boundary_words() {
        let len = 200;
        let a = pseudo_bools(len, 3);
        let b = pseudo_bools(len, 4);
        let pa = BitPlane::from_bools(&a);
        let pb = BitPlane::from_bools(&b);
        for &(start, sub) in &[
            (0usize, 200usize),
            (0, 1),
            (63, 2),
            (64, 64),
            (1, 63),
            (65, 70),
            (199, 1),
            (128, 0),
            (60, 8),
        ] {
            let expect = (start..start + sub).filter(|&i| a[i] == b[i]).count();
            assert_eq!(
                xnor_ones_range(pa.words(), pb.words(), start, sub),
                expect,
                "start {start} len {sub}"
            );
        }
    }

    #[test]
    fn set_get_roundtrip_and_tail_invariant() {
        let mut p = BitPlane::zeros(70);
        p.set(69, true);
        p.set(0, true);
        assert!(p.get(69) && p.get(0) && !p.get(33));
        assert_eq!(p.count_ones(), 2);
        let q = p.not();
        assert_eq!(q.count_ones(), 68);
        // Tail bits of the last word stay clear through not().
        assert_eq!(q.words()[1] >> 6, 0);
    }

    #[test]
    fn from_words_clears_tail() {
        let p = BitPlane::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(p.count_ones(), 70);
    }

    #[test]
    fn plane_ops_match_bit_ops() {
        let a = pseudo_bools(130, 5);
        let b = pseudo_bools(130, 6);
        let pa = BitPlane::from_bools(&a);
        let pb = BitPlane::from_bools(&b);
        for i in 0..130 {
            assert_eq!(pa.xnor(&pb).get(i), a[i] == b[i]);
            assert_eq!(pa.and(&pb).get(i), a[i] && b[i]);
        }
        assert_eq!(pa.to_bits().len(), 130);
        assert_eq!(BitPlane::from_bits(&pa.to_bits()), pa);
    }

    #[test]
    fn matrix_rows_behave_like_planes() {
        let width = 100;
        let rows = 5;
        let values: Vec<f32> = (0..rows * width)
            .map(|i| if (i * 11) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = PackedMatrix::from_signs(&values, rows, width);
        assert_eq!(m.rows(), rows);
        assert_eq!(m.width(), width);
        let act = BitPlane::from_signs(&values[..width]);
        for r in 0..rows {
            let row = BitPlane::from_signs(&values[r * width..(r + 1) * width]);
            assert_eq!(m.row_plane(r), row);
            assert_eq!(m.xnor_dot(r, &act), row.xnor_dot(&act), "row {r}");
            assert_eq!(
                m.xnor_ones_range(r, &act, 30, 50),
                xnor_ones_range(row.words(), act.words(), 30, 50)
            );
        }
    }

    #[test]
    fn gemm_matches_per_row_dots() {
        let w = PackedMatrix::from_signs(
            &(0..3 * 70)
                .map(|i| if (i * 5) % 4 < 2 { 1.0 } else { -1.0 })
                .collect::<Vec<f32>>(),
            3,
            70,
        );
        let acts = PackedMatrix::from_signs(
            &(0..2 * 70)
                .map(|i| if (i * 3) % 5 < 3 { 1.0 } else { -1.0 })
                .collect::<Vec<f32>>(),
            2,
            70,
        );
        let dots = w.xnor_gemm(&acts);
        assert_eq!(dots.len(), 6);
        for r in 0..3 {
            for a in 0..2 {
                assert_eq!(dots[r * 2 + a], w.xnor_dot(r, &acts.row_plane(a)));
            }
        }
    }

    #[test]
    fn ones_prefix_is_truncated_count() {
        let bits = pseudo_bools(300, 9);
        let p = BitPlane::from_bools(&bits);
        for cut in [0usize, 1, 63, 64, 65, 128, 299, 300] {
            assert_eq!(
                p.count_ones_prefix(cut),
                bits[..cut].iter().filter(|&&b| b).count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatch() {
        BitPlane::zeros(8).xnor_dot(&BitPlane::zeros(9));
    }

    #[test]
    fn zero_width_matrix_rows_are_empty_planes() {
        let m = PackedMatrix::zeros(2, 0);
        let p = m.row_plane(0);
        assert!(p.is_empty());
        assert_eq!(p.words().len(), 0);
    }

    #[test]
    fn count_ones_range_matches_prefix_counts() {
        let bits = pseudo_bools(200, 11);
        let p = BitPlane::from_bools(&bits);
        for &(start, len) in &[
            (0usize, 0usize),
            (0, 64),
            (63, 2),
            (10, 150),
            (199, 1),
            (64, 64),
        ] {
            let expect = bits[start..start + len].iter().filter(|&&b| b).count();
            assert_eq!(count_ones_range(p.words(), start, len), expect);
        }
    }
}
