//! The dynamic batching state machine.
//!
//! Serving throughput on the packed engine comes from batching — the
//! tiled GEMM amortizes weight-tile traversal across the whole activation
//! matrix — but a request that waits forever for a full batch blows its
//! latency budget. [`Batcher`] implements the classic size-or-deadline
//! compromise: a batch is released as soon as it reaches
//! [`BatchPolicy::max_batch`] requests, or as soon as the *oldest* queued
//! request has waited [`BatchPolicy::max_delay`], whichever comes first.
//!
//! The batcher is a pure state machine: it holds no clock and spawns no
//! threads. Every transition ([`Batcher::push`], [`Batcher::poll`])
//! receives the current time as a [`Duration`] from the caller's
//! [`Clock`](crate::clock::Clock), which is what makes the
//! deadline-flush path deterministically testable (see the unit tests,
//! which drive it with a [`ManualClock`](crate::clock::ManualClock)).
//! The worker pool wraps it in a mutex and parks on a condvar until
//! [`Batcher::deadline`].

use std::collections::VecDeque;
use std::time::Duration;

/// When to release a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Release as soon as this many requests are queued (and never hand a
    /// larger batch to a worker).
    pub max_batch: usize,
    /// Release once the oldest queued request has waited this long, even
    /// if the batch is short.
    pub max_delay: Duration,
}

/// A FIFO request queue with size-or-deadline release.
#[derive(Debug)]
pub struct Batcher<T> {
    policy: BatchPolicy,
    queue: VecDeque<(T, Duration)>,
}

impl<T> Batcher<T> {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            queue: VecDeque::new(),
        }
    }

    /// The release policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a request that arrived at `now`.
    pub fn push(&mut self, item: T, now: Duration) {
        self.queue.push_back((item, now));
    }

    /// The instant the oldest queued request must be released by, or
    /// `None` if the queue is empty. Workers park on the condvar until
    /// this deadline.
    pub fn deadline(&self) -> Option<Duration> {
        self.queue
            .front()
            .map(|&(_, arrived)| arrived + self.policy.max_delay)
    }

    /// Releases a batch if the policy says so: the front `max_batch`
    /// requests when the queue is full enough, or everything queued when
    /// the oldest request's deadline has passed. Returns `None` (and
    /// removes nothing) otherwise. Never returns an empty batch.
    pub fn poll(&mut self, now: Duration) -> Option<Vec<T>> {
        let due = self.deadline().is_some_and(|d| now >= d);
        if self.queue.len() >= self.policy.max_batch || due {
            self.take()
        } else {
            None
        }
    }

    /// Unconditionally releases the front of the queue (up to
    /// `max_batch`), regardless of deadlines — the shutdown drain path.
    /// Returns `None` once the queue is empty, so draining is
    /// `while let Some(batch) = batcher.drain() { ... }`.
    pub fn drain(&mut self) -> Option<Vec<T>> {
        self.take()
    }

    fn take(&mut self) -> Option<Vec<T>> {
        if self.queue.is_empty() {
            return None;
        }
        let n = self.queue.len().min(self.policy.max_batch);
        Some(self.queue.drain(..n).map(|(item, _)| item).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    fn policy(max_batch: usize, max_delay_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay: Duration::from_micros(max_delay_us),
        }
    }

    #[test]
    fn flushes_on_size_immediately() {
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(4, 1_000));
        for i in 0..3 {
            b.push(i, clock.now());
            assert!(b.poll(clock.now()).is_none(), "flushed below max_batch");
        }
        b.push(3, clock.now());
        // Time has not advanced at all: this is a pure size flush.
        assert_eq!(b.poll(clock.now()), Some(vec![0, 1, 2, 3]));
        assert!(b.is_empty());
    }

    #[test]
    fn flushes_on_deadline_with_short_batch() {
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(64, 200));
        b.push('a', clock.now());
        clock.advance(Duration::from_micros(150));
        b.push('b', clock.now());
        // 199 µs after 'a' arrived: not yet due.
        clock.advance(Duration::from_micros(49));
        assert!(b.poll(clock.now()).is_none(), "flushed before the deadline");
        // 200 µs after 'a' arrived: the oldest request is due, everything
        // queued goes out together.
        clock.advance(Duration::from_micros(1));
        assert_eq!(b.poll(clock.now()), Some(vec!['a', 'b']));
        // 'b' alone would only be due at 350 µs; the queue is empty so
        // there is no deadline at all.
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn deadline_tracks_oldest_request() {
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(64, 100));
        b.push(1, clock.now());
        clock.advance(Duration::from_micros(30));
        b.push(2, clock.now());
        // Deadline comes from the oldest (first) arrival, not the newest.
        assert_eq!(b.deadline(), Some(Duration::from_micros(100)));
    }

    #[test]
    fn oversize_burst_splits_into_max_batch_chunks() {
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(4, 1_000));
        for i in 0..10 {
            b.push(i, clock.now());
        }
        assert_eq!(b.poll(clock.now()), Some(vec![0, 1, 2, 3]));
        assert_eq!(b.poll(clock.now()), Some(vec![4, 5, 6, 7]));
        // Two left: below size and below deadline, so they wait...
        assert!(b.poll(clock.now()).is_none());
        // ...until their arrival deadline passes.
        clock.advance(Duration::from_micros(1_000));
        assert_eq!(b.poll(clock.now()), Some(vec![8, 9]));
    }

    #[test]
    fn drain_empties_queue_ignoring_deadlines() {
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(3, 1_000_000));
        for i in 0..7 {
            b.push(i, clock.now());
        }
        // Nothing is due (the delay is a full second) but shutdown takes
        // everything, in order, in max_batch chunks.
        let mut drained = Vec::new();
        while let Some(batch) = b.drain() {
            assert!(batch.len() <= 3);
            drained.extend(batch);
        }
        assert_eq!(drained, (0..7).collect::<Vec<_>>());
        assert!(b.is_empty());
    }

    #[test]
    fn no_request_lost_or_duplicated_under_mixed_flushes() {
        // Interleave pushes, size flushes, deadline flushes and a final
        // drain; every id must come out exactly once, in order.
        let clock = ManualClock::new();
        let mut b = Batcher::new(policy(5, 73));
        let mut out: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for step in 0..200 {
            // A lumpy arrival pattern: bursts of 0..=3 per tick.
            for _ in 0..(step * 7 % 4) {
                b.push(next, clock.now());
                next += 1;
            }
            clock.advance(Duration::from_micros(step % 11));
            while let Some(batch) = b.poll(clock.now()) {
                out.extend(batch);
            }
        }
        while let Some(batch) = b.drain() {
            out.extend(batch);
        }
        assert_eq!(out, (0..next).collect::<Vec<_>>());
    }
}
