//! Latency and throughput instrumentation for the serving layer.
//!
//! Tail latency is the serving SLO currency, so the histogram has to hold
//! nanosecond-scale resolution across nine orders of magnitude without
//! unbounded memory. [`LatencyHistogram`] uses HDR-style log-linear
//! buckets: values below 16 ns are exact, and every power-of-two decade
//! above that is split into 16 linear sub-buckets, bounding the relative
//! quantile error at 1/16 (6.25%) while the whole histogram stays under
//! 8 KiB. Quantiles use the nearest-rank rule over the cumulative counts
//! and report the bucket's lower bound (a conservative, never-inflated
//! estimate).
//!
//! [`ServeMetrics`] is the worker-shared side: lock-free atomic counters
//! for the request lifecycle (submitted / completed / rejected) and batch
//! shape, plus a mutex-held histogram the workers record into once per
//! completed request. [`MetricsSnapshot`] is the plain-data view handed
//! back by [`Server::metrics`](crate::server::Server::metrics) and
//! [`Server::shutdown`](crate::server::Server::shutdown).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Values below this are bucketed exactly.
const LINEAR_CUTOFF: u64 = 16;
/// Linear sub-buckets per power-of-two decade.
const SUB_BUCKETS: usize = 16;
/// 16 exact buckets + 16 sub-buckets for each exponent 4..=63.
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUB_BUCKETS;

fn bucket_index(nanos: u64) -> usize {
    if nanos < LINEAR_CUTOFF {
        nanos as usize
    } else {
        let e = 63 - nanos.leading_zeros() as usize; // 4..=63
        let sub = ((nanos >> (e - 4)) & 0xF) as usize;
        LINEAR_CUTOFF as usize + (e - 4) * SUB_BUCKETS + sub
    }
}

fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let decade = (idx - LINEAR_CUTOFF as usize) / SUB_BUCKETS;
        let sub = ((idx - LINEAR_CUTOFF as usize) % SUB_BUCKETS) as u64;
        let e = decade + 4;
        (1u64 << e) + (sub << (e - 4))
    }
}

/// A log-linear latency histogram with ≤ 6.25% relative quantile error.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max_nanos: u64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("max_nanos", &self.max_nanos)
            .finish_non_exhaustive()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            max_nanos: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)] += 1;
        self.count += 1;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The nearest-rank `q`-quantile (`0.0 < q <= 1.0`), reported as the
    /// matching bucket's lower bound — within 6.25% below the true value.
    /// Returns `Duration::ZERO` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_floor(idx));
            }
        }
        Duration::from_nanos(self.max_nanos)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// Worker-shared serving counters plus the completion-latency histogram.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    histogram: Mutex<Option<LatencyHistogram>>,
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.histogram.lock().unwrap();
        guard
            .get_or_insert_with(LatencyHistogram::new)
            .record(latency);
    }

    /// A point-in-time copy of all counters and the latency histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            latency: self.histogram.lock().unwrap().clone().unwrap_or_default(),
        }
    }
}

/// Plain-data view of [`ServeMetrics`] at one instant.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests classified and answered.
    pub completed: u64,
    /// Requests refused at submit time (queue full or shutting down).
    pub rejected: u64,
    /// Batches handed to workers.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Largest batch handed to a worker.
    pub max_batch: u64,
    /// Enqueue-to-completion latency of every completed request.
    pub latency: LatencyHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for n in 0..16u64 {
            h.record(Duration::from_nanos(n));
        }
        for (i, n) in (0..16u64).enumerate() {
            let q = (i + 1) as f64 / 16.0;
            assert_eq!(h.quantile(q), Duration::from_nanos(n));
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Across magnitudes from ns to tens of seconds, the reported
        // quantile of a single-value histogram is within 6.25% below.
        for shift in 0..34 {
            let v = (1u64 << shift) + (1u64 << shift) / 3;
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(v));
            let got = h.quantile(0.5).as_nanos() as u64;
            assert!(got <= v, "estimate above true value for {v}");
            assert!(
                (v - got) as f64 <= v as f64 / 16.0 + 1.0,
                "error beyond bound: true {v}, got {got}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_count_tracks() {
        let mut h = LatencyHistogram::new();
        // A heavy head with a long tail, like a real latency curve.
        for i in 0..1000u64 {
            h.record(Duration::from_nanos(100 + i % 50));
        }
        for i in 0..10u64 {
            h.record(Duration::from_micros(500 + i));
        }
        assert_eq!(h.count(), 1010);
        let (p50, p99, p999) = (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p50 < Duration::from_micros(1));
        assert!(p999 >= Duration::from_micros(400));
        assert!(h.max() >= p999);
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100u64 {
            a.record(Duration::from_nanos(10 + i));
            b.record(Duration::from_micros(10 + i));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.max(), b.max());
        // The median of the union sits between the two halves.
        assert!(merged.quantile(0.25) <= a.quantile(0.99));
        assert!(merged.quantile(0.75) >= b.quantile(0.01));
    }

    #[test]
    fn serve_metrics_snapshot_aggregates() {
        let m = ServeMetrics::new();
        for _ in 0..5 {
            m.record_submitted();
        }
        m.record_rejected();
        m.record_batch(3);
        m.record_batch(2);
        for i in 0..5 {
            m.record_completed(Duration::from_micros(10 + i));
        }
        let s = m.snapshot();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.completed, 5);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.max_batch, 3);
        assert!((s.mean_batch - 2.5).abs() < 1e-9);
        assert_eq!(s.latency.count(), 5);
    }
}
