//! Injectable time sources.
//!
//! The batching state machine ([`crate::batcher::Batcher`]) never reads a
//! wall clock: every transition takes the current time as a plain
//! [`Duration`] since some epoch. Production code derives those instants
//! from [`MonotonicClock`]; deterministic tests drive the same state
//! machine with a [`ManualClock`] they advance by hand, so
//! flush-on-deadline behaviour is testable without sleeping.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source reporting elapsed time since its own epoch.
pub trait Clock: Send + Sync + 'static {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// Wall-clock time from a monotonic [`Instant`] anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Time only moves when the test calls [`ManualClock::advance`] (or
/// [`ManualClock::set`]), which makes batching deadlines exact instead of
/// sleep-and-hope.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock stopped at its epoch (`Duration::ZERO`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        *self.now.lock().unwrap() += delta;
    }

    /// Jumps the clock to an absolute offset from the epoch.
    pub fn set(&self, now: Duration) {
        *self.now.lock().unwrap() = now;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_micros(5));
        c.advance(Duration::from_micros(7));
        assert_eq!(c.now(), Duration::from_micros(12));
        c.set(Duration::from_millis(1));
        assert_eq!(c.now(), Duration::from_millis(1));
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
