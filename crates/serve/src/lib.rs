//! Model serving for the packed SupeRBNN deploy engine.
//!
//! The deploy engine's batch entry points are built for offline sweeps:
//! hand them a dataset, they fan a `thread::scope` across it and join.
//! Serving inverts the shape of the problem — requests arrive one at a
//! time, the pool must already be warm, and the number that matters is
//! the *tail* latency under a target arrival rate, not samples/second
//! over a captive dataset. This crate is that serving layer:
//!
//! - [`server::Server`] — a persistent worker pool (threads started
//!   once, parked on a condvar) over sharded
//!   [`PackedModel`](superbnn::deploy::PackedModel) replicas, fed by
//! - [`batcher::Batcher`] — a size-or-deadline dynamic batcher (a pure,
//!   clock-injected state machine; see [`clock`]), measured by
//! - [`metrics::LatencyHistogram`] — HDR-style log-linear histograms
//!   (≤ 6.25% quantile error) behind shared atomic lifecycle counters,
//!   and driven by
//! - [`loadgen`] — closed-loop (saturation throughput) and open-loop
//!   (fixed-rate, coordinated-omission-safe tail latency) generators.
//!
//! Replicas cold-start from the versioned binary snapshots of
//! [`superbnn::deploy::snapshot`] — load, shard, serve; no training or
//! lowering on the serving box. End-to-end: `BENCH_serve.json` (written
//! by the `serve_load` bench) and `examples/serve_demo.rs`.
//!
//! Everything is `std`-only: no async runtime, no external crates —
//! mutex + condvar + mpsc, same as the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod clock;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use batcher::{BatchPolicy, Batcher};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use loadgen::{closed_loop, open_loop, LoadReport};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServeMetrics};
pub use server::{Pending, ServeConfig, ServeError, Server};
