//! Closed- and open-loop load generators for SLO measurement.
//!
//! The two loops answer different questions:
//!
//! - [`closed_loop`] — *how fast can the pool go?* `clients` threads each
//!   keep exactly one request in flight, back to back. Throughput at
//!   enough clients is the saturation rate; latency under a closed loop
//!   self-limits (a slow server slows its own offered load), so it is a
//!   capacity probe, not an SLO probe.
//! - [`open_loop`] — *what latency does a given arrival rate cost?*
//!   Requests are submitted on a fixed schedule (`rate_rps`), independent
//!   of how the server is doing, and every latency is measured from the
//!   request's **scheduled** arrival time. If the dispatcher falls
//!   behind, the backlog delay stays in the numbers instead of being
//!   silently dropped — the standard guard against coordinated omission.
//!
//! Both return a [`LoadReport`] with the client-observed latency
//! histogram (submit→answer for the closed loop, schedule→answer for the
//! open loop); the server's own metrics cover the enqueue→answer part.

use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Duration;

use aqfp_sc::BitPlane;

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::LatencyHistogram;
use crate::server::{Pending, ServeError, Server};

/// What a load-generation run observed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadReport {
    /// Requests the generator tried to submit.
    pub offered: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests refused at submit time (queue full / shutdown).
    pub rejected: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Client-observed latency of every completed request.
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.latency.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.latency.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> Duration {
        self.latency.quantile(0.999)
    }
}

/// Runs `clients` threads, each submitting `requests_per_client` requests
/// back to back (one in flight per client), cycling over `planes`.
/// Latency is measured submit→answer.
///
/// # Panics
/// Panics if `planes` is empty or `clients` is zero.
pub fn closed_loop(
    server: &Server,
    planes: &[BitPlane],
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(!planes.is_empty(), "closed_loop needs at least one plane");
    assert!(clients > 0, "closed_loop needs at least one client");
    let clock = MonotonicClock::new();
    let mut latency = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let clock = &clock;
                s.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let (mut done, mut refused) = (0u64, 0u64);
                    for r in 0..requests_per_client {
                        let plane = planes[(c * requests_per_client + r) % planes.len()].clone();
                        let t0 = clock.now();
                        match server.submit(plane).map(Pending::wait) {
                            Ok(Ok(_)) => {
                                hist.record(clock.now().saturating_sub(t0));
                                done += 1;
                            }
                            Ok(Err(_)) | Err(_) => refused += 1,
                        }
                    }
                    (hist, done, refused)
                })
            })
            .collect();
        for h in handles {
            let (hist, done, refused) = h.join().expect("closed-loop client panicked");
            latency.merge(&hist);
            completed += done;
            rejected += refused;
        }
    });
    let wall = clock.now();
    LoadReport {
        offered: (clients * requests_per_client) as u64,
        completed,
        rejected,
        wall,
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        latency,
    }
}

/// Submits `total` requests on a fixed schedule of `rate_rps` arrivals
/// per second, cycling over `planes`. Latency is measured from each
/// request's **scheduled** time, so server backlog (and dispatcher lag)
/// count against the tail instead of being coordinated away. `collectors`
/// threads drain responses concurrently with dispatch.
///
/// # Panics
/// Panics if `planes` is empty, `rate_rps` is not positive, or
/// `collectors` is zero.
pub fn open_loop(
    server: &Server,
    planes: &[BitPlane],
    rate_rps: f64,
    total: usize,
    collectors: usize,
) -> LoadReport {
    assert!(!planes.is_empty(), "open_loop needs at least one plane");
    assert!(rate_rps > 0.0, "open_loop needs a positive rate");
    assert!(collectors > 0, "open_loop needs at least one collector");
    let clock = MonotonicClock::new();
    let mut latency = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let (tx, rx) = mpsc::channel::<(Duration, Pending)>();
    let rx = Mutex::new(rx);
    thread::scope(|s| {
        let handles: Vec<_> = (0..collectors)
            .map(|_| {
                let (clock, rx) = (&clock, &rx);
                s.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut done = 0u64;
                    loop {
                        // Take the receiver lock only to pull one handle,
                        // then wait for the answer without blocking the
                        // other collectors.
                        let msg = rx.lock().unwrap().recv();
                        match msg {
                            Ok((scheduled, pending)) => {
                                if pending.wait().is_ok() {
                                    hist.record(clock.now().saturating_sub(scheduled));
                                    done += 1;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    (hist, done)
                })
            })
            .collect();
        for i in 0..total {
            let scheduled = Duration::from_secs_f64(i as f64 / rate_rps);
            let now = clock.now();
            if scheduled > now {
                thread::sleep(scheduled - now);
            }
            match server.submit(planes[i % planes.len()].clone()) {
                Ok(pending) => tx.send((scheduled, pending)).expect("collectors alive"),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(_) => rejected += 1,
            }
        }
        drop(tx);
        for h in handles {
            let (hist, done) = h.join().expect("open-loop collector panicked");
            latency.merge(&hist);
            completed += done;
        }
    });
    let wall = clock.now();
    LoadReport {
        offered: total as u64,
        completed,
        rejected,
        wall,
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        latency,
    }
}
