//! The persistent worker pool over sharded [`PackedModel`] replicas.
//!
//! The packed engine's own batch entry point
//! ([`PackedModel::classify_batch`](superbnn::deploy::PackedModel::classify_batch))
//! spawns a `thread::scope` per call — fine for offline sweeps, wrong for
//! serving, where requests arrive one at a time and thread spawn/join
//! would dominate sub-millisecond inference. [`Server`] instead starts
//! its workers **once**: long-lived threads that park on a condvar over
//! the shared [`Batcher`] and wake to classify whole batches.
//!
//! ```text
//!  submit() ──► Batcher (size-or-deadline) ──► worker 0 ── replica 0
//!      │             │  condvar                worker 1 ── replica 1
//!      └─ Pending ◄──┴──────── responses ◄──── worker 2 ── replica 0
//! ```
//!
//! Each worker owns an [`Arc`] to one of [`ServeConfig::replicas`] model
//! shards (worker `i` uses replica `i % replicas`). Replicas are plain
//! clones of the lowered model — weight planes, SWAR tables and all — so
//! shards never contend on shared state while the GEMM runs; on a NUMA
//! box each shard's pages land near the workers that read them. Requests
//! are answered through per-request [`std::sync::mpsc`] channels
//! ([`Pending::wait`]), and every completion records its
//! enqueue-to-answer latency in the shared
//! [`ServeMetrics`].
//!
//! Back-pressure is explicit: the queue holds at most
//! [`ServeConfig::queue_capacity`] requests and `submit` returns
//! [`ServeError::QueueFull`] beyond it — the load generators count those
//! rejections instead of letting the queue grow without bound.
//! [`Server::shutdown`] stops intake, drains every queued request through
//! the workers (nothing in flight is dropped), joins the threads and
//! returns the final metrics; dropping the server does the same
//! implicitly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use aqfp_sc::BitPlane;
use superbnn::deploy::PackedModel;

use crate::batcher::{BatchPolicy, Batcher};
use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{MetricsSnapshot, ServeMetrics};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A [`ServeConfig`] field is out of range.
    Config(
        /// Which constraint failed.
        &'static str,
    ),
    /// The request's activation plane does not match the model's input.
    BadInput {
        /// Bits the model's input shape requires.
        expected: usize,
        /// Bits the submitted plane carries.
        got: usize,
    },
    /// The queue is at [`ServeConfig::queue_capacity`]; retry later.
    QueueFull,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker answering this request went away (shutdown race).
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(what) => write!(f, "invalid serve config: {what}"),
            ServeError::BadInput { expected, got } => {
                write!(
                    f,
                    "input plane has {got} bits, the model expects {expected}"
                )
            }
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "worker disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Pool geometry and batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Persistent worker threads.
    pub workers: usize,
    /// Model shards; worker `i` classifies on replica `i % replicas`.
    pub replicas: usize,
    /// Largest batch handed to one worker.
    pub max_batch: usize,
    /// Longest a request may wait for co-batched company.
    pub max_delay: Duration,
    /// Queued-request bound before `submit` rejects with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            replicas: 1,
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_capacity: 4096,
        }
    }
}

impl ServeConfig {
    /// Checks every field is in range.
    ///
    /// # Errors
    /// [`ServeError::Config`] naming the violated constraint (zero
    /// workers, replicas, batch size or queue capacity, or more replicas
    /// than workers — surplus shards would never be consulted).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be at least one"));
        }
        if self.replicas == 0 {
            return Err(ServeError::Config("replicas must be at least one"));
        }
        if self.replicas > self.workers {
            return Err(ServeError::Config("more replicas than workers"));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least one"));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be at least one"));
        }
        Ok(())
    }
}

struct Request {
    plane: BitPlane,
    enqueued: Duration,
    tx: mpsc::Sender<(usize, Vec<f32>)>,
}

struct State {
    batcher: Batcher<Request>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    clock: MonotonicClock,
    metrics: ServeMetrics,
    queue_capacity: usize,
    input_len: usize,
}

/// A running worker pool serving one model. See the module docs.
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: ServeConfig,
    stopped: AtomicBool,
}

/// A submitted request's response handle.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<(usize, Vec<f32>)>,
}

impl Pending {
    /// Blocks until the worker answers with `(label, scores)`.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] if the pool shut down underneath the
    /// request (cannot happen through [`Server::shutdown`], which drains
    /// the queue first).
    pub fn wait(self) -> Result<(usize, Vec<f32>), ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }
}

impl Server {
    /// Starts the worker pool: clones `model` into
    /// [`ServeConfig::replicas`] shards and spawns
    /// [`ServeConfig::workers`] persistent threads parked on the batcher.
    ///
    /// # Errors
    /// [`ServeError::Config`] if `config` fails
    /// [`ServeConfig::validate`].
    pub fn start(model: PackedModel, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let input_len = {
            let [c, h, w] = model.input_shape();
            c * h * w
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batcher: Batcher::new(BatchPolicy {
                    max_batch: config.max_batch,
                    max_delay: config.max_delay,
                }),
                shutdown: false,
            }),
            cv: Condvar::new(),
            clock: MonotonicClock::new(),
            metrics: ServeMetrics::new(),
            queue_capacity: config.queue_capacity,
            input_len,
        });
        let mut replicas: Vec<Arc<PackedModel>> = Vec::with_capacity(config.replicas);
        for _ in 0..config.replicas - 1 {
            replicas.push(Arc::new(model.clone()));
        }
        replicas.push(Arc::new(model));
        let handles = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let replica = Arc::clone(&replicas[i % config.replicas]);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &replica))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Self {
            shared,
            handles,
            config,
            stopped: AtomicBool::new(false),
        })
    }

    /// The pool geometry the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Enqueues one packed `[C, H, W]` activation plane for
    /// classification and returns its response handle.
    ///
    /// # Errors
    /// [`ServeError::BadInput`] on a plane-length mismatch,
    /// [`ServeError::QueueFull`] at capacity (counted as rejected),
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, plane: BitPlane) -> Result<Pending, ServeError> {
        if plane.len() != self.shared.input_len {
            return Err(ServeError::BadInput {
                expected: self.shared.input_len,
                got: plane.len(),
            });
        }
        let now = self.shared.clock.now();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.batcher.len() >= self.shared.queue_capacity {
                self.shared.metrics.record_rejected();
                return Err(ServeError::QueueFull);
            }
            st.batcher.push(
                Request {
                    plane,
                    enqueued: now,
                    tx,
                },
                now,
            );
        }
        self.shared.metrics.record_submitted();
        self.shared.cv.notify_one();
        Ok(Pending { rx })
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stops intake, lets the workers drain every queued request, joins
    /// them and returns the final metrics. No accepted request is lost.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.shared.metrics.snapshot()
    }

    fn stop(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared, replica: &PackedModel) {
    loop {
        // Hold the lock only to take a batch (or park); classification
        // runs lock-free on this worker's own replica shard.
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    match st.batcher.drain() {
                        Some(b) => break b,
                        None => return,
                    }
                }
                let now = shared.clock.now();
                if let Some(b) = st.batcher.poll(now) {
                    break b;
                }
                st = match st.batcher.deadline() {
                    Some(deadline) => {
                        let timeout = deadline.saturating_sub(now);
                        shared.cv.wait_timeout(st, timeout).unwrap().0
                    }
                    None => shared.cv.wait(st).unwrap(),
                };
            }
        };
        let n = batch.len();
        let mut planes = Vec::with_capacity(n);
        let mut meta = Vec::with_capacity(n);
        for req in batch {
            planes.push(req.plane);
            meta.push((req.enqueued, req.tx));
        }
        let results = replica.classify_planes(&planes);
        let done = shared.clock.now();
        shared.metrics.record_batch(n);
        for (result, (enqueued, tx)) in results.into_iter().zip(meta) {
            shared
                .metrics
                .record_completed(done.saturating_sub(enqueued));
            // The caller may have dropped its Pending; that is its
            // prerogative, not an error.
            let _ = tx.send(result);
        }
    }
}
