//! End-to-end tests of the persistent worker pool: request-order
//! preservation, bit-identity against the single-threaded reference
//! engine (including under injected faults), back-pressure, graceful
//! drain on shutdown, and load-generator accounting.

use std::time::Duration;

use aqfp_crossbar::faults::FaultModel;
use aqfp_device::{DeviceRng, SeedableRng};
use aqfp_sc::BitPlane;
use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::spec::NetSpec;
use superbnn_serve::{closed_loop, open_loop, ServeConfig, ServeError, Server};

/// A small deployed MLP plus every dataset sample packed as an input
/// plane (256 bits: `[1, 16, 16]`).
fn packed_fixture(seed: u64) -> (PackedModel, Vec<BitPlane>) {
    let hw = HardwareConfig {
        crossbar_rows: 16,
        crossbar_cols: 16,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let model = spec.build_software(&hw, seed);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();
    let data = generate_digits(&SynthConfig {
        samples_per_class: 5,
        ..Default::default()
    });
    let planes = (0..data.len())
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    (packed, planes)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        replicas: 2,
        max_batch: 8,
        max_delay: Duration::from_micros(100),
        queue_capacity: 1024,
    }
}

/// Responses come back in request order and bit-identical — labels and
/// exact logit bit patterns — to the single-worker reference engine.
#[test]
fn pool_matches_single_worker_reference_in_order() {
    let (packed, planes) = packed_fixture(6);
    let reference = packed
        .clone()
        .with_workers(1)
        .expect("one worker is always valid");
    let want: Vec<(usize, Vec<f32>)> = planes.iter().map(|p| reference.classify_plane(p)).collect();

    let server = Server::start(packed, serve_config()).expect("server starts");
    for pass in 0..3 {
        let pending: Vec<_> = planes
            .iter()
            .map(|p| server.submit(p.clone()).expect("submit accepted"))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let (label, scores) = p.wait().expect("request answered");
            assert_eq!(label, want[i].0, "label, pass {pass} sample {i}");
            let got: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
            let expect: Vec<u32> = want[i].1.iter().map(|s| s.to_bits()).collect();
            assert_eq!(got, expect, "logit bits, pass {pass} sample {i}");
        }
    }
    let m = server.shutdown();
    assert_eq!(m.submitted, 3 * planes.len() as u64);
    assert_eq!(m.completed, m.submitted);
    assert_eq!(m.rejected, 0);
    assert_eq!(m.latency.count(), m.completed);
    assert!(m.batches > 0 && m.max_batch <= 8);
}

/// Fault injection mutates the weight planes and the dead-column state
/// the SWAR tables fold; a faulted model must serve bit-identically to
/// its own single-threaded reference too.
#[test]
fn faulted_model_serves_bit_identical() {
    let (mut packed, planes) = packed_fixture(13);
    let mut rng = DeviceRng::seed_from_u64(9);
    let defects = packed.inject_faults(
        &FaultModel::new(0.05, 0.02).expect("valid fault model"),
        &mut rng,
    );
    assert!(defects > 0, "fault campaign drew no defects");
    let want: Vec<(usize, Vec<f32>)> = planes.iter().map(|p| packed.classify_plane(p)).collect();

    let server = Server::start(packed, serve_config()).expect("server starts");
    let pending: Vec<_> = planes
        .iter()
        .map(|p| server.submit(p.clone()).expect("submit accepted"))
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let (label, scores) = p.wait().expect("request answered");
        assert_eq!(label, want[i].0, "faulted label, sample {i}");
        let got: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        let expect: Vec<u32> = want[i].1.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got, expect, "faulted logit bits, sample {i}");
    }
}

/// Shutdown must drain every accepted request — even ones that would
/// otherwise sit out a (deliberately enormous) batching delay.
#[test]
fn shutdown_answers_every_accepted_request() {
    let (packed, planes) = packed_fixture(21);
    let server = Server::start(
        packed,
        ServeConfig {
            workers: 1,
            replicas: 1,
            max_batch: 64,
            // No batch will ever fill or expire on its own: completion
            // can only come from the shutdown drain.
            max_delay: Duration::from_secs(3600),
            queue_capacity: 1024,
        },
    )
    .expect("server starts");
    let pending: Vec<_> = (0..32)
        .map(|i| {
            server
                .submit(planes[i % planes.len()].clone())
                .expect("submit accepted")
        })
        .collect();
    let m = server.shutdown();
    assert_eq!(m.completed, 32, "shutdown dropped accepted requests");
    for p in pending {
        p.wait().expect("drained request answered");
    }
}

/// The queue bound rejects with `QueueFull` instead of growing without
/// limit, and the rejection is counted.
#[test]
fn queue_capacity_back_pressure() {
    let (packed, planes) = packed_fixture(33);
    let server = Server::start(
        packed,
        ServeConfig {
            workers: 1,
            replicas: 1,
            max_batch: 64,
            max_delay: Duration::from_secs(3600),
            queue_capacity: 4,
        },
    )
    .expect("server starts");
    let accepted: Vec<_> = (0..4)
        .map(|i| server.submit(planes[i].clone()).expect("within capacity"))
        .collect();
    assert!(matches!(
        server.submit(planes[4].clone()),
        Err(ServeError::QueueFull)
    ));
    let m = server.shutdown();
    assert_eq!(m.rejected, 1);
    assert_eq!(m.completed, 4);
    for p in accepted {
        p.wait().expect("accepted request answered");
    }
}

/// Config and input validation are typed errors, not panics.
#[test]
fn invalid_configs_and_inputs_are_errors() {
    let (packed, _) = packed_fixture(40);
    for bad in [
        ServeConfig {
            workers: 0,
            ..serve_config()
        },
        ServeConfig {
            replicas: 0,
            ..serve_config()
        },
        ServeConfig {
            workers: 1,
            replicas: 2,
            ..serve_config()
        },
        ServeConfig {
            max_batch: 0,
            ..serve_config()
        },
        ServeConfig {
            queue_capacity: 0,
            ..serve_config()
        },
    ] {
        assert!(
            matches!(
                Server::start(packed.clone(), bad),
                Err(ServeError::Config(_))
            ),
            "config accepted: {bad:?}"
        );
    }

    let server = Server::start(packed, serve_config()).expect("server starts");
    match server.submit(BitPlane::zeros(5)) {
        Err(ServeError::BadInput { expected, got }) => {
            assert_eq!((expected, got), (256, 5));
        }
        other => panic!("expected BadInput, got {other:?}"),
    }
}

/// The closed-loop generator accounts for every request and observes
/// sane latency ordering.
#[test]
fn closed_loop_accounts_for_every_request() {
    let (packed, planes) = packed_fixture(55);
    let server = Server::start(packed, serve_config()).expect("server starts");
    let report = closed_loop(&server, &planes, 3, 20);
    assert_eq!(report.offered, 60);
    assert_eq!(report.completed, 60);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.latency.count(), 60);
    assert!(report.throughput_rps > 0.0);
    assert!(report.p50() <= report.p99() && report.p99() <= report.p999());
    let m = server.shutdown();
    assert_eq!(m.completed, 60);
}

/// The open-loop generator never loses a request between dispatch,
/// rejection and completion.
#[test]
fn open_loop_accounts_for_every_request() {
    let (packed, planes) = packed_fixture(70);
    let server = Server::start(packed, serve_config()).expect("server starts");
    let report = open_loop(&server, &planes, 2_000.0, 80, 2);
    assert_eq!(report.offered, 80);
    assert_eq!(report.completed + report.rejected, 80);
    assert_eq!(report.latency.count(), report.completed);
    let m = server.shutdown();
    assert_eq!(m.completed, report.completed);
}
