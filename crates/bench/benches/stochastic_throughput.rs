//! Stochastic-engine throughput: the scalar SC-datapath reference vs the
//! packed stochastic engine, at identical semantics (seed-matched flips),
//! plus the packed engine in counter mode.
//!
//! Run with `cargo bench -p superbnn-bench --bench stochastic_throughput`.
//! Both reference engines simulate the *full* stochastic datapath —
//! gray-zone comparator flips, `L`-cycle observation windows, APC
//! accumulation — and consume the RNG draw-for-draw identically, so the
//! same seed produces the same labels and scores on either engine
//! (asserted on every sample before timing; also enforced by the
//! seed-matched differential proptests in `tests/props.rs`). The packed
//! engine gets its speed from popcounted tile sums, precomputed
//! flip-probability tables and word-mask bitstreams instead of
//! per-element loops, erf evaluations and `Vec<Bit>` streams.
//!
//! The third measurement switches the packed engine to
//! [`RngMode::Counter`]: same datapath, same Bernoulli laws, but every
//! observation window is a pure function of its coordinates instead of a
//! link in the shared serial draw chain — the serial-RNG throughput floor
//! removed (statistical equivalence enforced by the counter-mode tests in
//! `superbnn::deploy::stochastic`).
//!
//! Besides printing the measurements it writes the machine-readable
//! baseline to `BENCH_stochastic.json` at the workspace root (override
//! with the `STOCHASTIC_BENCH_OUT` env var).

use aqfp_device::{DeviceRng, SeedableRng, VariationModel};
use bnn_datasets::{digits, objects, SynthConfig};
use std::fmt::Write as _;
use std::time::Instant;
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, RngMode};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

struct Workload {
    tag: &'static str,
    label: &'static str,
    spec: NetSpec,
    data: bnn_datasets::Dataset,
    /// Samples per timed pass (the scalar engine is slow; keep it fair
    /// but finite).
    timed_samples: usize,
}

/// Times `run` (which processes `samples` samples per call) until at
/// least ~0.5 s has elapsed and returns samples/second.
fn samples_per_second(samples: usize, mut run: impl FnMut(u64)) -> f64 {
    run(0); // warm-up
    let mut calls = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 0.5 || calls == 0 {
        run(calls + 1);
        calls += 1;
    }
    (calls as usize * samples) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // The deploy benches' co-optimized operating point: 8×8 crossbars
    // (heavy tiling), a wide 8 µA gray-zone so plenty of comparator
    // read-outs are genuinely stochastic, L = 32.
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };

    let digits_data = digits::generate_digits(&SynthConfig {
        samples_per_class: 12,
        ..Default::default()
    });
    let objects_data = objects::generate_objects(&SynthConfig {
        samples_per_class: 2,
        ..Default::default()
    });
    let workloads = [
        Workload {
            tag: "mlp_digits_256-128-64-10",
            label: "digits MLP 256-128-64-10",
            spec: NetSpec::mlp(&[1, 16, 16], &[128, 64], 10),
            data: digits_data,
            timed_samples: 40,
        },
        Workload {
            tag: "vgg_small_objects_w4",
            label: "objects VGG-Small (w=4)",
            spec: NetSpec::vgg_small([3, 16, 16], 4, 10),
            data: objects_data,
            timed_samples: 4,
        },
    ];

    let mut rows = String::new();
    for (wi, w) in workloads.iter().enumerate() {
        println!("\n=== {} ===", w.label);
        let mut model = w.spec.build_software(&hw, 42);
        Trainer::new(TrainConfig {
            epochs: 2,
            lr: 0.02,
            ..Default::default()
        })
        .train(&mut model, &w.data);
        let deployed = deploy(&w.spec, &model, &hw).expect("deploys");
        let packed = deployed.to_packed();
        let tables = packed.stochastic_tables(&VariationModel::nominal());

        // Identical semantics first: every sample, seed-matched, labels
        // AND scores.
        let n = w.data.len();
        let mut scalar_rng = DeviceRng::seed_from_u64(7);
        let mut packed_rng = DeviceRng::seed_from_u64(7);
        for i in 0..n {
            let want = deployed.classify(&w.data.images, i, &mut scalar_rng);
            let got = packed.classify_stochastic(&tables, &w.data.images, i, &mut packed_rng);
            assert_eq!(
                got, want,
                "packed/scalar stochastic divergence at sample {i}"
            );
        }
        println!("seed-matched flips: ok ({n} samples, identical labels and scores)");

        let timed = w.timed_samples.min(n);
        let scalar = samples_per_second(timed, |pass| {
            let mut rng = DeviceRng::seed_from_u64(pass);
            for i in 0..timed {
                std::hint::black_box(deployed.classify(&w.data.images, i, &mut rng));
            }
        });
        let packed_sps = samples_per_second(timed, |pass| {
            let mut rng = DeviceRng::seed_from_u64(pass);
            std::hint::black_box(packed.accuracy_stochastic(
                &tables,
                &w.data,
                &mut rng,
                Some(timed),
            ));
        });
        // Counter mode: same packed datapath, windows drawn as pure
        // functions of their coordinates — no serial chain between them.
        let tables_ctr =
            packed.stochastic_tables_mode(&VariationModel::nominal(), RngMode::Counter);
        let counter_sps = samples_per_second(timed, |pass| {
            std::hint::black_box(packed.accuracy_stochastic_ctr(
                &tables_ctr,
                &w.data,
                pass,
                Some(timed),
            ));
        });
        let speedup = packed_sps / scalar;
        let ctr_speedup = counter_sps / packed_sps;
        println!("scalar stochastic engine : {scalar:>10.1} samples/s");
        println!(
            "packed stochastic engine : {packed_sps:>10.1} samples/s  ({speedup:.1}x, 1 thread)"
        );
        println!(
            "packed counter mode      : {counter_sps:>10.1} samples/s  \
             ({ctr_speedup:.2}x over seed-matched)"
        );
        if wi == 0 && speedup < 4.0 {
            println!("WARNING: packed stochastic speedup below the 4x target");
        }
        assert!(
            counter_sps > packed_sps,
            "counter mode must beat the seed-matched serial chain ({counter_sps:.1} vs {packed_sps:.1})"
        );

        let sep = if wi + 1 < workloads.len() { "," } else { "" };
        let _ = write!(
            rows,
            "\n    {{\n      \"model\": \"{}\",\n      \"crossbar\": \"{}x{}\",\n      \
             \"bitstream_len\": {},\n      \"grayzone_ua\": {},\n      \
             \"verified_samples\": {n},\n      \"timed_samples\": {timed},\n      \
             \"scalar_stochastic_samples_per_s\": {scalar:.1},\n      \
             \"packed_stochastic_samples_per_s\": {packed_sps:.1},\n      \
             \"counter_stochastic_samples_per_s\": {counter_sps:.1},\n      \
             \"speedup_packed_1thread\": {speedup:.2},\n      \
             \"speedup_counter_over_seed_matched\": {ctr_speedup:.2}\n    }}{sep}",
            w.tag, hw.crossbar_rows, hw.crossbar_cols, hw.bitstream_len, hw.grayzone_ua,
        );
    }

    // All engines here are timed single-threaded (the seed-matched paths
    // are serial-RNG-bound, and counter mode is measured at the same
    // worker count for a like-for-like comparison).
    let json = format!(
        "{{\n  {},\n  \"seed_matched_flips\": true,\n  \
         \"workloads\": [{rows}\n  ]\n}}\n",
        superbnn_bench::baseline_header("stochastic_throughput", &[("measured_workers", 1)]),
    );
    superbnn_bench::write_baseline("STOCHASTIC_BENCH_OUT", "BENCH_stochastic.json", &json);
}
