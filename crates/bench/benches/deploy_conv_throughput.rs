//! Conv-pipeline throughput: the scalar digital reference vs the packed
//! layer pipeline on the CIFAR-class VGG workload.
//!
//! The dense engine's baseline lives in `deploy_throughput` /
//! `BENCH_deploy.json`; this bench measures what the bitplane im2col +
//! packed conv/pool stages buy on the paper's headline scenario — a
//! VGG-small on CIFAR-shaped (3-channel SynthObjects) images, where the
//! scalar path gathers every receptive field element-by-element.
//!
//! Run with `cargo bench --bench deploy_conv_throughput`. Besides printing
//! the measurements it verifies the engines are bit-identical on every
//! sample and writes the machine-readable baseline to
//! `BENCH_deploy_conv.json` at the workspace root (override with the
//! `DEPLOY_CONV_BENCH_OUT` env var).

use bnn_datasets::{objects::generate_objects, SynthConfig};
use std::time::{Duration, Instant};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

/// Times `run` (which processes `samples` samples per call) until at least
/// ~0.6 s has elapsed and returns samples/second.
fn samples_per_second(samples: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up
    let mut calls = 0usize;
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(600) || calls == 0 {
        run();
        calls += 1;
    }
    (calls * samples) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let data = generate_objects(&SynthConfig {
        samples_per_class: 10,
        ..Default::default()
    });
    let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let mut model = spec.build_software(&hw, 42);
    // One epoch so BN statistics (and hence the programmed thresholds)
    // are non-trivial; the bench measures engines, not accuracy.
    Trainer::new(TrainConfig {
        epochs: 1,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let packed = deployed.to_packed();
    // The batched measurement fans across this many workers; the
    // single-thread measurements pin one.
    let batch_workers = packed.workers();

    let n = data.len();
    println!(
        "deploy_conv_throughput: VGG-small 8-16-32, 3x16x16 inputs, {n} samples, 32x16 crossbars"
    );
    println!(
        "pipeline: {} stages ({})",
        packed.layers().len(),
        packed
            .layers()
            .iter()
            .map(superbnn::deploy::PackedLayer::name)
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // Differential check first: the packed pipeline must be bit-identical
    // to the scalar digital reference on every sample.
    let batch = packed.classify_batch(&data.images, None);
    for (i, got) in batch.iter().enumerate() {
        let want = deployed.classify_digital(&data.images, i);
        assert_eq!(*got, want, "packed/scalar divergence at sample {i}");
    }
    println!("bit-identical predictions: ok ({n} samples)");

    let scalar = samples_per_second(n, || {
        for i in 0..n {
            std::hint::black_box(deployed.classify_digital(&data.images, i));
        }
    });
    let packed_1t = {
        let one = deployed
            .to_packed()
            .with_workers(1)
            .expect("one worker is always valid");
        samples_per_second(n, || {
            std::hint::black_box(one.classify_batch(&data.images, None));
        })
    };
    let packed_mt = samples_per_second(n, || {
        std::hint::black_box(packed.classify_batch(&data.images, None));
    });

    let speedup_1t = packed_1t / scalar;
    let speedup_mt = packed_mt / scalar;
    println!("scalar digital engine : {scalar:>12.1} samples/s");
    println!("packed pipeline (1 thr) : {packed_1t:>12.1} samples/s  ({speedup_1t:.1}x)");
    println!(
        "packed pipeline ({batch_workers} thr) : {packed_mt:>12.1} samples/s  ({speedup_mt:.1}x)"
    );
    if speedup_1t < 4.0 {
        println!("WARNING: single-thread packed conv speedup below the 4x target");
    }

    let json = format!(
        "{{\n  {},\n  \"model\": \"vgg_small_objects_8-16-32\",\n  \
         \"input\": \"3x16x16\",\n  \"crossbar\": \"32x16\",\n  \
         \"samples\": {n},\n  \
         \"bit_identical\": true,\n  \
         \"scalar_digital_samples_per_s\": {scalar:.1},\n  \
         \"packed_1thread_samples_per_s\": {packed_1t:.1},\n  \
         \"packed_batch_samples_per_s\": {packed_mt:.1},\n  \
         \"speedup_packed_1thread\": {speedup_1t:.2},\n  \
         \"speedup_packed_batch\": {speedup_mt:.2}\n}}\n",
        superbnn_bench::baseline_header(
            "deploy_conv_throughput",
            &[
                ("measured_workers_1thread", 1),
                ("measured_workers_batch", batch_workers),
            ]
        ),
    );
    superbnn_bench::write_baseline("DEPLOY_CONV_BENCH_OUT", "BENCH_deploy_conv.json", &json);
}
