//! Deploy-engine throughput: the scalar digital reference vs the batched
//! bit-packed XNOR–popcount engine on the digits MLP pipeline.
//!
//! Run with `cargo bench --bench deploy_throughput`. Besides printing the
//! measurements it verifies the two engines are bit-identical on every
//! sample and writes the machine-readable baseline to `BENCH_deploy.json`
//! at the workspace root (override with the `DEPLOY_BENCH_OUT` env var).

use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits::generate_digits, SynthConfig};
use std::time::{Duration, Instant};
use superbnn::config::HardwareConfig;
use superbnn::deploy::deploy;
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

/// Times `run` (which processes `samples` samples per call) until at least
/// ~0.6 s has elapsed and returns samples/second.
fn samples_per_second(samples: usize, mut run: impl FnMut()) -> f64 {
    // One warm-up call, then timed calls.
    run();
    let mut calls = 0usize;
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(600) || calls == 0 {
        run();
        calls += 1;
    }
    (calls * samples) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // The pipeline tests' co-optimized operating point: 8×8 crossbars
    // (heavy tiling: 32 row tiles for the 256-wide input), L = 32.
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let data = generate_digits(&SynthConfig {
        samples_per_class: 40,
        ..Default::default()
    });
    let spec = NetSpec::mlp(&[1, 16, 16], &[128, 64], 10);
    let mut model = spec.build_software(&hw, 42);
    // A couple of epochs so BN statistics (and hence the programmed
    // thresholds) are non-trivial.
    Trainer::new(TrainConfig {
        epochs: 2,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let packed = deployed.to_packed();
    // The batched measurement fans across this many workers; the
    // single-thread measurements pin one.
    let batch_workers = packed.workers();

    let n = data.len();
    println!("deploy_throughput: digits MLP 256-128-64-10, {n} samples, 8x8 crossbars");

    // Differential check first: the packed engine must be bit-identical
    // to the scalar digital reference on every sample.
    let batch = packed.classify_batch(&data.images, None);
    for (i, got) in batch.iter().enumerate() {
        let want = deployed.classify_digital(&data.images, i);
        assert_eq!(*got, want, "packed/scalar divergence at sample {i}");
    }
    println!("bit-identical predictions: ok ({n} samples)");

    let scalar = samples_per_second(n, || {
        for i in 0..n {
            std::hint::black_box(deployed.classify_digital(&data.images, i));
        }
    });
    let packed_1t = {
        let one = deployed
            .to_packed()
            .with_workers(1)
            .expect("one worker is always valid");
        samples_per_second(n, || {
            std::hint::black_box(one.classify_batch(&data.images, None));
        })
    };
    let packed_mt = samples_per_second(n, || {
        std::hint::black_box(packed.classify_batch(&data.images, None));
    });
    // The stochastic engine for context (it simulates SC noise, so it is
    // far slower; time a slice and extrapolate).
    let stochastic = {
        let mut rng = DeviceRng::seed_from_u64(7);
        let slice = n.min(20);
        let start = Instant::now();
        for i in 0..slice {
            std::hint::black_box(deployed.classify(&data.images, i, &mut rng));
        }
        slice as f64 / start.elapsed().as_secs_f64()
    };

    let speedup_1t = packed_1t / scalar;
    let speedup_mt = packed_mt / scalar;
    println!("stochastic engine     : {stochastic:>12.1} samples/s");
    println!("scalar digital engine : {scalar:>12.1} samples/s");
    println!("packed engine (1 thr) : {packed_1t:>12.1} samples/s  ({speedup_1t:.1}x)");
    println!(
        "packed engine ({batch_workers} thr) : {packed_mt:>12.1} samples/s  ({speedup_mt:.1}x)"
    );
    if speedup_mt < 10.0 {
        println!("WARNING: packed speedup below the 10x target");
    }

    let json = format!(
        "{{\n  {},\n  \"model\": \"mlp_digits_256-128-64-10\",\n  \
         \"crossbar\": \"8x8\",\n  \"bitstream_len\": 32,\n  \"samples\": {n},\n  \
         \"bit_identical\": true,\n  \
         \"stochastic_samples_per_s\": {stochastic:.1},\n  \
         \"scalar_digital_samples_per_s\": {scalar:.1},\n  \
         \"packed_1thread_samples_per_s\": {packed_1t:.1},\n  \
         \"packed_batch_samples_per_s\": {packed_mt:.1},\n  \
         \"speedup_packed_1thread\": {speedup_1t:.2},\n  \
         \"speedup_packed_batch\": {speedup_mt:.2}\n}}\n",
        superbnn_bench::baseline_header(
            "deploy_throughput",
            &[
                ("measured_workers_1thread", 1),
                ("measured_workers_batch", batch_workers),
            ]
        ),
    );
    superbnn_bench::write_baseline("DEPLOY_BENCH_OUT", "BENCH_deploy.json", &json);
}
