//! ATPG screening cost at benchmark scale: how expensive is probe-set
//! generation as the targeted fault-class count grows, how much does the
//! event-driven fault-cone engine buy over the full-forward path, and
//! how fast does the sealed probe set replay against a die?
//!
//! Run with `cargo bench -p superbnn-bench --bench screening_bench`.
//! The digits MLP is trained and lowered **once** (reported as
//! `train_seconds`); the timed figures are then:
//!
//! * **ATPG** — `generate_probes` over the same candidate pool at a
//!   sweep of fault-class sample sizes, once per engine. The `full`
//!   engine pays one journaled patch → whole-pool classification →
//!   revert per class; the `delta` engine replays only each fault's
//!   cone against a shared clean-activation cache, so its rows carry a
//!   `speedup_vs_full` ratio (both engines are asserted to build
//!   identical reports before either is timed as truth).
//! * **VGG** — the first conv-pipeline screening row: the same
//!   dual-engine measurement on a VGG-small lowered over 32×16
//!   crossbars, where the cone of a single stuck cell is a sliver of
//!   the im2col GEMM and the delta engine's advantage is structural.
//! * **replay** — `ProbeSet::screen` throughput on the final probe set,
//!   the per-die cost a fab line pays (single-threaded, milliseconds).
//!
//! Besides printing the sweep it writes the machine-readable baseline to
//! `BENCH_screening.json` at the workspace root (override with the
//! `SCREENING_BENCH_OUT` env var).

use bnn_datasets::{digits::generate_digits, objects::generate_objects, SynthConfig};
use std::fmt::Write as _;
use std::time::Instant;
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::screening::{
    generate_probes, synthesize_probes, ScreenEngine, ScreeningConfig, ScreeningReport,
};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

const EVAL_CANDIDATES: usize = 48;
const SYNTH_CANDIDATES: usize = 80;
const CLASS_SCALES: [usize; 3] = [128, 512, 2048];
const VGG_CLASSES: usize = 256;
const VGG_EVAL_CANDIDATES: usize = 32;
const VGG_SYNTH_CANDIDATES: usize = 32;
const MAX_VECTORS: usize = 64;
const SEED: u64 = 7;

/// Times `generate_probes` under both engines at one fault-class scale,
/// asserts the reports are bit-identical, prints the comparison, and
/// appends one JSON row per engine. Returns the (shared) report.
#[allow(clippy::too_many_arguments)]
fn bench_scale(
    packed: &PackedModel,
    candidates: &[aqfp_sc::BitPlane],
    classes: usize,
    workers: usize,
    rows: &mut String,
    last: bool,
) -> ScreeningReport {
    let cfg = ScreeningConfig::default()
        .with_fault_classes(classes)
        .with_max_vectors(MAX_VECTORS)
        .with_seed(SEED)
        .with_workers(workers);
    let start = Instant::now();
    let full = generate_probes(packed, candidates, &cfg.with_engine(ScreenEngine::Full))
        .expect("screenable universe");
    let full_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let report = generate_probes(packed, candidates, &cfg.with_engine(ScreenEngine::Delta))
        .expect("screenable universe");
    let delta_secs = start.elapsed().as_secs_f64();
    assert_eq!(full, report, "engines must build identical reports");
    let speedup = full_secs / delta_secs;
    println!(
        "{classes:>5} classes: {} vectors, fault coverage {:.1}%, test coverage {:.1}%, \
         full {full_secs:.2}s ({:.0}/s) vs delta {delta_secs:.2}s ({:.0}/s) — {speedup:.1}x",
        report.probes.len(),
        100.0 * report.coverage,
        100.0 * report.test_coverage(),
        report.targeted as f64 / full_secs,
        report.targeted as f64 / delta_secs,
    );
    for (engine, secs, ratio, sep) in [
        ("full", full_secs, 1.0, ","),
        ("delta", delta_secs, speedup, if last { "" } else { "," }),
    ] {
        let _ = write!(
            rows,
            "\n      {{\"fault_classes\": {classes}, \"engine\": \"{engine}\", \
             \"detectable\": {}, \"vectors\": {}, \"fault_coverage\": {:.4}, \
             \"test_coverage\": {:.4}, \"atpg_seconds\": {secs:.2}, \
             \"classes_per_second\": {:.0}, \"speedup_vs_full\": {ratio:.1}}}{sep}",
            report.detectable,
            report.probes.len(),
            report.coverage,
            report.test_coverage(),
            report.targeted as f64 / secs,
        );
    }
    report
}

fn main() {
    let workers = superbnn_bench::machine_cpus();

    // One-time setup, untimed in the ATPG figures: train + deploy + lower
    // + build the candidate pool.
    let start = Instant::now();
    let data = generate_digits(&SynthConfig {
        samples_per_class: 30,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, SEED);
    Trainer::new(TrainConfig {
        epochs: 8,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();
    let input_len: usize = packed.input_shape().iter().product();
    let mut candidates: Vec<aqfp_sc::BitPlane> = (0..EVAL_CANDIDATES)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    candidates.extend(synthesize_probes(
        input_len,
        SYNTH_CANDIDATES,
        SEED ^ 0x9E0B,
    ));
    let train_seconds = start.elapsed().as_secs_f64();
    println!(
        "screening_bench: digits MLP lowered in {train_seconds:.1}s, \
         {} candidate vectors, {workers} workers",
        candidates.len()
    );

    let mut atpg_rows = String::new();
    let mut last_report = None;
    for (i, &classes) in CLASS_SCALES.iter().enumerate() {
        let report = bench_scale(
            &packed,
            &candidates,
            classes,
            workers,
            &mut atpg_rows,
            i + 1 == CLASS_SCALES.len(),
        );
        last_report = Some(report);
    }
    let report = last_report.expect("at least one ATPG scale ran");

    // The conv-pipeline row: VGG-small on 3×16×16 object planes. One
    // warm-up epoch so the programmed thresholds are non-trivial; the
    // bench measures engines, not accuracy.
    let start = Instant::now();
    let vgg_hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let vgg_data = generate_objects(&SynthConfig {
        samples_per_class: 10,
        ..Default::default()
    });
    let vgg_spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
    let mut vgg_model = vgg_spec.build_software(&vgg_hw, SEED);
    Trainer::new(TrainConfig {
        epochs: 1,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut vgg_model, &vgg_data);
    let vgg = deploy(&vgg_spec, &vgg_model, &vgg_hw)
        .expect("deploys")
        .to_packed();
    let vgg_input_len: usize = vgg.input_shape().iter().product();
    let mut vgg_candidates: Vec<aqfp_sc::BitPlane> = (0..VGG_EVAL_CANDIDATES)
        .map(|i| BitMap::from_tensor_sample(&vgg_data.images, i).to_plane())
        .collect();
    vgg_candidates.extend(synthesize_probes(
        vgg_input_len,
        VGG_SYNTH_CANDIDATES,
        SEED ^ 0x9E0B,
    ));
    let vgg_train_seconds = start.elapsed().as_secs_f64();
    println!(
        "VGG-small 8-16-32 lowered in {vgg_train_seconds:.1}s, {} candidate vectors",
        vgg_candidates.len()
    );
    let mut vgg_rows = String::new();
    let vgg_report = bench_scale(
        &vgg,
        &vgg_candidates,
        VGG_CLASSES,
        workers,
        &mut vgg_rows,
        true,
    );

    // Replay throughput: the per-die screening cost (single-threaded).
    let probes = &report.probes;
    let reps = 2000usize;
    let start = Instant::now();
    let mut detections = 0usize;
    for _ in 0..reps {
        detections += probes.screen(&packed).detections();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(detections, 0, "the golden die screens clean");
    let dies_per_s = reps as f64 / secs;
    let probes_per_s = (reps * probes.len()) as f64 / secs;
    println!(
        "replay: {} probes/die, {:.2} ms/die ({dies_per_s:.0} dies/s, {probes_per_s:.0} probes/s)",
        probes.len(),
        1e3 * secs / reps as f64,
    );

    let json = format!(
        "{{\n  {},\n  \"model\": \"mlp_digits_256-32-10\",\n  \"crossbar\": \"8x8\",\n  \
         \"train_seconds\": {train_seconds:.1},\n  \
         \"candidates\": {{\"eval\": {EVAL_CANDIDATES}, \"synthesized\": {SYNTH_CANDIDATES}}},\n  \
         \"fault_universe_total\": {},\n  \"max_vectors\": {MAX_VECTORS},\n  \
         \"atpg\": [{atpg_rows}\n  ],\n  \
         \"vgg\": {{\"model\": \"vgg_small_8-16-32_3x16x16\", \"crossbar\": \"32x16\", \
         \"train_seconds\": {vgg_train_seconds:.1}, \
         \"candidates\": {{\"eval\": {VGG_EVAL_CANDIDATES}, \"synthesized\": {VGG_SYNTH_CANDIDATES}}}, \
         \"fault_universe_total\": {}, \"atpg\": [{vgg_rows}\n  ]}},\n  \
         \"replay\": {{\"probes\": {}, \"dies_per_second\": {dies_per_s:.0}, \
         \"probes_per_second\": {probes_per_s:.0}}}\n}}\n",
        superbnn_bench::baseline_header("screening", &[("measured_workers", workers)]),
        report.universe,
        vgg_report.universe,
        probes.len(),
    );
    superbnn_bench::write_baseline("SCREENING_BENCH_OUT", "BENCH_screening.json", &json);
}
