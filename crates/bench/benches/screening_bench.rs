//! ATPG screening cost at benchmark scale: how expensive is probe-set
//! generation as the targeted fault-class count grows, and how fast does
//! the sealed probe set replay against a die?
//!
//! Run with `cargo bench -p superbnn-bench --bench screening_bench`.
//! The digits MLP is trained and lowered **once** (reported as
//! `train_seconds`); the timed figures are then:
//!
//! * **ATPG** — `generate_probes` over the same candidate pool at a
//!   sweep of fault-class sample sizes (the detection matrix dominates:
//!   one journaled patch → pool classification → revert per class, fanned
//!   across workers);
//! * **replay** — `ProbeSet::screen` throughput on the final probe set,
//!   the per-die cost a fab line pays (single-threaded, milliseconds).
//!
//! Besides printing the sweep it writes the machine-readable baseline to
//! `BENCH_screening.json` at the workspace root (override with the
//! `SCREENING_BENCH_OUT` env var).

use bnn_datasets::{digits::generate_digits, SynthConfig};
use std::fmt::Write as _;
use std::time::Instant;
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap};
use superbnn::screening::{generate_probes, synthesize_probes, ScreeningConfig};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};

const EVAL_CANDIDATES: usize = 48;
const SYNTH_CANDIDATES: usize = 80;
const CLASS_SCALES: [usize; 3] = [128, 512, 2048];
const MAX_VECTORS: usize = 64;
const SEED: u64 = 7;

fn main() {
    let workers = superbnn_bench::machine_cpus();

    // One-time setup, untimed in the ATPG figures: train + deploy + lower
    // + build the candidate pool.
    let start = Instant::now();
    let data = generate_digits(&SynthConfig {
        samples_per_class: 30,
        ..Default::default()
    });
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
    let mut model = spec.build_software(&hw, SEED);
    Trainer::new(TrainConfig {
        epochs: 8,
        lr: 0.02,
        noise_warmup_epochs: 2,
        ..Default::default()
    })
    .train(&mut model, &data);
    let packed = deploy(&spec, &model, &hw).expect("deploys").to_packed();
    let input_len: usize = packed.input_shape().iter().product();
    let mut candidates: Vec<aqfp_sc::BitPlane> = (0..EVAL_CANDIDATES)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    candidates.extend(synthesize_probes(
        input_len,
        SYNTH_CANDIDATES,
        SEED ^ 0x9E0B,
    ));
    let train_seconds = start.elapsed().as_secs_f64();
    println!(
        "screening_bench: digits MLP lowered in {train_seconds:.1}s, \
         {} candidate vectors, {workers} workers",
        candidates.len()
    );

    let mut atpg_rows = String::new();
    let mut last_report = None;
    for (i, &classes) in CLASS_SCALES.iter().enumerate() {
        let cfg = ScreeningConfig::default()
            .with_fault_classes(classes)
            .with_max_vectors(MAX_VECTORS)
            .with_seed(SEED)
            .with_workers(workers);
        let start = Instant::now();
        let report = generate_probes(&packed, &candidates, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let classes_per_s = report.targeted as f64 / secs;
        println!(
            "{classes:>5} classes: {} vectors, fault coverage {:.1}%, test coverage {:.1}%, \
             {secs:.2}s ({classes_per_s:.0} classes/s)",
            report.probes.len(),
            100.0 * report.coverage,
            100.0 * report.test_coverage(),
        );
        let sep = if i + 1 < CLASS_SCALES.len() { "," } else { "" };
        let _ = write!(
            atpg_rows,
            "\n      {{\"fault_classes\": {classes}, \"detectable\": {}, \
             \"vectors\": {}, \"fault_coverage\": {:.4}, \"test_coverage\": {:.4}, \
             \"atpg_seconds\": {secs:.2}, \"classes_per_second\": {classes_per_s:.0}}}{sep}",
            report.detectable,
            report.probes.len(),
            report.coverage,
            report.test_coverage(),
        );
        last_report = Some(report);
    }
    let report = last_report.expect("at least one ATPG scale ran");

    // Replay throughput: the per-die screening cost (single-threaded).
    let probes = &report.probes;
    let reps = 2000usize;
    let start = Instant::now();
    let mut detections = 0usize;
    for _ in 0..reps {
        detections += probes.screen(&packed).detections();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(detections, 0, "the golden die screens clean");
    let dies_per_s = reps as f64 / secs;
    let probes_per_s = (reps * probes.len()) as f64 / secs;
    println!(
        "replay: {} probes/die, {:.2} ms/die ({dies_per_s:.0} dies/s, {probes_per_s:.0} probes/s)",
        probes.len(),
        1e3 * secs / reps as f64,
    );

    let json = format!(
        "{{\n  {},\n  \"model\": \"mlp_digits_256-32-10\",\n  \"crossbar\": \"8x8\",\n  \
         \"train_seconds\": {train_seconds:.1},\n  \
         \"candidates\": {{\"eval\": {EVAL_CANDIDATES}, \"synthesized\": {SYNTH_CANDIDATES}}},\n  \
         \"fault_universe_total\": {},\n  \"max_vectors\": {MAX_VECTORS},\n  \
         \"atpg\": [{atpg_rows}\n  ],\n  \
         \"replay\": {{\"probes\": {}, \"dies_per_second\": {dies_per_s:.0}, \
         \"probes_per_second\": {probes_per_s:.0}}}\n}}\n",
        superbnn_bench::baseline_header("screening", &[("measured_workers", workers)]),
        report.universe,
        probes.len(),
    );
    superbnn_bench::write_baseline("SCREENING_BENCH_OUT", "BENCH_screening.json", &json);
}
