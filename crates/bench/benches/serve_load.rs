//! Serving-layer benchmark: snapshot cold-start plus latency SLOs under
//! closed- and open-loop load on the persistent worker pool.
//!
//! The pipeline mirrors a real serving box: train/deploy/lower once
//! (stand-in for the build farm), write the versioned binary snapshot,
//! **cold-start** the server by loading it back (asserted bit-identical
//! to the in-memory model on every sample), then measure:
//!
//! 1. **Saturation throughput** — a closed loop with `2 × workers`
//!    clients, each keeping one request in flight; its throughput is the
//!    pool's capacity.
//! 2. **Tail latency at 50% load** — an open loop offering half the
//!    measured saturation rate on a fixed schedule, reporting
//!    p50/p99/p99.9 measured from each request's *scheduled* time
//!    (coordinated-omission safe).
//!
//! Run with `cargo bench --bench serve_load`. Writes `BENCH_serve.json`
//! at the workspace root (override with the `SERVE_BENCH_OUT` env var).

use std::time::{Duration, Instant};

use bnn_datasets::{digits::generate_digits, SynthConfig};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{deploy, BitMap, PackedModel};
use superbnn::spec::NetSpec;
use superbnn::trainer::{TrainConfig, Trainer};
use superbnn_serve::{closed_loop, open_loop, ServeConfig, Server};

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    // The deploy benches' workload: digits MLP 256-128-64-10 at the
    // co-optimized 8×8 / L=32 operating point, briefly trained.
    let hw = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 32,
        ..Default::default()
    };
    let data = generate_digits(&SynthConfig {
        samples_per_class: 40,
        ..Default::default()
    });
    let spec = NetSpec::mlp(&[1, 16, 16], &[128, 64], 10);
    let mut model = spec.build_software(&hw, 42);
    Trainer::new(TrainConfig {
        epochs: 2,
        lr: 0.02,
        ..Default::default()
    })
    .train(&mut model, &data);
    let deployed = deploy(&spec, &model, &hw).expect("deploys");
    let packed = deployed.to_packed();
    let n = data.len();
    println!("serve_load: digits MLP 256-128-64-10, {n} distinct inputs, 8x8 crossbars");

    // --- Snapshot cold start --------------------------------------------
    let path =
        std::env::temp_dir().join(format!("superbnn_serve_bench_{}.sbnn", std::process::id()));
    let t0 = Instant::now();
    packed.save_snapshot(&path).expect("snapshot saves");
    let save = t0.elapsed();
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot stat").len();
    let t0 = Instant::now();
    let loaded = PackedModel::load_snapshot(&path).expect("snapshot loads");
    let load = t0.elapsed();
    std::fs::remove_file(&path).ok();
    for i in 0..n {
        assert_eq!(
            loaded.classify(&data.images, i),
            packed.classify(&data.images, i),
            "cold-started model diverged at sample {i}"
        );
    }
    println!(
        "snapshot cold start: {snapshot_bytes} bytes, save {:.2} ms, load {:.2} ms, bit-identical ({n} samples)",
        save.as_secs_f64() * 1e3,
        load.as_secs_f64() * 1e3,
    );

    // --- The pool under test --------------------------------------------
    let machine_cpus = superbnn_bench::machine_cpus();
    let config = ServeConfig {
        workers: machine_cpus,
        replicas: machine_cpus,
        max_batch: 32,
        max_delay: Duration::from_micros(200),
        queue_capacity: 4096,
    };
    let planes: Vec<_> = (0..n)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    let server = Server::start(loaded, config).expect("server starts");

    // --- 1. Closed loop: saturation throughput --------------------------
    let clients = 2 * config.workers;
    let per_client = (4_000usize).div_ceil(clients);
    let closed = closed_loop(&server, &planes, clients, per_client);
    assert_eq!(closed.rejected, 0, "closed loop saw rejections");
    println!(
        "closed loop ({clients} clients, {} requests): {:.0} req/s saturation, p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us",
        closed.offered,
        closed.throughput_rps,
        micros(closed.p50()),
        micros(closed.p99()),
        micros(closed.p999()),
    );

    // --- 2. Open loop at ~50% of saturation: SLO tail latency -----------
    let rate = closed.throughput_rps * 0.5;
    let total = ((rate * 1.5) as usize).clamp(1_000, 20_000);
    let open = open_loop(&server, &planes, rate, total, config.workers + 1);
    println!(
        "open loop ({rate:.0} req/s offered, {total} requests): completed {}, dropped {}, p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us, max {:.1} us",
        open.completed,
        open.rejected,
        micros(open.p50()),
        micros(open.p99()),
        micros(open.p999()),
        micros(open.latency.max()),
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.rejected, open.rejected, "rejection accounting");
    println!(
        "pool: {} batches, mean batch {:.2}, max batch {}, {} completed",
        metrics.batches, metrics.mean_batch, metrics.max_batch, metrics.completed,
    );

    let json = format!(
        "{{\n  {header},\n  \
         \"model\": \"mlp_digits_256-128-64-10\",\n  \"crossbar\": \"8x8\",\n  \
         \"replicas\": {replicas},\n  \
         \"max_batch\": {max_batch},\n  \"max_delay_us\": {max_delay:.0},\n  \
         \"queue_capacity\": {queue_capacity},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"snapshot_save_ms\": {save_ms:.3},\n  \"snapshot_load_ms\": {load_ms:.3},\n  \
         \"cold_start_bit_identical\": true,\n  \
         \"closed_loop\": {{\n    \"clients\": {clients},\n    \"requests\": {c_off},\n    \
         \"saturation_rps\": {c_rps:.1},\n    \"dropped\": {c_rej},\n    \
         \"p50_us\": {c_p50:.1},\n    \"p99_us\": {c_p99:.1},\n    \"p999_us\": {c_p999:.1}\n  }},\n  \
         \"open_loop\": {{\n    \"offered_rps\": {o_rate:.1},\n    \"requests\": {o_off},\n    \
         \"completed\": {o_done},\n    \"dropped\": {o_rej},\n    \
         \"p50_us\": {o_p50:.1},\n    \"p99_us\": {o_p99:.1},\n    \"p999_us\": {o_p999:.1},\n    \
         \"max_us\": {o_max:.1}\n  }},\n  \
         \"pool\": {{\n    \"batches\": {batches},\n    \"mean_batch\": {mean_batch:.2},\n    \
         \"max_batch_seen\": {max_batch_seen},\n    \"completed\": {completed}\n  }}\n}}\n",
        header = superbnn_bench::baseline_header(
            "serve_load",
            &[("measured_workers", config.workers)]
        ),
        replicas = config.replicas,
        max_batch = config.max_batch,
        max_delay = micros(config.max_delay),
        queue_capacity = config.queue_capacity,
        save_ms = save.as_secs_f64() * 1e3,
        load_ms = load.as_secs_f64() * 1e3,
        c_off = closed.offered,
        c_rps = closed.throughput_rps,
        c_rej = closed.rejected,
        c_p50 = micros(closed.p50()),
        c_p99 = micros(closed.p99()),
        c_p999 = micros(closed.p999()),
        o_rate = rate,
        o_off = open.offered,
        o_done = open.completed,
        o_rej = open.rejected,
        o_p50 = micros(open.p50()),
        o_p99 = micros(open.p99()),
        o_p999 = micros(open.p999()),
        o_max = micros(open.latency.max()),
        batches = metrics.batches,
        mean_batch = metrics.mean_batch,
        max_batch_seen = metrics.max_batch,
        completed = metrics.completed,
    );
    superbnn_bench::write_baseline("SERVE_BENCH_OUT", "BENCH_serve.json", &json);
}
