//! Hot-kernel microbenchmarks of the wide-word SIMD datapath: the three
//! inner loops every packed engine throughput number decomposes into,
//! timed in isolation at both word widths.
//!
//! 1. **SWAR lane counts** — [`lane_counts_w`] at `u64` vs [`V256`]: the
//!    per-word cost of the parallel bit-count reduction behind every tile
//!    vote and match count.
//! 2. **Masked popcount** — [`count_ones_range`] over random sub-ranges,
//!    the generic tile-boundary kernel.
//! 3. **Fused XNOR+vote GEMM tile kernel** —
//!    [`PackedTiledMatrix::forward_matrix_as`] instantiated at `u64`
//!    (one pixel per word step) vs `V256` (four), on a conv-shaped
//!    geometry; outputs are asserted bit-identical between widths before
//!    timing.
//! 4. **Bernoulli window sampling** — per-cell
//!    [`sample_bernoulli_words`] calls vs the plane-at-a-time
//!    [`sample_bernoulli_planes`] batch, asserted draw-for-draw identical
//!    (same seed ⇒ same stream words) before timing.
//! 5. **Raw word generation** — the serial xoshiro chain
//!    (`next_u64` after `next_u64`, one loop-carried dependency per
//!    draw) vs the keyed [`CounterStream`] (each word a pure function of
//!    its counter, no chain), plus the counter-mode Bernoulli batch fill
//!    on the same mixed threshold table as kernel 4 — the serial RNG
//!    floor the stochastic engine's counter mode removes.
//!
//! The end-to-end benches (`deploy_throughput`, `deploy_conv_throughput`,
//! `stochastic_throughput`) answer "how fast is the engine"; this one
//! answers "which kernel moved" when those numbers shift. Run with
//! `cargo bench --bench kernel_microbench`; writes `BENCH_kernels.json`
//! at the workspace root (override with `KERNEL_BENCH_OUT`).

use aqfp_device::{DeviceRng, SeedableRng};
use aqfp_sc::bitplane::{
    bernoulli_threshold, count_ones_range, lane_counts_w, sample_bernoulli_planes,
    sample_bernoulli_words,
};
use aqfp_sc::{CounterStream, PackedMatrix, Word, V256};
use rand::RngCore;
use std::time::{Duration, Instant};
use superbnn::config::HardwareConfig;
use superbnn::deploy::{PackedTiledMatrix, TiledMatrix};

/// Times `run` (which performs `ops` kernel operations per call) until at
/// least ~0.4 s has elapsed and returns operations/second.
fn ops_per_second(ops: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up
    let mut calls = 0usize;
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(400) || calls == 0 {
        run();
        calls += 1;
    }
    (calls * ops) as f64 / start.elapsed().as_secs_f64()
}

/// Deterministic pseudo-random word fill (keeps the bench self-seeded).
fn fill_words(words: &mut [u64], rng: &mut DeviceRng) {
    for w in words.iter_mut() {
        *w = rng.next_u64();
    }
}

/// SWAR reduction throughput at one `Word` width, in u64-lane words/s
/// (so `u64` and `V256` numbers are directly comparable).
fn bench_lane_counts<W: Word>(data: &[u64], lane: u32) -> f64 {
    let n = data.len() / W::LANES * W::LANES;
    ops_per_second(n, || {
        let mut acc = W::zero();
        for chunk in data[..n].chunks_exact(W::LANES) {
            let mut x = W::zero();
            for (l, &w) in chunk.iter().enumerate() {
                x.set_lane(l, w);
            }
            acc = acc.add64(lane_counts_w(x, lane));
        }
        std::hint::black_box(acc);
    })
}

fn main() {
    let mut rng = DeviceRng::seed_from_u64(2024);

    // --- 1. SWAR lane counts, u64 vs V256 -------------------------------
    let mut data = vec![0u64; 1 << 14];
    fill_words(&mut data, &mut rng);
    let lane = 8u32;
    let lc_u64 = bench_lane_counts::<u64>(&data, lane);
    let lc_v256 = bench_lane_counts::<V256>(&data, lane);

    // --- 2. Masked popcount over random sub-ranges ----------------------
    let plane_words = 1 << 10;
    let mut plane = vec![0u64; plane_words];
    fill_words(&mut plane, &mut rng);
    let ranges: Vec<(usize, usize)> = (0..1024)
        .map(|_| {
            let start = (rng.next_u64() as usize) % (plane_words * 64 - 1);
            let len = 1 + (rng.next_u64() as usize) % (plane_words * 64 - start - 1);
            (start, len)
        })
        .collect();
    let masked_popcount = ops_per_second(ranges.len(), || {
        let mut acc = 0usize;
        for &(start, len) in &ranges {
            acc += count_ones_range(&plane, start, len);
        }
        std::hint::black_box(acc);
    });

    // --- 3. Fused XNOR+vote GEMM tile kernel, u64 vs V256 ---------------
    // Conv-shaped workload: 288-bit receptive fields (32-channel 3x3),
    // 16 output channels on 32-row crossbars, 256 output pixels.
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 16,
        ..Default::default()
    };
    let (fan_in, out, pixels) = (288usize, 16usize, 256usize);
    let signs: Vec<f32> = (0..fan_in * out)
        .map(|i| if (i * 7 + 3) % 5 < 2 { 1.0 } else { -1.0 })
        .collect();
    let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.21 - 1.3).collect();
    let tiled = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &hw);
    let matrix = PackedTiledMatrix::from_tiled(&tiled);
    let mut acts = PackedMatrix::zeros(pixels, fan_in);
    for p in 0..pixels {
        for i in 0..fan_in {
            if (p * 31 + i * 13) % 3 == 0 {
                acts.set(p, i, true);
            }
        }
    }
    // Width-differential check before timing: the tentpole hard
    // constraint, scalar word ≡ wide word bit-for-bit.
    assert_eq!(
        matrix.forward_matrix_as::<u64>(&acts).storage(),
        matrix.forward_matrix_as::<V256>(&acts).storage(),
        "u64/V256 GEMM kernels diverged"
    );
    // Channel-evaluations per second (pixels × output channels).
    let gemm_ops = pixels * out;
    let gemm_u64 = ops_per_second(gemm_ops, || {
        std::hint::black_box(matrix.forward_matrix_as::<u64>(&acts));
    });
    let gemm_v256 = ops_per_second(gemm_ops, || {
        std::hint::black_box(matrix.forward_matrix_as::<V256>(&acts));
    });

    // --- 4. Bernoulli window sampling: per-cell vs plane-at-a-time ------
    // A stochastic-engine-shaped batch: 1024 cells, 32-cycle windows,
    // mixed saturated/live thresholds like a real gray-zone table.
    let window = 32usize;
    let cells = 1024usize;
    let thresholds: Vec<u64> = (0..cells)
        .map(|i| match i % 5 {
            0 => bernoulli_threshold(0.0),
            1 => bernoulli_threshold(1.0),
            _ => bernoulli_threshold(0.05 + 0.9 * (i % 17) as f64 / 17.0),
        })
        .collect();
    let offsets: Vec<usize> = (0..cells).collect(); // one word per window
    let mut per_call = vec![0u64; cells];
    let mut batched = vec![0u64; cells];
    // Draw-for-draw equivalence check between the two loop structures.
    let mut rng_a = DeviceRng::seed_from_u64(7);
    let mut rng_b = DeviceRng::seed_from_u64(7);
    for (i, &thr) in thresholds.iter().enumerate() {
        sample_bernoulli_words(thr, window, &mut per_call[i..i + 1], &mut rng_a);
    }
    sample_bernoulli_planes(&thresholds, &offsets, window, &mut batched, &mut rng_b);
    assert_eq!(per_call, batched, "per-call/batched draw divergence");
    assert_eq!(
        rng_a.next_u64(),
        rng_b.next_u64(),
        "per-call/batched RNG consumption divergence"
    );
    let bern_bits = cells * window;
    let mut rng_c = DeviceRng::seed_from_u64(11);
    let bern_per_call = ops_per_second(bern_bits, || {
        for (i, &thr) in thresholds.iter().enumerate() {
            sample_bernoulli_words(thr, window, &mut per_call[i..i + 1], &mut rng_c);
        }
        std::hint::black_box(&per_call);
    });
    let mut rng_d = DeviceRng::seed_from_u64(11);
    let bern_batched = ops_per_second(bern_bits, || {
        sample_bernoulli_planes(&thresholds, &offsets, window, &mut batched, &mut rng_d);
        std::hint::black_box(&batched);
    });

    // --- 5. Raw word generation: serial xoshiro chain vs counter stream -
    // The xoshiro loop is one long dependency chain (draw t+1 needs the
    // state after draw t); the counter loop has no loop-carried state, so
    // independent draws pipeline/vectorize freely.
    let gen_words = 1 << 14;
    let mut gen_buf = vec![0u64; gen_words];
    let mut rng_e = DeviceRng::seed_from_u64(23);
    let xoshiro_words = ops_per_second(gen_words, || {
        for w in gen_buf.iter_mut() {
            *w = rng_e.next_u64();
        }
        std::hint::black_box(&gen_buf);
    });
    let stream = CounterStream::from_seed(23);
    let ctr_words = ops_per_second(gen_words, || {
        for (i, w) in gen_buf.iter_mut().enumerate() {
            *w = stream.draw(i as u64);
        }
        std::hint::black_box(&gen_buf);
    });
    // And the counter-mode Bernoulli batch on the same threshold mix as
    // kernel 4, so the serial vs counter window-fill rates are directly
    // comparable.
    let mut batched_ctr = vec![0u64; cells];
    let bern_ctr = ops_per_second(bern_bits, || {
        stream.sample_bernoulli_planes(&thresholds, &offsets, window, &mut batched_ctr);
        std::hint::black_box(&batched_ctr);
    });

    println!("kernel_microbench: wide-word SIMD datapath hot kernels");
    println!(
        "lane_counts (lane {lane})    : {:>8.1} Mwords/s (u64)  {:>8.1} Mwords/s (v256, {:.2}x)",
        lc_u64 / 1e6,
        lc_v256 / 1e6,
        lc_v256 / lc_u64
    );
    println!(
        "masked popcount         : {:>8.1} Mranges/s",
        masked_popcount / 1e6
    );
    println!(
        "xnor+vote GEMM tile     : {:>8.2} Mchan-evals/s (u64)  {:>8.2} Mchan-evals/s (v256, {:.2}x)",
        gemm_u64 / 1e6,
        gemm_v256 / 1e6,
        gemm_v256 / gemm_u64
    );
    println!(
        "bernoulli windows (L={window}) : {:>8.1} Mbits/s (per-cell)  {:>8.1} Mbits/s (batched, {:.2}x)",
        bern_per_call / 1e6,
        bern_batched / 1e6,
        bern_batched / bern_per_call
    );
    println!(
        "word generation         : {:>8.1} Mwords/s (xoshiro chain)  {:>8.1} Mwords/s (counter, {:.2}x)",
        xoshiro_words / 1e6,
        ctr_words / 1e6,
        ctr_words / xoshiro_words
    );
    println!(
        "bernoulli counter (L={window}): {:>8.1} Mbits/s ({:.2}x over serial batched)",
        bern_ctr / 1e6,
        bern_ctr / bern_batched
    );

    // Kernel timings are all single-threaded; the shared header records
    // the machine separately from the measurement parallelism.
    let json = format!(
        "{{\n  {},\n  \
         \"lane_counts_u64_words_per_s\": {lc_u64:.0},\n  \
         \"lane_counts_v256_words_per_s\": {lc_v256:.0},\n  \
         \"masked_popcount_ranges_per_s\": {masked_popcount:.0},\n  \
         \"gemm_tile_u64_chan_evals_per_s\": {gemm_u64:.0},\n  \
         \"gemm_tile_v256_chan_evals_per_s\": {gemm_v256:.0},\n  \
         \"gemm_widths_bit_identical\": true,\n  \
         \"bernoulli_per_call_bits_per_s\": {bern_per_call:.0},\n  \
         \"bernoulli_batched_bits_per_s\": {bern_batched:.0},\n  \
         \"bernoulli_draw_identical\": true,\n  \
         \"xoshiro_chain_words_per_s\": {xoshiro_words:.0},\n  \
         \"counter_stream_words_per_s\": {ctr_words:.0},\n  \
         \"bernoulli_counter_bits_per_s\": {bern_ctr:.0}\n}}\n",
        superbnn_bench::baseline_header("kernel_microbench", &[("measured_workers", 1)]),
    );
    superbnn_bench::write_baseline("KERNEL_BENCH_OUT", "BENCH_kernels.json", &json);
}
