//! Monte Carlo robustness campaigns at benchmark scale: ≥100 fault-draw
//! trials per campaign on the packed deploy engine, aggregated into
//! per-fault-rate accuracy quantiles.
//!
//! Run with `cargo bench -p superbnn-bench --bench robustness_sweep`.
//! Each workload is trained, deployed, and lowered **once** (reported as
//! `train_seconds`); the timed figures are then pure sweep throughput for
//! three campaign disciplines over the same packed model:
//!
//! * `digital` — the gray-zone → 0 fault-only campaign (no SC noise);
//! * `seed_matched` — the stochastic engine at a widened gray-zone,
//!   drawing SC noise from the serial seed-matched oracle chain;
//! * `counter` — the same stochastic campaign on keyed counter streams
//!   (order-free draws, no serial RNG floor).
//!
//! Trials run clone-free: each worker patches faults into its one model
//! through the undo journal and reverts them after evaluation. Besides
//! printing the distributions it writes the machine-readable baseline to
//! `BENCH_robustness.json` at the workspace root (override with the
//! `ROBUSTNESS_BENCH_OUT` env var). Faulted packed inference is
//! bit-identical to the faulted scalar reference (enforced by
//! `tests/props.rs` and `tests/packed_faults.rs`), so these numbers are
//! what the slow engine would report.

use std::fmt::Write as _;
use std::time::Instant;
use superbnn::deploy::RngMode;
use superbnn::experiments::{robustness_workload, ExperimentScale, RobustnessWorkload};
use superbnn::robustness::{run_sweep, RobustnessReport, SweepConfig};

const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];
const TRIALS_PER_POINT: usize = 24; // 5 × 24 = 120 trials per campaign
/// The stochastic campaigns widen the 0.4 µA operating gray-zone by this
/// factor so a large share of comparator read-outs draw genuine SC noise —
/// the regime where the RNG discipline dominates the sweep cost. 10× is
/// the strongest widening that still leaves the sweep scientifically
/// readable on these 32×32-crossbar workloads: accuracy degrades visibly
/// from the digital campaign yet stays well above chance, so the fault
/// grid still resolves. Much wider scales (≥ 40×) push *every* cell into
/// the gray zone and the accuracy column collapses to chance — a pure RNG
/// stress test with no robustness signal (and the sweep cost is flat in
/// the scale anyway, since saturated and live cells are both branchless).
const GRAYZONE_SCALE: f64 = 10.0;

fn grid_json(report: &RobustnessReport) -> String {
    let mut s = String::new();
    for (i, p) in report.points.iter().enumerate() {
        let sep = if i + 1 < report.points.len() { "," } else { "" };
        let _ = write!(
            s,
            "\n          {{\"stuck_cell_rate\": {}, \"dead_column_rate\": {}, \
             \"mean_defects\": {:.1}, \"accuracy\": {{\"mean\": {:.4}, \"min\": {:.4}, \
             \"p10\": {:.4}, \"p50\": {:.4}, \"p90\": {:.4}, \"max\": {:.4}}}}}{sep}",
            p.fault_model.stuck_cell_rate(),
            p.fault_model.dead_column_rate(),
            p.mean_defects,
            p.mean_accuracy,
            p.min_accuracy,
            p.p10_accuracy,
            p.p50_accuracy,
            p.p90_accuracy,
            p.max_accuracy,
        );
    }
    s
}

fn main() {
    let scale = ExperimentScale {
        samples_per_class: 60,
        epochs: 12,
        eval_samples: 48,
        width: 8,
        mlp_hidden: [64, 32],
        seed: 7,
    };
    let base = SweepConfig::stuck_cell_grid(&RATES, TRIALS_PER_POINT, scale.seed)
        .expect("rates are probabilities")
        .with_eval_samples(Some(scale.eval_samples));
    println!(
        "robustness_sweep: {} rates x {TRIALS_PER_POINT} trials, {} eval samples/trial, \
         {} workers",
        RATES.len(),
        scale.eval_samples,
        base.workers
    );

    // The three campaign disciplines measured per workload: the digital
    // fault-only limit, then the stochastic engine under both RNG modes.
    let campaigns: [(&str, SweepConfig); 3] = [
        ("digital", base.clone()),
        (
            "seed_matched",
            base.clone()
                .with_grayzone_scales(&[GRAYZONE_SCALE])
                .expect("scale is valid"),
        ),
        (
            "counter",
            base.clone()
                .with_grayzone_scales(&[GRAYZONE_SCALE])
                .expect("scale is valid")
                .with_rng_mode(RngMode::Counter),
        ),
    ];

    let specs = [
        (RobustnessWorkload::DigitsMlp, "mlp_digits_256-64-32-10"),
        (RobustnessWorkload::ObjectsVgg, "vgg_small_objects_w8"),
    ];
    let mut workloads = String::new();
    for (wi, (workload, tag)) in specs.into_iter().enumerate() {
        println!("\n=== {} ===", workload.label());
        // One-time setup, untimed in the sweep figures: train + deploy +
        // lower + interleave the eval set.
        let start = Instant::now();
        let (packed, eval) = robustness_workload(&scale, workload, Some(scale.eval_samples));
        let train_seconds = start.elapsed().as_secs_f64();
        println!("setup (train + deploy + lower): {train_seconds:.1}s");

        let mut campaign_rows = String::new();
        let mut counter_tps = 0.0f64;
        let mut seed_matched_tps = 0.0f64;
        for (ci, (mode, cfg)) in campaigns.iter().enumerate() {
            let start = Instant::now();
            let report = run_sweep(&packed, &eval, cfg);
            let secs = start.elapsed().as_secs_f64();
            let total = report.total_trials();
            assert!(total >= 100, "campaign must run at least 100 trials");
            let trials_per_s = total as f64 / secs;
            match *mode {
                "counter" => counter_tps = trials_per_s,
                "seed_matched" => seed_matched_tps = trials_per_s,
                _ => {}
            }
            println!("--- rng_mode {mode} ---");
            for p in &report.points {
                println!(
                    "rate {:>5.3}: defects {:>7.1}  acc mean {:.3}  [min {:.3} | p10 {:.3} | \
                     p50 {:.3} | p90 {:.3} | max {:.3}]",
                    p.fault_model.stuck_cell_rate(),
                    p.mean_defects,
                    p.mean_accuracy,
                    p.min_accuracy,
                    p.p10_accuracy,
                    p.p50_accuracy,
                    p.p90_accuracy,
                    p.max_accuracy,
                );
            }
            println!("{total} trials in {secs:.1}s ({trials_per_s:.1} trials/s, sweep only)");
            let scale_field = if cfg.variations.is_empty() {
                String::new()
            } else {
                format!("\n        \"grayzone_scale\": {GRAYZONE_SCALE},")
            };
            let sep = if ci + 1 < campaigns.len() { "," } else { "" };
            let _ = write!(
                campaign_rows,
                "\n      {{\n        \"rng_mode\": \"{mode}\",{scale_field}\n        \
                 \"total_trials\": {total},\n        \"wall_seconds\": {secs:.1},\n        \
                 \"trials_per_second\": {trials_per_s:.1},\n        \
                 \"grid\": [{}\n        ]\n      }}{sep}",
                grid_json(&report),
            );
        }
        println!(
            "counter vs seed-matched: {:.2}x trials/s",
            counter_tps / seed_matched_tps
        );
        let sep = if wi + 1 < specs.len() { "," } else { "" };
        let _ = write!(
            workloads,
            "\n    {{\n      \"model\": \"{tag}\",\n      \"crossbar\": \"32x32\",\n      \
             \"trials_per_point\": {TRIALS_PER_POINT},\n      \
             \"eval_samples\": {},\n      \"train_seconds\": {train_seconds:.1},\n      \
             \"campaigns\": [{campaign_rows}\n      ]\n    }}{sep}",
            scale.eval_samples,
        );
    }

    // Trials fan across `measured_workers` threads (each trial evaluates
    // single-threaded).
    let json = format!(
        "{{\n  {},\n  \"campaign_seed\": {},\n  \
         \"bit_identical_to_scalar\": true,\n  \"workloads\": [{workloads}\n  ]\n}}\n",
        superbnn_bench::baseline_header("robustness_sweep", &[("measured_workers", base.workers)]),
        scale.seed,
    );
    superbnn_bench::write_baseline("ROBUSTNESS_BENCH_OUT", "BENCH_robustness.json", &json);
}
