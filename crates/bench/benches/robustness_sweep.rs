//! Monte Carlo robustness campaigns at benchmark scale: ≥100 fault-draw
//! trials per workload on the packed deploy engine, aggregated into
//! per-fault-rate accuracy quantiles.
//!
//! Run with `cargo bench -p superbnn-bench --bench robustness_sweep`.
//! Besides printing the distributions it writes the machine-readable
//! baseline to `BENCH_robustness.json` at the workspace root (override
//! with the `ROBUSTNESS_BENCH_OUT` env var). Faulted packed inference is
//! bit-identical to the faulted scalar reference (enforced by
//! `tests/props.rs` and `tests/packed_faults.rs`), so these numbers are
//! what the slow engine would report, measured ~10× faster.

use std::fmt::Write as _;
use std::time::Instant;
use superbnn::experiments::{robustness_campaign, ExperimentScale, RobustnessWorkload};
use superbnn::robustness::{RobustnessReport, SweepConfig};

const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];
const TRIALS_PER_POINT: usize = 24; // 5 × 24 = 120 trials per workload

fn grid_json(report: &RobustnessReport) -> String {
    let mut s = String::new();
    for (i, p) in report.points.iter().enumerate() {
        let sep = if i + 1 < report.points.len() { "," } else { "" };
        let _ = write!(
            s,
            "\n        {{\"stuck_cell_rate\": {}, \"dead_column_rate\": {}, \
             \"mean_defects\": {:.1}, \"accuracy\": {{\"mean\": {:.4}, \"min\": {:.4}, \
             \"p10\": {:.4}, \"p50\": {:.4}, \"p90\": {:.4}, \"max\": {:.4}}}}}{sep}",
            p.fault_model.stuck_cell_rate(),
            p.fault_model.dead_column_rate(),
            p.mean_defects,
            p.mean_accuracy,
            p.min_accuracy,
            p.p10_accuracy,
            p.p50_accuracy,
            p.p90_accuracy,
            p.max_accuracy,
        );
    }
    s
}

fn main() {
    let scale = ExperimentScale {
        samples_per_class: 60,
        epochs: 12,
        eval_samples: 48,
        width: 8,
        mlp_hidden: [64, 32],
        seed: 7,
    };
    let cfg = SweepConfig::stuck_cell_grid(&RATES, TRIALS_PER_POINT, scale.seed)
        .expect("rates are probabilities")
        .with_eval_samples(Some(scale.eval_samples));
    println!(
        "robustness_sweep: {} rates x {TRIALS_PER_POINT} trials, {} eval samples/trial, \
         {} workers",
        RATES.len(),
        scale.eval_samples,
        cfg.workers
    );

    let specs = [
        (RobustnessWorkload::DigitsMlp, "mlp_digits_256-64-32-10"),
        (RobustnessWorkload::ObjectsVgg, "vgg_small_objects_w8"),
    ];
    let mut workloads = String::new();
    for (wi, (workload, tag)) in specs.into_iter().enumerate() {
        println!("\n=== {} ===", workload.label());
        let start = Instant::now();
        let report = robustness_campaign(&scale, workload, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let total = report.total_trials();
        assert!(total >= 100, "campaign must run at least 100 trials");
        for p in &report.points {
            println!(
                "rate {:>5.3}: defects {:>7.1}  acc mean {:.3}  [min {:.3} | p10 {:.3} | \
                 p50 {:.3} | p90 {:.3} | max {:.3}]",
                p.fault_model.stuck_cell_rate(),
                p.mean_defects,
                p.mean_accuracy,
                p.min_accuracy,
                p.p10_accuracy,
                p.p50_accuracy,
                p.p90_accuracy,
                p.max_accuracy,
            );
        }
        let trials_per_s = total as f64 / secs;
        println!("{total} trials in {secs:.1}s ({trials_per_s:.1} trials/s incl. training)");
        let sep = if wi + 1 < specs.len() { "," } else { "" };
        let _ = write!(
            workloads,
            "\n    {{\n      \"model\": \"{tag}\",\n      \"crossbar\": \"32x32\",\n      \
             \"trials_per_point\": {TRIALS_PER_POINT},\n      \"total_trials\": {total},\n      \
             \"eval_samples\": {},\n      \"wall_seconds\": {secs:.1},\n      \
             \"trials_per_second\": {trials_per_s:.1},\n      \"grid\": [{}\n      ]\n    }}{sep}",
            report.eval_samples,
            grid_json(&report),
        );
    }

    // Trials fan across `measured_workers` threads (each trial evaluates
    // single-threaded); `machine_cpus` records the machine so the two are
    // never conflated.
    let machine_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"robustness_sweep\",\n  \"campaign_seed\": {},\n  \
         \"machine_cpus\": {machine_cpus},\n  \"measured_workers\": {},\n  \
         \"bit_identical_to_scalar\": true,\n  \"workloads\": [{workloads}\n  ]\n}}\n",
        scale.seed, cfg.workers
    );
    let out = std::env::var("ROBUSTNESS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_robustness.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write bench baseline");
    println!("\nbaseline written to {out}");
}
