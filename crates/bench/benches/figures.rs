//! Criterion benches, one group per paper artifact, timing the kernel that
//! regenerates it. The accuracy-bearing numbers live in `tablegen`; these
//! benches track the *cost* of each reproduction kernel and of the hot
//! datapaths (crossbar evaluation, APC, conv forward, deployed inference).

use aqfp_crossbar::array::{Crossbar, CrossbarConfig};
use aqfp_crossbar::attenuation::AttenuationModel;
use aqfp_crossbar::cost::table1;
use aqfp_device::{AqfpBuffer, Bit, BufferConfig, CellLibrary, DeviceRng, SeedableRng};
use aqfp_netlist::clocking::clocking_study;
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use aqfp_sc::analysis::{average_mismatch_error, sc_decision_noise};
use aqfp_sc::{AccumulationModule, Apc, Bitstream};
use baselines::cryo::fig12_series;
use baselines::software::PopcountLinear;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// Fig. 4 kernel: the gray-zone law and Monte-Carlo sampling.
fn bench_fig4_buffer(c: &mut Criterion) {
    let buffer = AqfpBuffer::new(BufferConfig::default());
    let mut g = c.benchmark_group("fig4_buffer");
    g.bench_function("probability_one", |b| {
        b.iter(|| black_box(buffer.probability_one(black_box(1.3))))
    });
    g.bench_function("observe_32", |b| {
        let mut rng = DeviceRng::seed_from_u64(0);
        b.iter(|| black_box(buffer.observe(black_box(1.3), 32, &mut rng)))
    });
    g.finish();
}

/// Fig. 5 kernel: attenuation curve + power-law refit.
fn bench_fig5_attenuation(c: &mut Criterion) {
    let model = AttenuationModel::paper_fit();
    let sizes: Vec<usize> = (1..=144).collect();
    c.benchmark_group("fig5_attenuation")
        .bench_function("curve_and_refit", |b| {
            b.iter(|| {
                let curve = model.curve(black_box(&sizes));
                black_box(AttenuationModel::fit(&curve))
            })
        });
}

/// Table 1 kernel: the closed-form cost model.
fn bench_table1_cost(c: &mut Criterion) {
    c.benchmark_group("table1_cost")
        .bench_function("all_rows", |b| b.iter(|| black_box(table1())));
}

/// Section 4.4 kernel: fan-out legalization + balancing at 3 phase counts.
fn bench_clocking_study(c: &mut Criterion) {
    let cfg = RandomDagConfig {
        inputs: 32,
        gates: 400,
        ..Default::default()
    };
    let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
    let lib = CellLibrary::hstp();
    c.benchmark_group("section44_clocking")
        .sample_size(20)
        .bench_function("study_400_gates", |b| {
            b.iter(|| black_box(clocking_study(black_box(&base), &[4, 8, 16], &lib)))
        });
}

/// Fig. 10/11 hot kernel: one crossbar column observation + SC accumulation.
fn bench_crossbar_sc_datapath(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_crossbar_sc");
    for &rows in &[8usize, 16, 72] {
        let weights = vec![vec![Bit::One; 16]; rows];
        let xbar = Crossbar::new(CrossbarConfig::default(), weights).unwrap();
        let input: Vec<Bit> = (0..rows).map(|i| Bit::from_bool(i % 3 != 0)).collect();
        g.bench_function(format!("observe_{rows}x16_L16"), |b| {
            let mut rng = DeviceRng::seed_from_u64(1);
            b.iter(|| black_box(xbar.observe(black_box(&input), 16, &mut rng)))
        });
    }
    let acc = AccumulationModule::new(8, 16);
    g.bench_function("accumulate_8x16", |b| {
        let mut rng = DeviceRng::seed_from_u64(2);
        b.iter_batched(
            || {
                (0..8)
                    .map(|_| Bitstream::generate_unipolar(0.6, 16, &mut rng))
                    .collect::<Vec<_>>()
            },
            |streams| black_box(acc.binarize(&streams)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// APC: functional vs gate-level popcount.
fn bench_apc(c: &mut Criterion) {
    let apc = Apc::new(16);
    let word: Vec<Bit> = (0..16).map(|i| Bit::from_bool(i % 2 == 0)).collect();
    let mut g = c.benchmark_group("apc");
    g.bench_function("functional_16", |b| b.iter(|| black_box(apc.count(&word))));
    let nl = apc.netlist();
    let bools: Vec<bool> = word.iter().map(|b| b.as_bool()).collect();
    g.bench_function("gate_level_16", |b| b.iter(|| black_box(nl.eval(&bools))));
    g.finish();
}

/// Section 5.4 kernel: the co-optimization objective.
fn bench_fig11_objective(c: &mut Criterion) {
    let law = aqfp_device::GrayZone::new(0.0, 3.0);
    let mut g = c.benchmark_group("fig11_objective");
    g.bench_function("ame", |b| {
        b.iter(|| black_box(average_mismatch_error(&law, 16, 0.0, 1.0)))
    });
    g.bench_function("sc_noise", |b| {
        b.iter(|| black_box(sc_decision_noise(&law, 16, 0.0, 1.0, 16)))
    });
    g.finish();
}

/// Fig. 12 kernel: the frequency series.
fn bench_fig12_series(c: &mut Criterion) {
    c.benchmark_group("fig12_series")
        .bench_function("seven_points", |b| {
            b.iter(|| {
                black_box(fig12_series(
                    &[0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0],
                    1.9e5,
                    617.0,
                ))
            })
        });
}

/// Table 2/3 hot kernels: software conv forward and deployed inference.
fn bench_inference(c: &mut Criterion) {
    use superbnn::config::HardwareConfig;
    use superbnn::deploy::deploy;
    use superbnn::spec::NetSpec;

    let mut g = c.benchmark_group("table2_inference");
    g.sample_size(10);

    let hw = HardwareConfig::default();
    let spec = NetSpec::vgg_small([3, 16, 16], 4, 10);
    let mut model = spec.build_software(&hw, 3);
    let images = bnn_nn::Tensor::zeros(&[1, 3, 16, 16]);
    let mut rng = bnn_nn::NnRng::seed_from_u64(0);
    g.bench_function("software_forward_vgg_w4", |b| {
        b.iter(|| {
            black_box(model.forward(black_box(&images), bnn_nn::layers::Mode::Eval, &mut rng))
        })
    });

    let deployed = deploy(&spec, &model, &hw).unwrap();
    let mut drng = DeviceRng::seed_from_u64(1);
    g.bench_function("deployed_classify_vgg_w4", |b| {
        b.iter(|| black_box(deployed.classify(black_box(&images), 0, &mut drng)))
    });
    g.finish();

    // Table 3's digital head: XNOR/popcount linear.
    let weights: Vec<f32> = (0..10 * 256)
        .map(|i| if (i * 31) % 7 < 3 { 1.0 } else { -1.0 })
        .collect();
    let layer = PopcountLinear::new(&weights, 256);
    let input: Vec<f32> = (0..256)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    c.benchmark_group("table3_popcount")
        .bench_function("linear_256_to_10", |b| {
            b.iter(|| black_box(layer.forward(black_box(&input))))
        });
}

/// Pure-SC baseline kernels: packed-stream ops and one SC classification.
fn bench_sc_baseline(c: &mut Criterion) {
    use aqfp_sc::packed::PackedStream;
    use baselines::sc_dnn::{DenseWeights, FloatMlp, PreparedScMlp, ScAccumulator};
    use rand::rngs::StdRng;
    use rand::Rng;

    let mut g = c.benchmark_group("scaqfp_baseline");
    let mut rng = StdRng::seed_from_u64(3);
    let a = PackedStream::generate_bipolar(0.3, 2048, &mut rng);
    let b = PackedStream::generate_bipolar(-0.4, 2048, &mut rng);
    g.bench_function("packed_xnor_ones_2048", |bch| {
        bch.iter(|| black_box(a.xnor_ones(black_box(&b))))
    });

    // A small trained-shape MLP (random weights suffice for timing).
    let layer0: Vec<f32> = (0..64 * 32).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let layer1: Vec<f32> = (0..32 * 10).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let mlp = FloatMlp::new(vec![
        DenseWeights::new(layer0, vec![0.0; 32], 64, 32),
        DenseWeights::new(layer1, vec![0.0; 10], 32, 10),
    ]);
    let prepared = PreparedScMlp::new(&mlp, 256, 5);
    let input: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
    g.sample_size(20);
    g.bench_function("classify_apc_64_32_10_L256", |bch| {
        let mut r = StdRng::seed_from_u64(9);
        bch.iter(|| black_box(prepared.classify(black_box(&input), ScAccumulator::Apc, &mut r)))
    });
    g.bench_function("classify_mux_64_32_10_L256", |bch| {
        let mut r = StdRng::seed_from_u64(9);
        bch.iter(|| black_box(prepared.classify(black_box(&input), ScAccumulator::MuxTree, &mut r)))
    });
    g.finish();
}

/// Synthesis-pass kernel: optimizing the AOI adder benchmark.
fn bench_synth(c: &mut Criterion) {
    use aqfp_netlist::builders::ripple_adder_aoi;
    use aqfp_netlist::synth::optimize;
    let (nl, _, _, _) = ripple_adder_aoi(16);
    let lib = CellLibrary::hstp();
    c.benchmark_group("section7_synth")
        .bench_function("optimize_aoi_adder_16b", |b| {
            b.iter(|| black_box(optimize(black_box(&nl), &lib)))
        });
}

criterion_group!(
    benches,
    bench_fig4_buffer,
    bench_fig5_attenuation,
    bench_table1_cost,
    bench_clocking_study,
    bench_crossbar_sc_datapath,
    bench_apc,
    bench_fig11_objective,
    bench_fig12_series,
    bench_inference,
    bench_sc_baseline,
    bench_synth,
);
criterion_main!(benches);
