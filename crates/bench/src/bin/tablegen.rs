//! Regenerates every table and figure of the SupeRBNN paper as text.
//!
//! ```text
//! tablegen [fig4|fig5|table1|clocking|fig10|fig11|fig12|table2|table3|ablation|faults|temperature|scaqfp|apc|synth|breakdown|all] [--quick]
//! ```
//!
//! `--quick` runs the training-based experiments at smoke-test scale.

use aqfp_crossbar::attenuation::AttenuationModel;
use aqfp_crossbar::cost::{table1, TABLE1_PAPER};
use aqfp_device::{AqfpBuffer, BufferConfig, CellLibrary, DeviceRng, SeedableRng};
use aqfp_netlist::clocking::{clocking_study, BcmMemory};
use aqfp_netlist::random::{random_dag, RandomDagConfig};
use baselines::cryo::fig12_series;
use baselines::published::{cifar10_baselines, mnist_baselines};
use superbnn::experiments::{
    ablation_aware_training, bitstream_sweep, fault_sweep, grid_sweep, scaqfp_sweep, table2_ours,
    table2_resnet, table3_ours, temperature_sweep, ExperimentScale, TABLE2_CONFIGS,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };

    let all = which == "all";
    if all || which == "fig4" {
        fig4();
    }
    if all || which == "fig5" {
        fig5();
    }
    if all || which == "table1" {
        table1_gen();
    }
    if all || which == "clocking" {
        clocking();
    }
    if all || which == "fig12" {
        fig12();
    }
    if all || which == "fig10" {
        fig10(&scale);
    }
    if all || which == "fig11" {
        fig11(&scale);
    }
    if all || which == "table2" {
        table2(&scale);
    }
    if all || which == "table3" {
        table3(&scale);
    }
    if all || which == "ablation" {
        ablation(&scale);
    }
    if all || which == "faults" {
        faults(&scale);
    }
    if all || which == "temperature" {
        temperature(&scale);
    }
    if all || which == "scaqfp" {
        scaqfp(&scale);
    }
    if all || which == "apc" {
        apc_comparison(&scale);
    }
    if all || which == "synth" {
        synth();
    }
    if all || which == "breakdown" {
        breakdown();
    }
}

/// Per-layer energy decomposition of the VGG-Small deployment — where the
/// Table 2 attojoules actually go.
fn breakdown() {
    use superbnn::energy::estimate_with_breakdown;
    println!("\n=== Energy breakdown: VGG-Small at the default operating point ===");
    let spec = superbnn::spec::NetSpec::vgg_small([3, 16, 16], 8, 10);
    let hw = superbnn::config::HardwareConfig::default();
    let (report, layers) = estimate_with_breakdown(&spec, &hw);
    println!(
        "{:>26} {:>14} {:>14} {:>12} {:>10}",
        "layer", "crossbar (aJ)", "accum. (aJ)", "other (aJ)", "cycles"
    );
    for le in &layers {
        println!(
            "{:>26} {:>14.1} {:>14.1} {:>12.1} {:>10}",
            le.label, le.crossbar_aj, le.accumulation_aj, le.other_aj, le.cycles
        );
    }
    let xbar: f64 = layers.iter().map(|l| l.crossbar_aj).sum();
    let acc: f64 = layers.iter().map(|l| l.accumulation_aj).sum();
    println!(
        "total {:.1} aJ/inference ({:.0}% crossbars, {:.0}% SC accumulation), {:.2e} TOPS/W",
        report.energy_per_inference_aj,
        100.0 * xbar / report.energy_per_inference_aj,
        100.0 * acc / report.energy_per_inference_aj,
        report.tops_per_watt
    );
}

/// Section 7's EDA discussion: majority-logic synthesis and algebraic
/// optimization on concrete netlists.
fn synth() {
    use aqfp_netlist::builders::ripple_adder_aoi;
    use aqfp_netlist::synth::optimize;
    println!("\n=== Section 7: majority-logic synthesis passes ===");
    println!(
        "{:>26} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "netlist", "gates in", "gates out", "JJ in", "JJ out", "saved"
    );
    let lib = CellLibrary::hstp();
    let show = |name: &str, nl: &aqfp_netlist::Netlist| {
        let (_, r) = optimize(nl, &lib);
        println!(
            "{:>26} {:>10} {:>10} {:>10} {:>10} {:>7.1}%",
            name,
            r.gates_before,
            r.gates_after,
            r.jj_before,
            r.jj_after,
            100.0 * r.jj_saving()
        );
    };
    for width in [8usize, 16, 32] {
        let (nl, _, _, _) = ripple_adder_aoi(width);
        show(&format!("AOI ripple adder {width}b"), &nl);
    }
    show("popcount 32", &aqfp_netlist::builders::popcount(32).0);
    let cfg = RandomDagConfig {
        inputs: 32,
        gates: 1000,
        ..Default::default()
    };
    let dag = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(5));
    show("random DAG 1000 gates", &dag);
    println!("(the AOI adders show the headline rewrite of majority synthesis:");
    println!(" OR(AND(a,b), AND(c, OR(a,b))) → one native MAJ cell per carry)");
}

/// Section 4.3's accumulator choice: APC vs the conventional accumulative
/// parallel counter, costed gate-for-gate, plus the exact-vs-approximate
/// deployment ablation.
fn apc_comparison(scale: &ExperimentScale) {
    use aqfp_device::ClockScheme;
    use aqfp_sc::apc::counter_comparison;
    println!("\n=== Section 4.3: APC vs conventional accumulative counter (JJ) ===");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "inputs", "APC", "approx APC", "accum. logic", "accum. mem"
    );
    let lib = CellLibrary::hstp();
    let clock = ClockScheme::four_phase_5ghz();
    for n in [4usize, 8, 16, 32] {
        let c = counter_comparison(n, 32, &lib, &clock);
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>12}",
            n, c.exact_apc_jj, c.approx_apc_jj, c.accumulative_logic_jj, c.accumulative_memory_jj
        );
    }
    println!("(paper: \"the APC consumes fewer logic gates compared with the");
    println!(" conventional accumulative parallel counter\" — reproduced; the");
    println!(" approximate-adder variant of Kim et al. [41] saves further JJs)");

    let r = superbnn::experiments::ablation_approx_counter(scale);
    println!("deployment ablation (MLP, 8x8 tiles, L=16): exact vs approximate APC:");
    println!(
        "  accuracy {:.1}% -> {:.1}%, efficiency {:.2e} -> {:.2e} TOPS/W",
        100.0 * r.exact_accuracy,
        100.0 * r.approx_accuracy,
        r.exact_energy.tops_per_watt,
        r.approx_energy.tops_per_watt
    );
    println!("(negative result: the approximate counter's error is unbiased only");
    println!(" for balanced streams; saturated inter-crossbar columns bias it,");
    println!(" so the modest JJ saving costs accuracy — the exact APC stays the");
    println!(" default, matching the architecture the paper deploys)");
}

/// Baseline rebuild: the pure-SC datapath's stream-length requirement
/// (paper Section 2.3's SC-AQFP contrast).
fn scaqfp(scale: &ExperimentScale) {
    println!("\n=== Baseline: pure stochastic computing (SC-AQFP datapath) ===");
    let lengths = [16usize, 32, 64, 128, 256, 512, 1024, 2048];
    let sweep = scaqfp_sweep(scale, &lengths);
    println!(
        "float MLP reference accuracy: {:.1}%",
        100.0 * sweep.float_accuracy
    );
    println!("{:>8} {:>12} {:>12}", "L", "APC path", "MUX path");
    for p in &sweep.points {
        println!(
            "{:>8} {:>11.1}% {:>11.1}%",
            p.stream_len,
            100.0 * p.apc_accuracy,
            100.0 * p.mux_accuracy
        );
    }
    println!("(paper Section 2.3: SC-AQFP needs L = 256∼2048 while SupeRBNN's");
    println!(" SC-as-accumulator design saturates at L = 16∼32 — compare fig10)");
}

/// Fig. 4: output probability of '1' vs input current.
fn fig4() {
    println!("\n=== Figure 4: AQFP buffer switching probability ===");
    println!(
        "{:>12} {:>12} {:>14}",
        "Iin (µA)", "P(1) model", "P(1) sampled"
    );
    let buffer = AqfpBuffer::new(BufferConfig::default());
    let mut rng = DeviceRng::seed_from_u64(4);
    let mut i = -4.0f64;
    while i <= 4.0 + 1e-9 {
        let p = buffer.probability_one(i);
        let n = 20_000;
        let ones = buffer
            .observe(i, n, &mut rng)
            .iter()
            .filter(|b| b.as_bool())
            .count();
        println!("{:>12.2} {:>12.4} {:>14.4}", i, p, ones as f64 / n as f64);
        i += 0.5;
    }
    println!("(randomized band ≈ ±2 µA, matching the paper's figure)");
}

/// Fig. 5b: current attenuation vs crossbar size, plus the refit check.
fn fig5() {
    println!("\n=== Figure 5b: crossbar current attenuation ===");
    let model = AttenuationModel::paper_fit();
    let sizes = [4usize, 8, 16, 18, 36, 72, 144];
    println!("{:>8} {:>16}", "size", "I1(Cs) (µA)");
    let mut samples = Vec::new();
    for &(cs, i1) in model.curve(&sizes).iter() {
        println!("{:>8} {:>16.4}", cs, i1);
        samples.push((cs, i1));
    }
    let refit = AttenuationModel::fit(&samples).expect("clean power law refits");
    println!(
        "power-law refit of the curve: A = {:.2} µA, B = {:.3} (truth {:.2}, {:.3})",
        refit.a_ua, refit.b, model.a_ua, model.b
    );
}

/// Table 1: latency / JJ / energy vs size, checked against the paper.
fn table1_gen() {
    println!("\n=== Table 1: crossbar hardware costs ===");
    println!(
        "{:>10} {:>14} {:>10} {:>18} {:>8}",
        "size", "latency (ps)", "#JJs", "energy (aJ/cycle)", "match"
    );
    for (row, &(_, lat, jj, e)) in table1().iter().zip(TABLE1_PAPER.iter()) {
        let ok = (row.latency_ps - lat).abs() < 1e-9
            && row.jj_count == jj
            && (row.energy_aj - e).abs() < 1e-9;
        println!(
            "{:>7}x{:<3} {:>13.0} {:>10} {:>18.2} {:>8}",
            row.size,
            row.size,
            row.latency_ps,
            row.jj_count,
            row.energy_aj,
            if ok { "exact" } else { "MISMATCH" }
        );
    }
}

/// Section 4.4: clocking-scheme JJ savings.
fn clocking() {
    println!("\n=== Section 4.4: clocking-scheme optimization ===");
    let lib = CellLibrary::hstp();
    let cfg = RandomDagConfig {
        inputs: 64,
        gates: 3000,
        ..Default::default()
    };
    let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(2023));
    println!("computing part (64-input, 3000-gate benchmark):");
    println!(
        "{:>8} {:>10} {:>12} {:>12}  (paper: >=20.8% @8, >=27.3% @16)",
        "phases", "buffers", "total JJ", "JJ saved"
    );
    for r in clocking_study(&base, &[4, 8, 16], &lib) {
        println!(
            "{:>8} {:>10} {:>12} {:>11.1}%",
            r.phases,
            r.buffers,
            r.cost.jj_total,
            100.0 * r.jj_reduction_vs_4phase
        );
    }
    println!("memory (BCM), 4 -> 3 phases (paper: 20%):");
    for bits in [256usize, 4096] {
        println!(
            "  {} bits: {:.1}% JJ saved",
            bits,
            100.0 * BcmMemory::reduction_from_4phase(bits, 3)
        );
    }
    // Section 6.1: the delay-line (micro-stripline) clocking scheme — 40
    // effective phases, 5 ps stage-to-stage delay.
    let dl = aqfp_netlist::clocking::delay_line_study(&base, &lib);
    println!("delay-line clocking (Section 6.1, 40 phases @ 5 ps/stage):");
    println!(
        "  latency {:.0} ps -> {:.0} ps ({:.1}x), JJ saved {:.1}%",
        dl.conventional.latency_ps,
        dl.delay_line.latency_ps,
        dl.latency_speedup(),
        100.0 * dl.jj_reduction()
    );
}

/// Fig. 12: energy efficiency vs frequency against (Cryo-)CMOS.
fn fig12() {
    println!("\n=== Figure 12: efficiency vs frequency, ours vs (Cryo-)CMOS ===");
    // Ours at 5 GHz from the Table 2 methodology (VGG-Small default config);
    // the CMOS reference is CMOS-BNN's 617 TOPS/W.
    let ours_5ghz = superbnn::energy::estimate(
        &superbnn::spec::NetSpec::vgg_small([3, 16, 16], 8, 10),
        &superbnn::config::HardwareConfig::default(),
    )
    .tops_per_watt;
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "f (GHz)", "ours", "ours+cool", "CMOS", "cryoCMOS", "cryo+cool"
    );
    for p in fig12_series(&[0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0], ours_5ghz, 617.0) {
        println!(
            "{:>8.1} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            p.frequency_ghz, p.ours, p.ours_cooled, p.cmos, p.cryo_cmos, p.cryo_cmos_cooled
        );
    }
}

/// Fig. 10: accuracy vs SC bit-stream length.
fn fig10(scale: &ExperimentScale) {
    println!("\n=== Figure 10: accuracy vs SC bit-stream length ===");
    let lengths = [1usize, 2, 4, 8, 16, 32, 64];
    let sizes = [8usize, 16, 32, 72];
    let pts = bitstream_sweep(scale, &lengths, &sizes, 2.4);
    print!("{:>10}", "L \\ Cs");
    for &cs in &sizes {
        print!(" {cs:>8}");
    }
    println!();
    for &l in &lengths {
        print!("{l:>10}");
        for &cs in &sizes {
            let p = pts
                .iter()
                .find(|p| p.crossbar == cs && p.bitstream_len == l)
                .expect("full grid");
            print!(" {:>7.1}%", 100.0 * p.accuracy);
        }
        println!();
    }
    println!("(expected shape: rising in L, saturating by L ~ 16-32)");
}

/// Fig. 11: accuracy over the (ΔIin, Cs) grid at L = 1.
fn fig11(scale: &ExperimentScale) {
    println!("\n=== Figure 11: accuracy over (ΔIin, crossbar size), L = 1 ===");
    let sizes = [8usize, 16, 32, 72];
    let grayzones = [0.8f64, 1.6, 2.4, 3.2, 4.0, 8.0];
    let pts = grid_sweep(scale, &sizes, &grayzones);
    print!("{:>10}", "dI \\ Cs");
    for &cs in &sizes {
        print!(" {cs:>8}");
    }
    println!();
    for &gz in &grayzones {
        print!("{gz:>10.1}");
        for &cs in &sizes {
            let p = pts
                .iter()
                .find(|p| p.crossbar == cs && (p.grayzone_ua - gz).abs() < 1e-9)
                .expect("full grid");
            print!(" {:>7.1}%", 100.0 * p.accuracy);
        }
        println!();
    }
    println!("(expected shape: multiple interior peaks; cliffs at extremes)");
}

/// Table 2: CIFAR-10-class comparison.
fn table2(scale: &ExperimentScale) {
    println!("\n=== Table 2: CIFAR-10-class comparison ===");
    println!(
        "{:<48} {:>9} {:>12} {:>12} {:>10}",
        "Design", "Accuracy", "TOPS/W", "+cooling", "img/ms"
    );
    for b in cifar10_baselines() {
        println!(
            "{:<48} {:>8.1}% {:>12.3e} {:>12} {:>10}",
            b.name,
            b.accuracy_pct,
            b.tops_per_watt,
            "-",
            b.throughput_img_per_ms
                .map_or_else(|| "-".into(), |v: f64| format!("{v:.1}")),
        );
    }
    let mut rows = table2_ours(scale, &TABLE2_CONFIGS);
    rows.push(table2_resnet(scale));
    for r in rows {
        println!(
            "{:<48} {:>8.1}% {:>12.3e} {:>12.3e} {:>10.1}",
            r.label,
            100.0 * r.accuracy,
            r.energy.tops_per_watt,
            r.energy.tops_per_watt_cooled,
            r.energy.images_per_ms,
        );
    }
}

/// Table 3: MNIST-class MLP comparison.
fn table3(scale: &ExperimentScale) {
    println!("\n=== Table 3: MNIST-class MLP comparison ===");
    println!(
        "{:<16} {:>9} {:>14} {:>14}",
        "Design", "Accuracy", "TOPS/W", "+cooling"
    );
    for b in mnist_baselines() {
        println!(
            "{:<16} {:>8.1}% {:>14.3e} {:>14}",
            b.name,
            b.accuracy_pct,
            b.tops_per_watt,
            b.tops_per_watt_cooled
                .map_or_else(|| "-".into(), |v: f64| format!("{v:.3e}")),
        );
    }
    let r = table3_ours(scale);
    println!(
        "{:<16} {:>8.1}% {:>14.3e} {:>14.3e}   (software ref {:.1}%)",
        "Ours (MLP)",
        100.0 * r.accuracy,
        r.energy.tops_per_watt,
        r.energy.tops_per_watt_cooled,
        100.0 * r.software_accuracy,
    );
}

/// Ablation: randomized-aware training on vs off.
fn ablation(scale: &ExperimentScale) {
    println!("\n=== Ablation: AQFP-aware training (Contribution #1) ===");
    let a = ablation_aware_training(scale);
    println!(
        "deployed accuracy on stressful hardware: aware {:.1}% vs naive {:.1}%",
        100.0 * a.aware_accuracy,
        100.0 * a.naive_accuracy
    );
}

/// Extension: accuracy vs fabrication-defect rate.
fn faults(scale: &ExperimentScale) {
    println!("\n=== Extension: fault robustness (stuck cells + dead columns) ===");
    println!("{:>14} {:>10} {:>10}", "stuck rate", "defects", "accuracy");
    for p in fault_sweep(scale, &[0.0, 0.001, 0.005, 0.02, 0.05, 0.1]) {
        println!(
            "{:>14.3} {:>10} {:>9.1}%",
            p.stuck_cell_rate,
            p.defects,
            100.0 * p.accuracy
        );
    }
}

/// Extension: accuracy vs operating temperature.
fn temperature(scale: &ExperimentScale) {
    println!("\n=== Extension: accuracy vs operating temperature ===");
    println!("{:>8} {:>14} {:>10}", "T (K)", "ΔIin (µA)", "accuracy");
    for p in temperature_sweep(scale, &[0.5, 2.0, 4.2, 8.0, 15.0, 30.0]) {
        println!(
            "{:>8.1} {:>14.2} {:>9.1}%",
            p.temperature_k,
            p.grayzone_ua,
            100.0 * p.accuracy
        );
    }
    println!("(temperature is another knob on the Fig. 11 gray-zone axis: at");
    println!(" this crossbar size the 4.2 K width sits BELOW the SC-linear");
    println!(" optimum, so moderate warming helps before excess noise hurts)");
}
