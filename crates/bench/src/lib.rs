pub fn _placeholder() {}
