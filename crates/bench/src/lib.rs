//! Shared plumbing for the `BENCH_*.json` baseline writers.
//!
//! Every bench in this crate ends the same way: stamp the machine facts
//! (`simd_width`, `machine_cpus`, the measurement's worker counts) into a
//! JSON header, then write the baseline to the workspace root unless an
//! env var redirects it. That boilerplate lives here — one place to
//! change when a common field is added — so the individual benches only
//! format their measurement-specific fields.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// The wide-word kernel width the packed engines are built at — stamped
/// into every baseline so numbers are never compared across datapath
/// widths by accident.
pub const SIMD_WIDTH: &str = "v256";

/// Available logical CPUs of the measuring machine (1 if unknown).
pub fn machine_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The common leading fields of a `BENCH_*.json` baseline: bench name,
/// [`SIMD_WIDTH`], [`machine_cpus`], then one `"key": value` line per
/// `workers` entry (the usual single `measured_workers`, or split counts
/// like the deploy benches' `measured_workers_1thread` /
/// `measured_workers_batch`). Worker counts are recorded separately from
/// `machine_cpus` so measurement parallelism is never conflated with the
/// machine's.
///
/// Returns the fields without surrounding braces or a trailing separator;
/// benches append their own fields after a `,\n  `.
pub fn baseline_header(bench: &str, workers: &[(&str, usize)]) -> String {
    let mut s = format!(
        "\"bench\": \"{bench}\",\n  \"simd_width\": \"{SIMD_WIDTH}\",\n  \
         \"machine_cpus\": {}",
        machine_cpus()
    );
    for (key, value) in workers {
        let _ = write!(s, ",\n  \"{key}\": {value}");
    }
    s
}

/// Writes a finished baseline to `$env_var` if set, else to `file` at the
/// workspace root, and prints where it landed.
pub fn write_baseline(env_var: &str, file: &str, json: &str) {
    let out = std::env::var(env_var)
        .unwrap_or_else(|_| format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write bench baseline");
    println!("baseline written to {out}");
}
