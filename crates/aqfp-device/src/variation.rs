//! Per-die device-parameter variation: the drift axis of robustness
//! campaigns.
//!
//! Fabricated AQFP dies do not all sit at the calibrated operating point:
//! comparator gray-zones come out wider or narrower than the 2.4 µA design
//! value, merging networks attenuate more or less than the fitted `I1(Cs)`
//! curve, and the cryostat drifts away from 4.2 K under thermal load
//! (thermal-cycling reliability studies sweep exactly these axes). A
//! [`VariationModel`] captures one such *operating condition* as three
//! validated knobs applied on top of the nominal hardware configuration:
//!
//! * **gray-zone width scale** — multiplies the comparator gray-zone
//!   `ΔIin`. `1.0` is nominal; `0.0` is the deterministic limit (only
//!   meaningful to engines that accept a zero-width law, e.g. the packed
//!   stochastic deploy engine's flip tables).
//! * **attenuation delta** — relative drift of the merged unit current:
//!   the effective `I1` becomes `I1 · (1 + delta)`. Because the neuron
//!   thresholds stay where they were *programmed*, a non-zero delta models
//!   the mismatch between calibration-time and run-time currents.
//! * **temperature drift** — kelvins away from the 4.2 K operating point.
//!   The gray-zone width follows the calibrated thermal/quantum
//!   [`NoiseModel`]: the effective width picks up
//!   the factor `Δ(T₀ + dT) / Δ(T₀)`.
//!
//! The model is deliberately *post-deployment*: thresholds, BN matching and
//! the digital comparator quantization are all derived from the nominal
//! configuration, and variation only changes the conditions the stochastic
//! datapath *operates* under — the same convention as the crossbar layer's
//! `FaultModel`-style fabrication faults, which also land on an
//! already-programmed die.

use crate::consts::OPERATING_TEMPERATURE_K;
use crate::noise::NoiseModel;
use crate::DeviceError;
use serde::{Deserialize, Serialize};

/// A validated per-trial device-parameter variation.
///
/// The fields are private so the invariants established by
/// [`VariationModel::new`] cannot be bypassed with a struct literal; read
/// them back through the accessors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Multiplicative scale on the gray-zone width `ΔIin` (`≥ 0`, finite).
    grayzone_scale: f64,
    /// Relative drift of the attenuated unit current (`> −1`, finite).
    attenuation_delta: f64,
    /// Temperature drift from the 4.2 K operating point, in kelvin
    /// (finite, resulting temperature `≥ 0`).
    temperature_delta_k: f64,
}

impl VariationModel {
    /// The nominal operating point: every knob at identity. Applying it
    /// changes nothing — `effective_grayzone_ua` returns its argument
    /// bit-for-bit and `drive_scale` is exactly `1.0`.
    pub fn nominal() -> Self {
        Self {
            grayzone_scale: 1.0,
            attenuation_delta: 0.0,
            temperature_delta_k: 0.0,
        }
    }

    /// Creates a variation, validating every field (the same discipline as
    /// `FaultModel::new` over fault rates).
    ///
    /// # Errors
    /// [`DeviceError::VariationOutOfRange`] if `grayzone_scale` is negative
    /// or non-finite, `attenuation_delta` is `≤ −1` or non-finite (the
    /// drifted unit current must stay positive), or `temperature_delta_k`
    /// is non-finite or would take the die below 0 K.
    pub fn new(
        grayzone_scale: f64,
        attenuation_delta: f64,
        temperature_delta_k: f64,
    ) -> crate::Result<Self> {
        if !grayzone_scale.is_finite() || grayzone_scale < 0.0 {
            return Err(DeviceError::VariationOutOfRange {
                field: "gray-zone scale",
                value: grayzone_scale,
            });
        }
        if !attenuation_delta.is_finite() || attenuation_delta <= -1.0 {
            return Err(DeviceError::VariationOutOfRange {
                field: "attenuation delta",
                value: attenuation_delta,
            });
        }
        if !temperature_delta_k.is_finite() || OPERATING_TEMPERATURE_K + temperature_delta_k < 0.0 {
            return Err(DeviceError::VariationOutOfRange {
                field: "temperature drift",
                value: temperature_delta_k,
            });
        }
        Ok(Self {
            grayzone_scale,
            attenuation_delta,
            temperature_delta_k,
        })
    }

    /// A pure gray-zone-width variation (`scale × ΔIin`), the axis the
    /// gray-zone × fault-rate robustness sweeps walk.
    ///
    /// # Errors
    /// As [`VariationModel::new`].
    pub fn grayzone_scale_only(scale: f64) -> crate::Result<Self> {
        Self::new(scale, 0.0, 0.0)
    }

    /// The gray-zone width scale.
    pub fn grayzone_scale(&self) -> f64 {
        self.grayzone_scale
    }

    /// The relative unit-current drift.
    pub fn attenuation_delta(&self) -> f64 {
        self.attenuation_delta
    }

    /// The temperature drift from the 4.2 K operating point, in kelvin.
    pub fn temperature_delta_k(&self) -> f64 {
        self.temperature_delta_k
    }

    /// Whether every knob sits at identity.
    pub fn is_nominal(&self) -> bool {
        self.grayzone_scale == 1.0
            && self.attenuation_delta == 0.0
            && self.temperature_delta_k == 0.0
    }

    /// The effective gray-zone width for a nominal width of `nominal_ua`:
    /// the width scale times the thermal ratio `Δ(T₀ + dT) / Δ(T₀)` of the
    /// calibrated [`NoiseModel`]. At the nominal variation this is the
    /// identity, bit-for-bit.
    pub fn effective_grayzone_ua(&self, nominal_ua: f64) -> f64 {
        let mut width = nominal_ua * self.grayzone_scale;
        if self.temperature_delta_k != 0.0 {
            let noise = NoiseModel::calibrated();
            width *= noise.grayzone_width_ua(OPERATING_TEMPERATURE_K + self.temperature_delta_k)
                / noise.grayzone_width_ua(OPERATING_TEMPERATURE_K);
        }
        width
    }

    /// The multiplicative drive scale the attenuation model picks up:
    /// `1 + attenuation_delta` (always positive by construction).
    pub fn drive_scale(&self) -> f64 {
        1.0 + self.attenuation_delta
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let vm = VariationModel::nominal();
        assert!(vm.is_nominal());
        // Exact identity, not approximate: the packed stochastic engine
        // relies on nominal tables matching the unvaried scalar law
        // bit-for-bit.
        assert_eq!(vm.effective_grayzone_ua(2.4), 2.4);
        assert_eq!(vm.drive_scale(), 1.0);
    }

    #[test]
    fn rejects_bad_grayzone_scale() {
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                VariationModel::new(bad, 0.0, 0.0),
                Err(DeviceError::VariationOutOfRange {
                    field: "gray-zone scale",
                    ..
                })
            ));
        }
        // Zero is the deterministic limit, not an error.
        assert!(VariationModel::new(0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn rejects_bad_attenuation_delta() {
        for bad in [-1.0, -2.0, f64::NAN, f64::NEG_INFINITY] {
            assert!(matches!(
                VariationModel::new(1.0, bad, 0.0),
                Err(DeviceError::VariationOutOfRange {
                    field: "attenuation delta",
                    ..
                })
            ));
        }
        assert!(VariationModel::new(1.0, -0.5, 0.0).is_ok());
        assert!(VariationModel::new(1.0, 0.5, 0.0).is_ok());
    }

    #[test]
    fn rejects_bad_temperature_drift() {
        for bad in [-OPERATING_TEMPERATURE_K - 0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                VariationModel::new(1.0, 0.0, bad),
                Err(DeviceError::VariationOutOfRange {
                    field: "temperature drift",
                    ..
                })
            ));
        }
        // Cooling all the way to 0 K is allowed.
        assert!(VariationModel::new(1.0, 0.0, -OPERATING_TEMPERATURE_K).is_ok());
    }

    #[test]
    fn grayzone_scale_multiplies_width() {
        let vm = VariationModel::new(2.5, 0.0, 0.0).unwrap();
        assert!((vm.effective_grayzone_ua(2.4) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn warming_widens_and_cooling_narrows() {
        let warm = VariationModel::new(1.0, 0.0, 10.0).unwrap();
        let cool = VariationModel::new(1.0, 0.0, -3.0).unwrap();
        assert!(warm.effective_grayzone_ua(2.4) > 2.4);
        assert!(cool.effective_grayzone_ua(2.4) < 2.4);
    }

    #[test]
    fn drive_scale_follows_delta() {
        let vm = VariationModel::new(1.0, -0.2, 0.0).unwrap();
        assert!((vm.drive_scale() - 0.8).abs() < 1e-12);
    }
}
