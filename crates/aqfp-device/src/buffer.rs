//! The AQFP buffer: current sensor, sign function, ADC and 1-bit memory.
//!
//! The buffer (Fig. 1 of the paper) is the workhorse of the whole design:
//! as a *neuron circuit* it digitizes the analog column current of a
//! crossbar; as a *memory cell* it retains one bit while its excitation is
//! held high; chained, it forms the buffer-chain memory (BCM).

use crate::{Bit, GrayZone};
use serde::{Deserialize, Serialize};

/// Configuration of an [`AqfpBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Decision threshold `Ith` in µA. Adjustable at design time; SupeRBNN
    /// uses it to absorb the folded batch-norm offset (paper Eq. 16).
    pub threshold_ua: f64,
    /// Gray-zone width `ΔIin` in µA.
    pub grayzone_ua: f64,
}

impl Default for BufferConfig {
    /// The paper's operating point: `Ith = 0`, `ΔIin = 2.4 µA` at 4.2 K.
    fn default() -> Self {
        Self {
            threshold_ua: 0.0,
            grayzone_ua: crate::consts::DEFAULT_GRAYZONE_UA,
        }
    }
}

/// A stochastic AQFP buffer.
///
/// The buffer senses the direction of its input current and produces a logic
/// value; within the gray-zone the output is random with the erf-shaped
/// probability of paper Eq. 1. The struct itself is immutable and cheap to
/// copy; randomness comes from the RNG passed to [`AqfpBuffer::sense`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AqfpBuffer {
    law: GrayZone,
}

impl AqfpBuffer {
    /// Creates a buffer from a configuration.
    ///
    /// # Panics
    /// Panics if the gray-zone width is not strictly positive; use
    /// [`AqfpBuffer::ideal`] for a noiseless comparator.
    pub fn new(config: BufferConfig) -> Self {
        Self {
            law: GrayZone::new(config.threshold_ua, config.grayzone_ua),
        }
    }

    /// A noiseless sign comparator with the given threshold (the `ΔIin → 0`
    /// limit), useful as the "ideal hardware" reference in experiments.
    pub fn ideal(threshold_ua: f64) -> Self {
        Self {
            law: GrayZone::deterministic(threshold_ua),
        }
    }

    /// The underlying gray-zone law.
    pub fn law(&self) -> GrayZone {
        self.law
    }

    /// The decision threshold `Ith` in µA.
    pub fn threshold_ua(&self) -> f64 {
        self.law.threshold
    }

    /// Returns a copy with the threshold replaced — how BN matching programs
    /// a column's neuron (Eq. 16).
    #[must_use]
    pub fn with_threshold(self, threshold_ua: f64) -> Self {
        Self {
            law: GrayZone {
                threshold: threshold_ua,
                ..self.law
            },
        }
    }

    /// Probability of reading logic '1' for an input current in µA (Eq. 1).
    pub fn probability_one(&self, input_ua: f64) -> f64 {
        self.law.probability_one(input_ua)
    }

    /// Senses the input current once, sampling the stochastic output.
    pub fn sense<R: rand::Rng + ?Sized>(&self, input_ua: f64, rng: &mut R) -> Bit {
        Bit::from_bool(self.law.sample(input_ua, rng))
    }

    /// Senses the same held input over an observation window of `len` clock
    /// cycles, producing the raw bit-stream that the SC accumulation module
    /// consumes (paper Fig. 6a). Each cycle is an independent draw — the
    /// paper relies on the true-randomness of thermal switching for the
    /// i.i.d. property of stochastic numbers.
    pub fn observe<R: rand::Rng + ?Sized>(
        &self,
        input_ua: f64,
        len: usize,
        rng: &mut R,
    ) -> Vec<Bit> {
        // One probability evaluation, `len` Bernoulli draws.
        let p = self.law.probability_one(input_ua);
        (0..len)
            .map(|_| {
                let v = if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    rng.gen::<f64>() < p
                };
                Bit::from_bool(v)
            })
            .collect()
    }
}

impl Default for AqfpBuffer {
    fn default() -> Self {
        Self::new(BufferConfig::default())
    }
}

/// A 1-bit memory built from an AQFP buffer held at high excitation
/// (Section 2.2: "the logic state stored in the AQFP buffer can be
/// retained"). Used for pre-storing BNN weights in LiM cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferMemory {
    stored: Bit,
}

impl BufferMemory {
    /// Creates a memory cell holding `bit`.
    pub fn new(bit: Bit) -> Self {
        Self { stored: bit }
    }

    /// Reads the retained bit. Reading is non-destructive.
    pub fn read(&self) -> Bit {
        self.stored
    }

    /// Rewrites the cell (weight reprogramming between layers/models).
    pub fn write(&mut self, bit: Bit) {
        self.stored = bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceRng, SeedableRng};

    #[test]
    fn strong_currents_are_deterministic() {
        let buf = AqfpBuffer::default();
        let mut rng = DeviceRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(buf.sense(70.0, &mut rng), Bit::One);
            assert_eq!(buf.sense(-70.0, &mut rng), Bit::Zero);
        }
    }

    #[test]
    fn grayzone_output_is_stochastic() {
        let buf = AqfpBuffer::default();
        let mut rng = DeviceRng::seed_from_u64(1);
        let bits: Vec<Bit> = (0..1000).map(|_| buf.sense(0.0, &mut rng)).collect();
        let ones = bits.iter().filter(|b| b.as_bool()).count();
        assert!(
            (400..600).contains(&ones),
            "zero input should flip ~50/50, got {ones}/1000"
        );
    }

    #[test]
    fn threshold_programming_shifts_decision() {
        let buf = AqfpBuffer::default().with_threshold(10.0);
        assert!((buf.probability_one(10.0) - 0.5).abs() < 1e-12);
        assert!(buf.probability_one(0.0) < 1e-6);
        assert_eq!(buf.threshold_ua(), 10.0);
    }

    #[test]
    fn observation_window_estimates_probability() {
        let buf = AqfpBuffer::default();
        let mut rng = DeviceRng::seed_from_u64(2);
        let input = 1.0; // inside the gray-zone
        let stream = buf.observe(input, 20_000, &mut rng);
        let freq = stream.iter().filter(|b| b.as_bool()).count() as f64 / stream.len() as f64;
        let p = buf.probability_one(input);
        assert!((freq - p).abs() < 0.015, "freq {freq} vs p {p}");
    }

    #[test]
    fn ideal_buffer_is_step() {
        let buf = AqfpBuffer::ideal(0.0);
        let mut rng = DeviceRng::seed_from_u64(3);
        assert_eq!(buf.sense(1e-9, &mut rng), Bit::One);
        assert_eq!(buf.sense(-1e-9, &mut rng), Bit::Zero);
    }

    #[test]
    fn memory_retains_and_rewrites() {
        let mut m = BufferMemory::new(Bit::One);
        assert_eq!(m.read(), Bit::One);
        assert_eq!(m.read(), Bit::One); // non-destructive
        m.write(Bit::Zero);
        assert_eq!(m.read(), Bit::Zero);
    }

    #[test]
    fn observe_empty_window() {
        let buf = AqfpBuffer::default();
        let mut rng = DeviceRng::seed_from_u64(4);
        assert!(buf.observe(0.0, 0, &mut rng).is_empty());
    }
}
