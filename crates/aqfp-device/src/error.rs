//! Error type for device-level configuration.

use std::fmt;

/// Errors raised by device-level constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The clock phase count is below the AQFP minimum of 3.
    InvalidClockPhases {
        /// The rejected phase count.
        phases: u32,
    },
    /// The clock frequency is non-positive or non-finite.
    InvalidFrequency {
        /// The rejected frequency in GHz.
        frequency_ghz: f64,
    },
    /// A device-parameter variation knob was outside its physical range
    /// (see [`crate::VariationModel::new`]).
    VariationOutOfRange {
        /// Which knob was rejected (`"gray-zone scale"`,
        /// `"attenuation delta"` or `"temperature drift"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidClockPhases { phases } => write!(
                f,
                "AQFP requires at least 3 clock phases for data propagation, got {phases}"
            ),
            DeviceError::InvalidFrequency { frequency_ghz } => {
                write!(
                    f,
                    "clock frequency must be positive and finite, got {frequency_ghz} GHz"
                )
            }
            DeviceError::VariationOutOfRange { field, value } => {
                write!(f, "variation {field} {value} is outside the physical range")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DeviceError::InvalidClockPhases { phases: 2 };
        assert!(e.to_string().contains("at least 3"));
        let e = DeviceError::InvalidFrequency { frequency_ghz: 0.0 };
        assert!(e.to_string().contains("positive"));
        let e = DeviceError::VariationOutOfRange {
            field: "gray-zone scale",
            value: -1.0,
        };
        assert!(e.to_string().contains("gray-zone scale"));
    }
}
