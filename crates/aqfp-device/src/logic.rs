//! Logic values and their current-domain encoding.
//!
//! AQFP encodes logic in the *polarity* of the output current pulse: a
//! positive pulse is logic '1', a negative pulse is logic '0'. In the BNN
//! mapping, logic '1' carries the value `+1` and logic '0' carries `−1`,
//! which is what makes analog current summation compute a signed dot product.

use serde::{Deserialize, Serialize};

/// A single AQFP logic value.
///
/// `Bit` is deliberately not a `bool` alias: the BNN mapping cares about the
/// signed value (±1) and the signed drive current (±70 µA), and conflating
/// those with `true`/`false` has historically caused sign bugs in crossbar
/// code. Conversions are explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bit {
    /// Logic '0': negative current polarity, BNN value −1.
    Zero,
    /// Logic '1': positive current polarity, BNN value +1.
    One,
}

impl Bit {
    /// The signed BNN value carried by this bit: `+1.0` or `−1.0`.
    #[inline]
    pub fn to_value(self) -> f64 {
        match self {
            Bit::Zero => -1.0,
            Bit::One => 1.0,
        }
    }

    /// The drive current this bit injects into a crossbar row, in µA
    /// (±70 µA per Section 4.2).
    #[inline]
    pub fn to_current_ua(self) -> f64 {
        self.to_value() * crate::consts::INPUT_CURRENT_UA
    }

    /// Builds a bit from the sign of a real value; non-negative maps to
    /// [`Bit::One`], matching the paper's `sign` convention (Eq. 6 maps
    /// `xr ≥ 0` to `+1`).
    #[inline]
    pub fn from_sign(value: f64) -> Self {
        if value >= 0.0 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Interprets the bit as a boolean (`One` → `true`).
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Builds a bit from a boolean (`true` → `One`).
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// XNOR of two bits — the BNN "multiplication" (paper Section 4.1):
    /// equal signs multiply to `+1`.
    #[inline]
    pub fn xnor(self, other: Bit) -> Bit {
        Bit::from_bool(self == other)
    }

    /// Logical negation (an AQFP inverter).
    #[allow(clippy::should_implement_trait)] // `!bit` reads worse in crossbar code
    #[inline]
    pub fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        Bit::from_bool(b)
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> Self {
        b.as_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_encoding_is_signed() {
        assert_eq!(Bit::One.to_value(), 1.0);
        assert_eq!(Bit::Zero.to_value(), -1.0);
    }

    #[test]
    fn current_encoding_is_plus_minus_70ua() {
        assert_eq!(Bit::One.to_current_ua(), 70.0);
        assert_eq!(Bit::Zero.to_current_ua(), -70.0);
    }

    #[test]
    fn xnor_is_sign_multiplication() {
        for a in [Bit::Zero, Bit::One] {
            for w in [Bit::Zero, Bit::One] {
                let product = a.to_value() * w.to_value();
                assert_eq!(a.xnor(w).to_value(), product);
            }
        }
    }

    #[test]
    fn sign_convention_matches_paper_eq6() {
        assert_eq!(Bit::from_sign(0.0), Bit::One);
        assert_eq!(Bit::from_sign(3.2), Bit::One);
        assert_eq!(Bit::from_sign(-0.001), Bit::Zero);
    }

    #[test]
    fn not_inverts() {
        assert_eq!(Bit::One.not(), Bit::Zero);
        assert_eq!(Bit::Zero.not(), Bit::One);
        assert_eq!(Bit::One.not().not(), Bit::One);
    }
}
