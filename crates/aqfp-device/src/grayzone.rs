//! The gray-zone switching law (paper Eq. 1) and its value-domain form
//! (paper Eq. 3).
//!
//! An AQFP buffer outputs logic '1' with probability
//!
//! ```text
//! P(Iin) = 0.5 + 0.5 · erf( √π · (Iin − Ith) / ΔIin )          (Eq. 1)
//! ```
//!
//! where `Iin` is the input current, `Ith` an adjustable threshold and
//! `ΔIin` the gray-zone width set by thermal/quantum fluctuations. Dividing
//! currents by the attenuated unit amplitude `I1(Cs)` turns the same law into
//! the *value-domain* probability used during training (Eq. 3 with
//! `ΔVin(Cs) = ΔIin / I1(Cs)`, Eq. 4).

use crate::erf::{erf, erf_derivative};
use serde::{Deserialize, Serialize};

/// The square root of π, as used in Eq. 1.
pub const SQRT_PI: f64 = 1.772_453_850_905_516;

/// An erf-shaped stochastic threshold law.
///
/// `GrayZone` is unit-agnostic: use µA for the current-domain law (Eq. 1) or
/// dimensionless activations for the value-domain law (Eq. 3). The two only
/// differ by the scale of `threshold` and `width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayZone {
    /// Decision threshold (`Ith` or `Vth`).
    pub threshold: f64,
    /// Gray-zone width (`ΔIin` or `ΔVin`). Must be positive and finite.
    pub width: f64,
}

impl GrayZone {
    /// Creates a gray-zone law.
    ///
    /// # Panics
    /// Panics if `width` is not strictly positive and finite; a zero-width
    /// gray-zone is expressed by [`GrayZone::deterministic`] instead.
    pub fn new(threshold: f64, width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "gray-zone width must be positive and finite, got {width}"
        );
        Self { threshold, width }
    }

    /// The paper's default law at 4.2 K: `Ith = 0`, `ΔIin = 2.4 µA`.
    pub fn paper_default() -> Self {
        Self::new(0.0, crate::consts::DEFAULT_GRAYZONE_UA)
    }

    /// A deterministic sign comparator (the `ΔIin → 0` limit). `probability_one`
    /// becomes a step function at `threshold`.
    pub fn deterministic(threshold: f64) -> Self {
        Self {
            threshold,
            width: 0.0,
        }
    }

    /// Probability that the buffer outputs logic '1' for input `x` (Eq. 1).
    ///
    /// For the deterministic limit the law degenerates to a step function
    /// with `P(threshold) = 0.5` (the measure-zero tie keeps the erf limit).
    pub fn probability_one(&self, x: f64) -> f64 {
        if self.width == 0.0 {
            return match x.partial_cmp(&self.threshold) {
                Some(std::cmp::Ordering::Greater) => 1.0,
                Some(std::cmp::Ordering::Less) => 0.0,
                _ => 0.5,
            };
        }
        0.5 + 0.5 * erf(SQRT_PI * (x - self.threshold) / self.width)
    }

    /// Expected signed output value `E[±1] = 2·P(x) − 1 = erf(√π(x−th)/Δ)`.
    ///
    /// This is the surrogate the randomized-aware back-propagation
    /// differentiates (paper Eq. 10).
    pub fn expected_value(&self, x: f64) -> f64 {
        if self.width == 0.0 {
            return 2.0 * self.probability_one(x) - 1.0;
        }
        erf(SQRT_PI * (x - self.threshold) / self.width)
    }

    /// Derivative of [`GrayZone::expected_value`] with respect to `x`:
    /// `d/dx erf(√π(x−th)/Δ) = (2/√π)·e^(−u²)·(√π/Δ) = (2/Δ)·e^(−u²)`.
    ///
    /// Returns `0.0` in the deterministic limit (the impulse is unusable for
    /// gradients; the caller falls back to a plain STE there).
    pub fn expected_value_grad(&self, x: f64) -> f64 {
        if self.width == 0.0 {
            return 0.0;
        }
        let u = SQRT_PI * (x - self.threshold) / self.width;
        erf_derivative(u) * SQRT_PI / self.width
    }

    /// Half-width of the band where the output is noticeably random, defined
    /// as `|P − 1/2| < 0.49` ⇔ `|erf| < 0.98` ⇔ `|x − th| < 1.645·Δ/√π`.
    ///
    /// With the paper's `Δ = 2.4 µA` this evaluates to ≈ 2.2 µA, matching the
    /// "boundary of randomized switching is around ±2 µA" of Fig. 4.
    pub fn random_band_halfwidth(&self) -> f64 {
        // erf(1.645) ≈ 0.98.
        1.645 * self.width / SQRT_PI
    }

    /// Rescales a current-domain law into the value domain (Eq. 3/4):
    /// the unit value `+1` is carried by a current of `unit_current`, so both
    /// threshold and width divide by it.
    ///
    /// # Panics
    /// Panics if `unit_current` is not strictly positive.
    pub fn to_value_domain(&self, unit_current: f64) -> GrayZone {
        assert!(
            unit_current > 0.0,
            "unit current must be positive, got {unit_current}"
        );
        GrayZone {
            threshold: self.threshold / unit_current,
            width: self.width / unit_current,
        }
    }

    /// Samples one output bit: `true` for logic '1'.
    pub fn sample<R: rand::Rng + ?Sized>(&self, x: f64, rng: &mut R) -> bool {
        let p = self.probability_one(x);
        // Avoid an RNG draw for the (common) saturated cases so deterministic
        // regions of the crossbar stay bit-exact across bit-stream lengths.
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            rng.gen::<f64>() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn midpoint_probability_is_half() {
        let gz = GrayZone::paper_default();
        assert!((gz.probability_one(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturates_outside_grayzone() {
        let gz = GrayZone::paper_default();
        // Fig. 4: beyond about ±2 µA the output is effectively deterministic.
        assert!(gz.probability_one(4.0) > 0.999);
        assert!(gz.probability_one(-4.0) < 0.001);
        // Full-swing ±70 µA inputs are exactly saturated in f64.
        assert_eq!(gz.probability_one(70.0), 1.0);
        assert_eq!(gz.probability_one(-70.0), 0.0);
    }

    #[test]
    fn random_band_matches_fig4() {
        let gz = GrayZone::paper_default();
        let hw = gz.random_band_halfwidth();
        assert!(
            (hw - crate::consts::FIG4_RANDOM_BAND_UA).abs() < 0.35,
            "random band half-width {hw} should be ≈ 2 µA"
        );
    }

    #[test]
    fn threshold_shifts_curve() {
        let gz = GrayZone::new(1.0, 2.4);
        assert!((gz.probability_one(1.0) - 0.5).abs() < 1e-12);
        assert!(gz.probability_one(0.0) < 0.5);
    }

    #[test]
    fn expected_value_consistent_with_probability() {
        let gz = GrayZone::paper_default();
        for x in [-3.0, -1.0, 0.0, 0.7, 2.5] {
            let e = gz.expected_value(x);
            let p = gz.probability_one(x);
            assert!((e - (2.0 * p - 1.0)).abs() < 1e-12, "mismatch at {x}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let gz = GrayZone::new(0.3, 1.7);
        for x in [-1.0, 0.0, 0.3, 1.2] {
            let h = 1e-6;
            let fd = (gz.expected_value(x + h) - gz.expected_value(x - h)) / (2.0 * h);
            let g = gz.expected_value_grad(x);
            assert!((g - fd).abs() < 1e-5, "grad mismatch at {x}: {g} vs {fd}");
        }
    }

    #[test]
    fn deterministic_limit_is_step() {
        let gz = GrayZone::deterministic(0.0);
        assert_eq!(gz.probability_one(1e-12), 1.0);
        assert_eq!(gz.probability_one(-1e-12), 0.0);
        assert_eq!(gz.probability_one(0.0), 0.5);
        assert_eq!(gz.expected_value_grad(0.0), 0.0);
    }

    #[test]
    fn value_domain_rescaling() {
        let gz = GrayZone::new(7.0, 2.4);
        let v = gz.to_value_domain(70.0);
        assert!((v.threshold - 0.1).abs() < 1e-12);
        assert!((v.width - 2.4 / 70.0).abs() < 1e-12);
        // Probabilities agree at corresponding points.
        assert!((gz.probability_one(14.0) - v.probability_one(0.2)).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequency_approaches_probability() {
        let gz = GrayZone::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = 0.8;
        let n = 40_000;
        let ones = (0..n).filter(|_| gz.sample(x, &mut rng)).count();
        let freq = ones as f64 / n as f64;
        let p = gz.probability_one(x);
        assert!(
            (freq - p).abs() < 0.01,
            "sampled frequency {freq} vs analytic {p}"
        );
    }

    #[test]
    #[should_panic(expected = "gray-zone width must be positive")]
    fn rejects_nonpositive_width() {
        GrayZone::new(0.0, -1.0);
    }
}
