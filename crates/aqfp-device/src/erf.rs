//! Error function used by the gray-zone switching law.
//!
//! `std` does not expose `erf`, and the allowed dependency set contains no
//! math crate, so we implement it here. For `|x| < 3` we sum the Maclaurin
//! series of `erf`; for `|x| ≥ 3` we evaluate the classical continued
//! fraction of `erfc` by backward recurrence. Both regimes are accurate to
//! better than `1e-13` absolute error — far below the Monte-Carlo noise of
//! any experiment in this repository and below the device calibration
//! uncertainty the paper works with. `erf(0)` is exactly `0`.

/// `2 / √π`, the series prefactor and the derivative constant.
const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// `1 / √π`.
const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;

/// Error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to better than `1e-13` absolute error for all finite inputs.
/// `erf(±∞) = ±1`, `erf(NaN) = NaN`, `erf(0) = 0` exactly.
///
/// # Example
/// ```
/// let e = aqfp_device::erf::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    if ax < 3.0 {
        sign * erf_series(ax)
    } else {
        sign * (1.0 - erfc_cf(ax))
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For large positive `x` this avoids the catastrophic cancellation of
/// computing `1 − erf(x)` directly: `erfc(27)` is still a normal f64.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 3.0 {
        erfc_cf(x)
    } else if x <= -3.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf(x)
    }
}

/// Derivative of the error function: `erf'(x) = 2/√π · e^(−x²)`.
///
/// Used by the randomized-aware back-propagation (paper Eq. 10), where the
/// gradient of the expected activation is the derivative of the erf-shaped
/// probability law.
pub fn erf_derivative(x: f64) -> f64 {
    TWO_OVER_SQRT_PI * (-x * x).exp()
}

/// Maclaurin series, valid (and fast) for `0 ≤ x < 3`.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/√π · Σ_{n≥0} (−1)ⁿ x^{2n+1} / (n!·(2n+1))
    let x2 = x * x;
    let mut term = x; // (−1)ⁿ x^{2n+1} / n!
    let mut sum = x;
    let mut n = 1.0_f64;
    loop {
        term *= -x2 / n;
        let contrib = term / (2.0 * n + 1.0);
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
        n += 1.0;
        debug_assert!(n < 200.0, "erf series failed to converge at x = {x}");
    }
    (TWO_OVER_SQRT_PI * sum).clamp(-1.0, 1.0)
}

/// Continued fraction for `erfc(x)`, `x ≥ 3`:
/// `erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`.
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 3.0);
    let e = (-x * x).exp();
    if e == 0.0 {
        return 0.0; // x ≳ 27: underflow, erfc is subnormal-zero anyway.
    }
    // Backward recurrence; 40 levels is far past convergence for x ≥ 3.
    let mut tail = 0.0_f64;
    for n in (1..=40).rev() {
        tail = (n as f64 / 2.0) / (x + tail);
    }
    INV_SQRT_PI * e / (x + tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_89),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (2.9, 0.999_958_902_121_900_5),
        (3.0, 0.999_977_909_503_001_4),
        (3.5, 0.999_999_256_901_627_7),
        (4.0, 0.999_999_984_582_742_1),
        (5.0, 0.999_999_999_998_462_5),
    ];

    #[test]
    fn matches_reference_values() {
        for &(x, want) in REFERENCE {
            assert!(
                (erf(x) - want).abs() < 1e-13,
                "erf({x}) = {:e} want {want:e}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 1e-13, "odd symmetry at {x}");
        }
    }

    #[test]
    fn zero_is_exact() {
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn saturates_at_infinity() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erf(100.0), 1.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erfc_complements() {
        for &(x, _) in REFERENCE {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "at {x}");
            assert!((erf(-x) + erfc(-x) - 1.0).abs() < 1e-12, "at {}", -x);
        }
    }

    #[test]
    fn erfc_tail_avoids_cancellation() {
        // erfc(6) ≈ 2.1519736712498913e-17 — representable, not zero.
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-16, "erfc(6) = {v:e}");
        assert!((v - 2.151_973_671_249_891e-17).abs() < 1e-22);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.0, 2.5] {
            // h balances truncation (h²) against the ~1e-13 evaluation
            // noise amplified by 1/h.
            let h = 1e-5;
            let fd = (erf(x + h) - erf(x - h)) / (2.0 * h);
            assert!(
                (erf_derivative(x) - fd).abs() < 1e-7,
                "derivative mismatch at {x}: {} vs {fd}",
                erf_derivative(x)
            );
        }
    }

    #[test]
    fn monotonically_increasing() {
        let mut prev = erf(-6.0);
        let mut x = -6.0;
        while x < 6.0 {
            x += 0.01;
            let cur = erf(x);
            assert!(cur >= prev, "erf not monotone at {x}");
            prev = cur;
        }
    }

    #[test]
    fn continuous_across_regime_boundary() {
        // Series below 3, continued fraction above; check the seam.
        let below = erf(3.0 - 1e-9);
        let above = erf(3.0 + 1e-9);
        assert!((below - above).abs() < 1e-12);
    }
}
