//! The minimalist AQFP standard-cell library.
//!
//! Section 2.2/6.1 of the paper: the AQFP cell library is built from buffers
//! following the minimalist design of Takeuchi et al. — an inverter is a
//! buffer with a negated output transformer coupling, AND/OR are 3-input
//! majority gates with a constant input, and splitters fan a signal out.
//! Every gate occupies one clock phase (one "stage").
//!
//! JJ counts per cell are documented assumptions (DESIGN.md §5) consistent
//! with the minimalist library: a buffer/inverter is a 2-junction SQUID;
//! a majority (and hence AND/OR) is three input buffers merged into one
//! output buffer minus shared bias, counted as 6 JJs; a 1-to-2 splitter is
//! two output buffers on a shared input loop, 4 JJs; the read-out interface
//! (DC-SQUID + driver) is 4 JJs.

use serde::{Deserialize, Serialize};

/// Kinds of gates available in the AQFP standard-cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// 1-input buffer; also the path-balancing insertion element and the
    /// 1-bit memory primitive.
    Buffer,
    /// 1-input inverter (buffer with inverted coupling).
    Inverter,
    /// 2-input AND (majority with a constant −1 input).
    And,
    /// 2-input OR (majority with a constant +1 input).
    Or,
    /// 3-input majority gate — the native AQFP logic primitive.
    Majority,
    /// 1-to-2 splitter for fan-out.
    Splitter,
    /// Read-out interface converting QFP current to voltage levels.
    Readout,
}

impl GateKind {
    /// All gate kinds, for iteration in tests and reports.
    pub const ALL: [GateKind; 7] = [
        GateKind::Buffer,
        GateKind::Inverter,
        GateKind::And,
        GateKind::Or,
        GateKind::Majority,
        GateKind::Splitter,
        GateKind::Readout,
    ];

    /// Number of logical inputs the gate consumes.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buffer | GateKind::Inverter | GateKind::Splitter | GateKind::Readout => 1,
            GateKind::And | GateKind::Or => 2,
            GateKind::Majority => 3,
        }
    }

    /// Number of outputs the gate drives.
    pub fn fanout(self) -> usize {
        match self {
            GateKind::Splitter => 2,
            _ => 1,
        }
    }
}

/// Per-gate cost/latency data for one fabrication process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellCost {
    /// Josephson junctions in the cell.
    pub jj_count: u32,
    /// Clock stages occupied (always 1 in the minimalist library).
    pub stages: u32,
}

/// The AQFP standard-cell library with its cost model.
///
/// Energy is charged per JJ per clock cycle ([`crate::consts::ENERGY_PER_JJ_AJ`]),
/// matching the exact fit of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Energy per JJ per clock cycle, in aJ.
    pub energy_per_jj_aj: f64,
    /// Stage-to-stage delay, in ps.
    pub stage_delay_ps: f64,
}

impl CellLibrary {
    /// The AIST 4-layer 10 kA/cm² HSTP process used by the paper.
    pub fn hstp() -> Self {
        Self {
            energy_per_jj_aj: crate::consts::ENERGY_PER_JJ_AJ,
            stage_delay_ps: crate::consts::STAGE_DELAY_PS,
        }
    }

    /// Cost entry for a gate kind.
    pub fn cost(&self, kind: GateKind) -> CellCost {
        let jj_count = match kind {
            GateKind::Buffer | GateKind::Inverter => 2,
            GateKind::Splitter => 4,
            GateKind::And | GateKind::Or | GateKind::Majority => 6,
            GateKind::Readout => 4,
        };
        CellCost {
            jj_count,
            stages: 1,
        }
    }

    /// Energy dissipated by one gate over one clock cycle, in aJ.
    pub fn gate_energy_aj(&self, kind: GateKind) -> f64 {
        self.cost(kind).jj_count as f64 * self.energy_per_jj_aj
    }

    /// Latency of a pipeline of `stages` logic stages, in ps.
    pub fn pipeline_latency_ps(&self, stages: u32) -> f64 {
        stages as f64 * self.stage_delay_ps
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::hstp()
    }
}

/// Functional evaluation of a gate on boolean inputs.
///
/// Returns the gate's single logical output (a splitter copies its input;
/// the duplication is topological, handled by the netlist layer).
///
/// # Panics
/// Panics if `inputs.len() != kind.arity()`.
pub fn eval_gate(kind: GateKind, inputs: &[bool]) -> bool {
    assert_eq!(
        inputs.len(),
        kind.arity(),
        "gate {kind:?} expects {} inputs, got {}",
        kind.arity(),
        inputs.len()
    );
    match kind {
        GateKind::Buffer | GateKind::Splitter | GateKind::Readout => inputs[0],
        GateKind::Inverter => !inputs[0],
        GateKind::And => inputs[0] && inputs[1],
        GateKind::Or => inputs[0] || inputs[1],
        GateKind::Majority => {
            let ones = inputs.iter().filter(|&&b| b).count();
            ones >= 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jj_counts_follow_minimalist_library() {
        let lib = CellLibrary::hstp();
        assert_eq!(lib.cost(GateKind::Buffer).jj_count, 2);
        assert_eq!(lib.cost(GateKind::Inverter).jj_count, 2);
        assert_eq!(lib.cost(GateKind::Majority).jj_count, 6);
        assert_eq!(lib.cost(GateKind::And).jj_count, 6);
        assert_eq!(lib.cost(GateKind::Splitter).jj_count, 4);
    }

    #[test]
    fn every_gate_is_single_stage() {
        let lib = CellLibrary::hstp();
        for kind in GateKind::ALL {
            assert_eq!(lib.cost(kind).stages, 1, "{kind:?}");
        }
    }

    #[test]
    fn gate_energy_scales_with_jj() {
        let lib = CellLibrary::hstp();
        assert!((lib.gate_energy_aj(GateKind::Buffer) - 0.01).abs() < 1e-12);
        assert!((lib.gate_energy_aj(GateKind::Majority) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn pipeline_latency_matches_stage_delay() {
        let lib = CellLibrary::hstp();
        // Table 1's 4×4 crossbar: 4 stages → 60 ps? No: 15n ps with n=4 is
        // 60 ps, i.e. 1.2 stages of 50 ps... latency accounting for the
        // crossbar lives in aqfp-crossbar; here we just check linearity.
        assert_eq!(lib.pipeline_latency_ps(4), 200.0);
        assert_eq!(lib.pipeline_latency_ps(0), 0.0);
    }

    #[test]
    fn majority_truth_table() {
        let cases = [
            ([false, false, false], false),
            ([true, false, false], false),
            ([true, true, false], true),
            ([true, true, true], true),
        ];
        for (inp, want) in cases {
            assert_eq!(eval_gate(GateKind::Majority, &inp), want, "{inp:?}");
        }
    }

    #[test]
    fn and_or_from_majority_identities() {
        // AND(a,b) = MAJ(a,b,0); OR(a,b) = MAJ(a,b,1).
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(
                    eval_gate(GateKind::And, &[a, b]),
                    eval_gate(GateKind::Majority, &[a, b, false])
                );
                assert_eq!(
                    eval_gate(GateKind::Or, &[a, b]),
                    eval_gate(GateKind::Majority, &[a, b, true])
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        eval_gate(GateKind::And, &[true]);
    }
}
