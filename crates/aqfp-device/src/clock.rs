//! Multi-phase excitation clocking for AQFP pipelines.
//!
//! AQFP gates are powered *and* synchronized by a sinusoidal excitation
//! current; data moves one logic stage per clock phase. With a `k`-phase
//! clock, adjacent stages overlap, but so do stages up to `k − 1` phases
//! apart — which is exactly why raising the phase count removes
//! path-balancing buffers (Section 4.4): a signal may legally skip ahead by
//! up to `k − 1` stages without a buffer.

use serde::{Deserialize, Serialize};

/// A multi-phase AQFP excitation clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockScheme {
    phases: u32,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Whether the delay-line (micro-stripline) scheme of He et al. is used,
    /// reducing the per-stage delay from a full phase slot to 5 ps.
    pub delay_line: bool,
}

impl ClockScheme {
    /// Minimum number of phases for correct AQFP data propagation.
    pub const MIN_PHASES: u32 = 3;

    /// Creates a clock scheme.
    ///
    /// # Errors
    /// Returns [`crate::DeviceError::InvalidClockPhases`] if `phases < 3`
    /// (Section 4.4: "a minimum of a 3-phase clock system").
    pub fn new(phases: u32, frequency_ghz: f64) -> crate::Result<Self> {
        if phases < Self::MIN_PHASES {
            return Err(crate::DeviceError::InvalidClockPhases { phases });
        }
        if !(frequency_ghz.is_finite() && frequency_ghz > 0.0) {
            return Err(crate::DeviceError::InvalidFrequency { frequency_ghz });
        }
        Ok(Self {
            phases,
            frequency_ghz,
            delay_line: false,
        })
    }

    /// The conventional 4-phase 5 GHz scheme used throughout the paper.
    pub fn four_phase_5ghz() -> Self {
        Self::new(4, crate::consts::CLOCK_FREQUENCY_GHZ).expect("4 >= 3")
    }

    /// The delay-line clocking variant (Section 6.1): phase count effectively
    /// 40, 5 ps stage-to-stage delay.
    pub fn delay_line_5ghz() -> Self {
        let mut s = Self::new(40, crate::consts::CLOCK_FREQUENCY_GHZ).expect("40 >= 3");
        s.delay_line = true;
        s
    }

    /// Number of clock phases.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    /// Stage-to-stage delay in ps.
    ///
    /// Conventional scheme: one phase slot = period / phases. With the
    /// 4-phase 5 GHz clock this is the paper's 50 ps. Delay-line scheme:
    /// fixed 5 ps.
    pub fn stage_delay_ps(&self) -> f64 {
        if self.delay_line {
            crate::consts::DELAY_LINE_STAGE_PS
        } else {
            self.period_ps() / self.phases as f64
        }
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> f64 {
        1000.0 / self.frequency_ghz
    }

    /// Maximum stage-depth difference two converging paths may have without
    /// any path-balancing buffer: `phases − 1`.
    ///
    /// With the standard 4-phase scheme the tolerance is 3 only between
    /// *non-adjacent* overlapping phases in principle, but conventional AQFP
    /// design practice requires every reconvergent path pair to be exactly
    /// balanced (skew 0 beyond one stage); raising the phase count relaxes
    /// this. We model the relaxation as: allowed skew = `phases / 4` stages
    /// for `phases ≥ 4`, i.e. the 4-phase baseline tolerates no skew (1-stage
    /// lockstep), 8-phase tolerates 2, 16-phase tolerates 4. This reproduces
    /// the direction and rough magnitude of the paper's buffer savings
    /// (≥ 20.8 % for 8-phase, ≥ 27.3 % for 16-phase on its benchmarks).
    pub fn allowed_skew(&self) -> u32 {
        (self.phases / 4).max(1)
    }

    /// Latency of a pipeline with `stages` logic stages, in ps.
    pub fn pipeline_latency_ps(&self, stages: u32) -> f64 {
        stages as f64 * self.stage_delay_ps()
    }
}

impl Default for ClockScheme {
    fn default() -> Self {
        Self::four_phase_5ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_phase_5ghz_has_50ps_stages() {
        let c = ClockScheme::four_phase_5ghz();
        assert_eq!(c.phases(), 4);
        assert!((c.stage_delay_ps() - 50.0).abs() < 1e-12);
        assert!((c.period_ps() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn delay_line_reduces_stage_delay() {
        let c = ClockScheme::delay_line_5ghz();
        assert_eq!(c.stage_delay_ps(), 5.0);
        assert_eq!(c.phases(), 40);
        // 10× faster stage-to-stage than the conventional scheme.
        let conv = ClockScheme::four_phase_5ghz();
        assert!((conv.stage_delay_ps() / c.stage_delay_ps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_too_few_phases() {
        assert!(ClockScheme::new(2, 5.0).is_err());
        assert!(ClockScheme::new(3, 5.0).is_ok());
    }

    #[test]
    fn rejects_bad_frequency() {
        assert!(ClockScheme::new(4, 0.0).is_err());
        assert!(ClockScheme::new(4, f64::NAN).is_err());
        assert!(ClockScheme::new(4, -1.0).is_err());
    }

    #[test]
    fn allowed_skew_grows_with_phases() {
        assert_eq!(ClockScheme::new(4, 5.0).unwrap().allowed_skew(), 1);
        assert_eq!(ClockScheme::new(8, 5.0).unwrap().allowed_skew(), 2);
        assert_eq!(ClockScheme::new(16, 5.0).unwrap().allowed_skew(), 4);
        assert_eq!(ClockScheme::new(3, 5.0).unwrap().allowed_skew(), 1);
    }

    #[test]
    fn pipeline_latency() {
        let c = ClockScheme::four_phase_5ghz();
        assert!((c.pipeline_latency_ps(10) - 500.0).abs() < 1e-12);
    }
}
