//! Device-level models of Adiabatic Quantum-Flux-Parametron (AQFP) logic.
//!
//! This crate is the lowest layer of the SupeRBNN reproduction. It models the
//! behaviour the paper relies on at the device level:
//!
//! * the **gray-zone switching law** of an AQFP buffer (paper Eq. 1): an AQFP
//!   buffer senses the *direction* of its input current, but when the
//!   magnitude of the input falls inside a finite gray-zone `ΔIin` the output
//!   becomes stochastic with probability
//!   `P(Iin) = 0.5 + 0.5·erf(√π · (Iin − Ith) / ΔIin)`;
//! * the **thermal/quantum noise model** that sets the gray-zone width as a
//!   function of temperature (the paper operates at 4.2 K and considers only
//!   thermal fluctuations);
//! * the **minimalist AQFP cell library** (buffer, inverter, AND, OR,
//!   3-input majority, splitter, read-out interface) with per-gate Josephson
//!   junction (JJ) counts, switching energy and latency;
//! * the **multi-phase excitation clock** that synchronizes every AQFP gate
//!   and determines pipeline latency.
//!
//! Everything upstream (netlists, crossbars, stochastic computing, the
//! SupeRBNN training loop) consumes these models rather than re-deriving
//! device physics.
//!
//! # Example
//!
//! ```
//! use aqfp_device::{AqfpBuffer, BufferConfig, DeviceRng, SeedableRng};
//!
//! // A buffer with the paper's default 2.4 µA gray-zone and zero threshold.
//! let buffer = AqfpBuffer::new(BufferConfig::default());
//! let mut rng = DeviceRng::seed_from_u64(42);
//!
//! // A strong positive current is always read as logic '1'.
//! assert_eq!(buffer.sense(70.0, &mut rng).to_value(), 1.0);
//! // Well inside the gray-zone the output probability is exactly 1/2.
//! assert!((buffer.probability_one(0.0) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod clock;
pub mod consts;
pub mod erf;
pub mod grayzone;
pub mod logic;
pub mod noise;
pub mod variation;

mod buffer;
mod error;

pub use buffer::{AqfpBuffer, BufferConfig, BufferMemory};
pub use cells::{CellLibrary, GateKind};
pub use clock::ClockScheme;
pub use error::DeviceError;
pub use grayzone::GrayZone;
pub use logic::Bit;
pub use variation::VariationModel;

/// Crate-wide result alias: every fallible device-layer API fails with
/// [`DeviceError`].
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Deterministic random-number generator used across the device layer.
///
/// All stochastic device behaviour in this workspace is driven through this
/// alias so experiments are reproducible from a single seed.
pub type DeviceRng = rand::rngs::StdRng;

// Re-export the trait so callers can write `DeviceRng::seed_from_u64(..)`
// without importing rand themselves.
pub use rand::SeedableRng;
