//! Temperature dependence of the gray-zone width.
//!
//! The paper (Section 4.2, citing Walls et al., PRL 89, 217004) notes that
//! the gray-zone width `ΔIin` *grows* at high temperature due to thermal
//! noise, and *saturates* as `T → 0` due to quantum fluctuations. Within the
//! paper's 4.2 K scope only thermal fluctuations are considered; we model the
//! crossover so the gray-zone width used everywhere is a calibrated function
//! of temperature rather than a magic number.
//!
//! Model: `Δ(T) = √(Δq² + (c·T)²)` — quadrature combination of a quantum
//! floor `Δq` and a thermally driven width linear in `T` (the linear-in-T
//! regime is the classical result for Josephson comparators). The constant
//! `c` is calibrated so `Δ(4.2 K) = 2.4 µA`, the paper's operating point, and
//! `Δq` is set to 25 % of that width so the curve visibly saturates below
//! ~1 K, qualitatively matching Walls et al. Fig. 2.

use serde::{Deserialize, Serialize};

/// Thermal + quantum gray-zone width model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Quantum-fluctuation floor of the gray-zone width, in µA.
    pub quantum_floor_ua: f64,
    /// Thermal slope `c` in µA per kelvin.
    pub thermal_slope_ua_per_k: f64,
}

impl NoiseModel {
    /// Calibrated default: `Δ(4.2 K) = 2.4 µA`, quantum floor `0.6 µA`.
    pub fn calibrated() -> Self {
        let quantum_floor_ua = 0.25 * crate::consts::DEFAULT_GRAYZONE_UA;
        let target = crate::consts::DEFAULT_GRAYZONE_UA;
        let t_op = crate::consts::OPERATING_TEMPERATURE_K;
        // Solve √(Δq² + (c·T)²) = target for c.
        let thermal = (target * target - quantum_floor_ua * quantum_floor_ua).sqrt();
        Self {
            quantum_floor_ua,
            thermal_slope_ua_per_k: thermal / t_op,
        }
    }

    /// Gray-zone width `Δ(T)` at temperature `temperature_k`, in µA.
    ///
    /// # Panics
    /// Panics if the temperature is negative or non-finite.
    pub fn grayzone_width_ua(&self, temperature_k: f64) -> f64 {
        assert!(
            temperature_k.is_finite() && temperature_k >= 0.0,
            "temperature must be non-negative, got {temperature_k}"
        );
        let thermal = self.thermal_slope_ua_per_k * temperature_k;
        (self.quantum_floor_ua * self.quantum_floor_ua + thermal * thermal).sqrt()
    }

    /// Convenience: the gray-zone law at a given temperature with threshold 0.
    pub fn grayzone_at(&self, temperature_k: f64) -> crate::GrayZone {
        crate::GrayZone::new(0.0, self.grayzone_width_ua(temperature_k))
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{DEFAULT_GRAYZONE_UA, OPERATING_TEMPERATURE_K};

    #[test]
    fn calibrated_at_operating_point() {
        let m = NoiseModel::calibrated();
        let w = m.grayzone_width_ua(OPERATING_TEMPERATURE_K);
        assert!((w - DEFAULT_GRAYZONE_UA).abs() < 1e-9);
    }

    #[test]
    fn saturates_at_zero_temperature() {
        let m = NoiseModel::calibrated();
        assert!((m.grayzone_width_ua(0.0) - m.quantum_floor_ua).abs() < 1e-12);
        // Below ~0.5 K the width is within 20 % of the quantum floor.
        assert!(m.grayzone_width_ua(0.5) < 1.2 * m.quantum_floor_ua);
    }

    #[test]
    fn grows_with_temperature() {
        let m = NoiseModel::calibrated();
        let mut prev = m.grayzone_width_ua(0.0);
        for t in [1.0, 2.0, 4.2, 10.0, 77.0] {
            let w = m.grayzone_width_ua(t);
            assert!(w > prev, "width must grow with T (at {t} K)");
            prev = w;
        }
    }

    #[test]
    fn asymptotically_linear_in_t() {
        let m = NoiseModel::calibrated();
        let w100 = m.grayzone_width_ua(100.0);
        let w200 = m.grayzone_width_ua(200.0);
        // At high T the quantum floor is negligible: ratio ≈ 2.
        assert!((w200 / w100 - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "temperature must be non-negative")]
    fn rejects_negative_temperature() {
        NoiseModel::calibrated().grayzone_width_ua(-1.0);
    }
}
