//! Physical constants and the paper's calibrated device parameters.
//!
//! All currents in this workspace are expressed in **micro-amperes (µA)**,
//! energies in **atto-joules (aJ)** and times in **pico-seconds (ps)** unless
//! a name says otherwise. These are the natural units of the paper's tables
//! (Table 1 reports aJ and ps directly).

/// Boltzmann constant in joules per kelvin.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Magnetic flux quantum `Φ0 = h / 2e` in webers.
pub const FLUX_QUANTUM_WB: f64 = 2.067_833_848e-15;

/// Operating temperature of the paper's liquid-helium testbed, in kelvin.
pub const OPERATING_TEMPERATURE_K: f64 = 4.2;

/// Liquid-nitrogen temperature used by the Cryo-CMOS comparison, in kelvin.
pub const LN2_TEMPERATURE_K: f64 = 77.0;

/// Input current amplitude that encodes the value `+1` / logic '1', in µA.
///
/// Section 4.2: "we use +70µA and −70µA to present value of +1 and −1".
pub const INPUT_CURRENT_UA: f64 = 70.0;

/// Default gray-zone width `ΔIin` of an AQFP buffer at 4.2 K, in µA.
///
/// The Fig. 10 experiments fix `ΔIin = 2.4 µA`; Fig. 4 shows the randomized
/// band reaching roughly ±2 µA, consistent with this width.
pub const DEFAULT_GRAYZONE_UA: f64 = 2.4;

/// Half-width of the visibly randomized switching band in Fig. 4, in µA.
pub const FIG4_RANDOM_BAND_UA: f64 = 2.0;

/// Energy dissipated per Josephson junction per clock cycle, in aJ.
///
/// Back-fitted exactly from Table 1 (e.g. 4×4 crossbar: 384 JJ, 1.92 aJ →
/// 5 zJ/JJ). All seven published rows reproduce to the printed precision.
pub const ENERGY_PER_JJ_AJ: f64 = 0.005;

/// Device-level energy per operation demonstrated for AQFP in 2019, in aJ
/// (1.4 zJ). Used for documentation-level sanity checks only.
pub const AQFP_DEVICE_ENERGY_AJ: f64 = 0.0014;

/// Stage-to-stage propagation delay of the 4-phase 5 GHz excitation, in ps.
pub const STAGE_DELAY_PS: f64 = 50.0;

/// Default excitation clock frequency, in GHz.
pub const CLOCK_FREQUENCY_GHZ: f64 = 5.0;

/// Delay-line clocking scheme stage delay, in ps (Section 6.1: "delaying the
/// sinusoidal current by 5 ps between each adjacent logic stage").
pub const DELAY_LINE_STAGE_PS: f64 = 5.0;

/// Cooling overhead for 4.2 K superconducting electronics.
///
/// Section 6.6: "The cooling cost for typical superconducting digital
/// circuits is about 400× the chip power dissipation".
pub const COOLING_OVERHEAD_4K: f64 = 400.0;

/// Cooling overhead for 77 K cryo-CMOS (Section 6.5: "approximately 9.65
/// times the device consumption").
pub const COOLING_OVERHEAD_77K: f64 = 9.65;

/// Efficiency gain of 77 K Cryo-CMOS over room-temperature CMOS
/// (Section 6.5: "about 1.5 times the energy efficiency").
pub const CRYO_CMOS_GAIN: f64 = 1.5;

/// Current-attenuation fit constant `A` (µA): output amplitude extrapolated
/// to a size-1 crossbar, equal to the drive amplitude.
pub const ATTENUATION_A_UA: f64 = 70.0;

/// Current-attenuation fit exponent `B` in `I1(Cs) = A · Cs^−B`.
///
/// The paper reports the fit form (Eq. 2) but not the constants. `B = 1.6`
/// is calibrated against three of the paper's qualitative anchors:
/// (a) "excessive current attenuation results in completely randomized
/// output" at the large end of Table 1's sizes — with `B = 1.6`,
/// `I1(144) ≈ 0.024 µA ≪ ΔIin`, i.e. fully random, while `B < 1` would
/// leave 144-row columns still deterministic; (b) the SC accumulation
/// design only helps if typical partial sums land *inside* the gray-zone
/// (otherwise the stochastic number degenerates to the partial sum's sign
/// and Fig. 10's strong bit-stream-length dependence cannot arise) — at the
/// default 16-row crossbar, `ΔVin(16) ≈ 3` matches the `√16 = 4` standard
/// deviation of a random ±1 partial sum; (c) the Fig. 11 accuracy cliff at
/// large crossbar sizes. See DESIGN.md §2 for the substitution note.
pub const ATTENUATION_B: f64 = 1.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_self_consistent() {
        // 5 GHz clock period is 200 ps = 4 stages of 50 ps.
        let period_ps = 1000.0 / CLOCK_FREQUENCY_GHZ;
        assert!((period_ps - 4.0 * STAGE_DELAY_PS).abs() < 1e-9);
    }

    #[test]
    fn table1_energy_fit_is_exact() {
        // 4×4 crossbar has 384 JJs and dissipates 1.92 aJ per cycle.
        assert!((384.0 * ENERGY_PER_JJ_AJ - 1.92).abs() < 1e-12);
        // 144×144 crossbar: 255744 JJs → 1278.72 aJ.
        assert!((255_744.0 * ENERGY_PER_JJ_AJ - 1278.72).abs() < 1e-9);
    }

    #[test]
    fn attenuation_constants_match_drive() {
        assert_eq!(ATTENUATION_A_UA, INPUT_CURRENT_UA);
        // Guard against accidental sign/magnitude edits during recalibration.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(ATTENUATION_B > 0.0 && ATTENUATION_B < 2.0);
        }
    }
}
