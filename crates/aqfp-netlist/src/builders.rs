//! Arithmetic circuit builders in AQFP majority logic.
//!
//! These are the digital blocks of the SC-based accumulation module
//! (paper Fig. 6b): popcount trees (the core of an approximate parallel
//! counter), ripple-carry adders and threshold comparators. They are built
//! from the minimalist cell library; the 3-input majority gate is the native
//! primitive, so full adders use the classical MAJ/INV construction.

use crate::graph::{Netlist, NodeId};
use aqfp_device::GateKind;

/// Adds a half adder; returns `(sum, carry)`.
///
/// `sum = XOR(a, b) = AND(OR(a, b), INV(AND(a, b)))`, `carry = AND(a, b)` —
/// four gates.
pub fn half_adder(nl: &mut Netlist, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let and_ab = nl.add_gate(GateKind::And, &[a, b]).expect("valid ids");
    let or_ab = nl.add_gate(GateKind::Or, &[a, b]).expect("valid ids");
    let nand_ab = nl
        .add_gate(GateKind::Inverter, &[and_ab])
        .expect("valid ids");
    let sum = nl
        .add_gate(GateKind::And, &[or_ab, nand_ab])
        .expect("valid ids");
    (sum, and_ab)
}

/// Adds a full adder; returns `(sum, carry)`.
///
/// Uses the majority-logic identity
/// `carry = MAJ(a, b, c)`,
/// `sum = MAJ(INV(carry), MAJ(a, b, INV(c)), c)` — five gates, the canonical
/// AQFP adder cell.
pub fn full_adder(nl: &mut Netlist, a: NodeId, b: NodeId, c: NodeId) -> (NodeId, NodeId) {
    let carry = nl
        .add_gate(GateKind::Majority, &[a, b, c])
        .expect("valid ids");
    let ncarry = nl
        .add_gate(GateKind::Inverter, &[carry])
        .expect("valid ids");
    let nc = nl.add_gate(GateKind::Inverter, &[c]).expect("valid ids");
    let m1 = nl
        .add_gate(GateKind::Majority, &[a, b, nc])
        .expect("valid ids");
    let sum = nl
        .add_gate(GateKind::Majority, &[ncarry, m1, c])
        .expect("valid ids");
    (sum, carry)
}

/// Builds a fresh netlist computing the population count of `n` inputs.
///
/// Returns `(netlist, input_ids, sum_bits)` with `sum_bits` little-endian;
/// the result has `⌈log2(n+1)⌉` bits. The construction is a Wallace-style
/// carry-save reduction: columns of equal bit-weight are reduced with full
/// and half adders until each column holds a single wire.
///
/// This is the digital heart of the approximate parallel counter (APC) used
/// by the SC accumulation module.
///
/// # Panics
/// Panics if `n == 0`.
pub fn popcount(n: usize) -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
    popcount_impl(n, 0)
}

/// Builds a popcount whose *first-level* reduction of the carry-save
/// columns with bit-weight below `approx_below_weight` uses the 2-gate
/// [`approx_full_adder`] instead of the exact 5-gate cell — the
/// gate-saving trick of Kim et al.'s *approximate* parallel counter
/// (paper Section 4.3 reference \[41\]).
///
/// Only the first level is approximated: that is where the column is
/// widest (most adders, biggest saving) and where each ±1 error is
/// smallest relative to the count; the compressed columns are then reduced
/// exactly so errors do not compound through the tree.
///
/// With `approx_below_weight == 0` this is exactly [`popcount`]. Each
/// approximate adder miscounts only the all-zeros (+1) and all-ones (−1)
/// input patterns, which are equally likely for near-balanced stochastic
/// bit-streams, so the counting error is small and approximately unbiased
/// — the property that lets SC accumulation tolerate it.
///
/// # Panics
/// Panics if `n == 0`.
pub fn approx_popcount(n: usize, approx_below_weight: u32) -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
    popcount_impl(n, approx_below_weight)
}

fn popcount_impl(n: usize, approx_below_weight: u32) -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
    assert!(n > 0, "popcount needs at least one input");
    let mut nl = Netlist::new();
    let inputs: Vec<NodeId> = (0..n).map(|_| nl.add_input()).collect();

    // columns[w] = wires of weight 2^w awaiting reduction.
    let mut columns: Vec<Vec<NodeId>> = vec![inputs.clone()];
    let mut level = 0u32;
    loop {
        let mut reduced = false;
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let approx = level == 0 && (w as u32) < approx_below_weight;
            let mut wires = col.clone();
            while wires.len() >= 3 {
                let c = wires.pop().unwrap();
                let b = wires.pop().unwrap();
                let a = wires.pop().unwrap();
                let (s, cy) = if approx {
                    approx_full_adder(&mut nl, a, b, c)
                } else {
                    full_adder(&mut nl, a, b, c)
                };
                next[w].push(s);
                next[w + 1].push(cy);
                reduced = true;
            }
            if wires.len() == 2 {
                let b = wires.pop().unwrap();
                let a = wires.pop().unwrap();
                let (s, cy) = half_adder(&mut nl, a, b);
                next[w].push(s);
                next[w + 1].push(cy);
                reduced = true;
            } else {
                next[w].extend(wires);
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
        level += 1;
        if !reduced {
            break;
        }
    }

    let sum_bits: Vec<NodeId> = columns
        .iter()
        .map(|col| {
            debug_assert_eq!(col.len(), 1, "reduction left a multi-wire column");
            col[0]
        })
        .collect();
    for &b in &sum_bits {
        nl.mark_output(b);
    }
    (nl, inputs, sum_bits)
}

/// Adds an *approximate* full adder; returns `(sum, carry)`.
///
/// `carry = MAJ(a, b, c)` is exact; `sum = INV(carry)` approximates the
/// exact XOR3 — two gates instead of five. The sum is wrong only for the
/// all-zeros input (reports 1, truth 0) and the all-ones input (reports 0,
/// truth 1); both errors have magnitude one at the adder's bit weight and
/// opposite signs.
pub fn approx_full_adder(nl: &mut Netlist, a: NodeId, b: NodeId, c: NodeId) -> (NodeId, NodeId) {
    let carry = nl
        .add_gate(GateKind::Majority, &[a, b, c])
        .expect("valid ids");
    let sum = nl
        .add_gate(GateKind::Inverter, &[carry])
        .expect("valid ids");
    (sum, carry)
}

/// Appends a ripple-carry adder of two little-endian operands already in
/// `nl`; returns the sum bits (one longer than the wider operand, the top
/// bit being the final carry).
///
/// # Panics
/// Panics if either operand is empty.
pub fn ripple_adder(nl: &mut Netlist, a_bits: &[NodeId], b_bits: &[NodeId]) -> Vec<NodeId> {
    assert!(
        !a_bits.is_empty() && !b_bits.is_empty(),
        "adder operands must be non-empty"
    );
    let width = a_bits.len().max(b_bits.len());
    let zero = nl.add_const(false);
    let mut carry = nl.add_const(false);
    let mut sum = Vec::with_capacity(width + 1);
    for i in 0..width {
        let a = a_bits.get(i).copied().unwrap_or(zero);
        let b = b_bits.get(i).copied().unwrap_or(zero);
        let (s, cy) = full_adder(nl, a, b, carry);
        sum.push(s);
        carry = cy;
    }
    sum.push(carry);
    sum
}

/// Adds a full adder built only from AND/OR/INV cells — the shape a
/// conventional (CMOS-oriented) synthesis flow produces before majority
/// re-synthesis; returns `(sum, carry)`.
///
/// `sum` is a two-level XOR cascade (each XOR = 4 AOI gates) and
/// `carry = OR(AND(a,b), AND(c, OR(a,b)))` — 12 gates against the native
/// 5-gate MAJ construction of [`full_adder`]. [`crate::synth::optimize`]
/// rewrites the carry back into one majority cell, which is the headline
/// rewrite of AQFP majority-logic synthesis (paper Section 7's EDA
/// discussion, Testa et al.).
pub fn full_adder_aoi(nl: &mut Netlist, a: NodeId, b: NodeId, c: NodeId) -> (NodeId, NodeId) {
    let (sum_ab, _) = half_adder(nl, a, b); // XOR(a, b) + an unused carry
    let (sum, _) = half_adder(nl, sum_ab, c); // XOR(XOR(a, b), c)
    let and_ab = nl.add_gate(GateKind::And, &[a, b]).expect("valid ids");
    let or_ab = nl.add_gate(GateKind::Or, &[a, b]).expect("valid ids");
    let c_or = nl.add_gate(GateKind::And, &[c, or_ab]).expect("valid ids");
    let carry = nl
        .add_gate(GateKind::Or, &[and_ab, c_or])
        .expect("valid ids");
    (sum, carry)
}

/// Builds a fresh `width`-bit ripple-carry adder from AOI-only full adders
/// ([`full_adder_aoi`]); returns `(netlist, a_inputs, b_inputs, sum_bits)`
/// with the final carry as the top sum bit.
///
/// The canonical before-netlist for demonstrating majority re-synthesis.
///
/// # Panics
/// Panics if `width == 0`.
pub fn ripple_adder_aoi(width: usize) -> (Netlist, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    assert!(width > 0, "adder needs at least one bit");
    let mut nl = Netlist::new();
    let a_bits: Vec<NodeId> = (0..width).map(|_| nl.add_input()).collect();
    let b_bits: Vec<NodeId> = (0..width).map(|_| nl.add_input()).collect();
    let mut carry = nl.add_const(false);
    let mut sum = Vec::with_capacity(width + 1);
    for i in 0..width {
        let (s, cy) = full_adder_aoi(&mut nl, a_bits[i], b_bits[i], carry);
        sum.push(s);
        carry = cy;
    }
    sum.push(carry);
    for &s in &sum {
        nl.mark_output(s);
    }
    (nl, a_bits, b_bits, sum)
}

/// Builds one combinational cycle of the *conventional accumulative
/// parallel counter* (Parhami & Yeh, paper Section 4.3 reference \[53\]):
/// a popcount of the `n` fresh inputs plus a ripple-carry add into a
/// running total of `acc_width` bits.
///
/// Returns `(netlist, data_inputs, acc_inputs, next_acc_bits)`. The
/// accumulator register itself (buffer-chain memory, `acc_width + 1`
/// cells) is charged separately by the cost comparison, since memory cells
/// are clocked independently (Section 4.4).
///
/// This is the design the paper's APC choice is measured against: "This
/// method consumes fewer logic gates compared with the conventional
/// accumulative parallel counter".
///
/// # Panics
/// Panics if `n == 0` or `acc_width == 0`.
pub fn accumulative_counter(
    n: usize,
    acc_width: usize,
) -> (Netlist, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    assert!(n > 0, "counter needs at least one input");
    assert!(acc_width > 0, "accumulator needs at least one bit");
    let (mut nl, data_inputs, count_bits) = popcount(n);
    let acc_inputs: Vec<NodeId> = (0..acc_width).map(|_| nl.add_input()).collect();
    let next_acc = ripple_adder(&mut nl, &acc_inputs, &count_bits);
    nl.clear_outputs();
    for &b in &next_acc {
        nl.mark_output(b);
    }
    (nl, data_inputs, acc_inputs, next_acc)
}

/// Appends a `value ≥ threshold` comparator for an unsigned little-endian
/// binary number already present in `nl`.
///
/// Computes the borrow chain of `value − threshold`; the output is the
/// negated final borrow. Threshold bits enter as constant bias lines (free).
/// Returns the output node.
///
/// # Panics
/// Panics if `threshold` does not fit in `bits.len()` bits.
pub fn comparator_ge(nl: &mut Netlist, bits: &[NodeId], threshold: u64) -> NodeId {
    assert!(
        bits.len() >= 64 || threshold < (1u64 << bits.len()),
        "threshold {threshold} does not fit in {} bits",
        bits.len()
    );
    let mut borrow = nl.add_const(false);
    for (i, &bit) in bits.iter().enumerate() {
        let t = nl.add_const((threshold >> i) & 1 == 1);
        let na = nl.add_gate(GateKind::Inverter, &[bit]).expect("valid ids");
        // borrow_{i+1} = MAJ(¬a_i, t_i, borrow_i)
        borrow = nl
            .add_gate(GateKind::Majority, &[na, t, borrow])
            .expect("valid ids");
    }
    nl.add_gate(GateKind::Inverter, &[borrow])
        .expect("valid ids")
}

/// Builds a fresh netlist computing `popcount(inputs) ≥ threshold` — the
/// APC-plus-comparator pipeline of the SC accumulation module, used both for
/// functional validation and JJ/energy costing.
pub fn popcount_ge(n: usize, threshold: u64) -> (Netlist, Vec<NodeId>, NodeId) {
    let (mut nl, inputs, sum_bits) = popcount(n);
    let out = comparator_ge(&mut nl, &sum_bits, threshold);
    nl.clear_outputs();
    nl.mark_output(out);
    (nl, inputs, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(nl: &Netlist, inputs: &[bool]) -> u64 {
        let outs = nl.eval(inputs).unwrap();
        outs.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn half_adder_truth_table() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut nl = Netlist::new();
            let ia = nl.add_input();
            let ib = nl.add_input();
            let (s, c) = half_adder(&mut nl, ia, ib);
            nl.mark_output(s);
            nl.mark_output(c);
            let out = nl.eval(&[a, b]).unwrap();
            assert_eq!(out[0], a ^ b, "sum({a},{b})");
            assert_eq!(out[1], a && b, "carry({a},{b})");
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for m in 0..8u32 {
            let (a, b, c) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            let mut nl = Netlist::new();
            let ia = nl.add_input();
            let ib = nl.add_input();
            let ic = nl.add_input();
            let (s, cy) = full_adder(&mut nl, ia, ib, ic);
            nl.mark_output(s);
            nl.mark_output(cy);
            let out = nl.eval(&[a, b, c]).unwrap();
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(out[0], total & 1 == 1, "sum at {m}");
            assert_eq!(out[1], total >= 2, "carry at {m}");
        }
    }

    #[test]
    fn approx_full_adder_wrong_only_at_extremes() {
        for m in 0..8u32 {
            let (a, b, c) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            let mut nl = Netlist::new();
            let ia = nl.add_input();
            let ib = nl.add_input();
            let ic = nl.add_input();
            let (s, cy) = approx_full_adder(&mut nl, ia, ib, ic);
            nl.mark_output(s);
            nl.mark_output(cy);
            let out = nl.eval(&[a, b, c]).unwrap();
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(out[1], total >= 2, "carry is always exact at {m}");
            if m == 0 {
                assert!(out[0], "000 miscounts +1");
            } else if m == 7 {
                assert!(!out[0], "111 miscounts −1");
            } else {
                assert_eq!(out[0], total & 1 == 1, "sum exact at {m}");
            }
        }
    }

    #[test]
    fn approx_popcount_with_zero_levels_is_exact() {
        for n in [1usize, 4, 7] {
            let exact = popcount(n).0;
            let approx = approx_popcount(n, 0).0;
            assert_eq!(exact.len(), approx.len(), "n={n}");
            for m in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!(exact.eval(&inputs).unwrap(), approx.eval(&inputs).unwrap());
            }
        }
    }

    #[test]
    fn approx_popcount_saves_gates_and_bounds_error() {
        let n = 16usize;
        let (exact_nl, _, _) = popcount(n);
        let (approx_nl, _, _) = approx_popcount(n, 1);
        assert!(
            approx_nl.len() < exact_nl.len(),
            "approximation should shed gates: {} vs {}",
            approx_nl.len(),
            exact_nl.len()
        );
        // Sampled error: each weight-0 approximate adder contributes ±1.
        let adders_at_w0 = n / 3 + 1;
        let mut worst = 0i64;
        let mut total = 0i64;
        let mut patterns = 0i64;
        for m in (0..(1u32 << n)).step_by(131) {
            let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let truth = inputs.iter().filter(|&&b| b).count() as i64;
            let got = eval_bits(&approx_nl, &inputs) as i64;
            worst = worst.max((got - truth).abs());
            total += got - truth;
            patterns += 1;
        }
        assert!(worst <= adders_at_w0 as i64, "error bound: worst {worst}");
        // Unbiasedness over the (symmetric) sampled pattern set.
        assert!(
            (total as f64 / patterns as f64).abs() < 1.0,
            "mean error should be small: {total}/{patterns}"
        );
    }

    #[test]
    fn ripple_adder_exhaustive_3_plus_2_bits() {
        for a in 0..8u64 {
            for b in 0..4u64 {
                let mut nl = Netlist::new();
                let a_bits: Vec<NodeId> = (0..3).map(|_| nl.add_input()).collect();
                let b_bits: Vec<NodeId> = (0..2).map(|_| nl.add_input()).collect();
                let sum = ripple_adder(&mut nl, &a_bits, &b_bits);
                for &s in &sum {
                    nl.mark_output(s);
                }
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push((a >> i) & 1 == 1);
                }
                for i in 0..2 {
                    inputs.push((b >> i) & 1 == 1);
                }
                assert_eq!(eval_bits(&nl, &inputs), a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn accumulative_counter_steps_running_total() {
        let n = 5usize;
        let acc_width = 6usize;
        let (nl, _, _, _) = accumulative_counter(n, acc_width);
        // Simulate three cycles: feed back next_acc into acc inputs.
        let words = [0b10110u32, 0b00111, 0b11111];
        let mut acc = 0u64;
        for w in words {
            let mut inputs: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
            for i in 0..acc_width {
                inputs.push((acc >> i) & 1 == 1);
            }
            let next = eval_bits(&nl, &inputs);
            acc += u64::from(w.count_ones());
            assert_eq!(next, acc);
        }
    }

    #[test]
    fn aoi_adder_is_functionally_an_adder() {
        let (nl, _, _, _) = ripple_adder_aoi(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push((b >> i) & 1 == 1);
                }
                assert_eq!(eval_bits(&nl, &inputs), a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn aoi_adder_costs_more_gates_than_majority_form() {
        let (aoi, _, _, _) = ripple_adder_aoi(4);
        let mut maj = Netlist::new();
        let a_bits: Vec<NodeId> = (0..4).map(|_| maj.add_input()).collect();
        let b_bits: Vec<NodeId> = (0..4).map(|_| maj.add_input()).collect();
        let sum = ripple_adder(&mut maj, &a_bits, &b_bits);
        for &s in &sum {
            maj.mark_output(s);
        }
        assert!(aoi.len() > maj.len(), "{} vs {}", aoi.len(), maj.len());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ripple_adder_rejects_empty_operand() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        ripple_adder(&mut nl, &[a], &[]);
    }

    #[test]
    fn popcount_exhaustive_small() {
        for n in 1..=6usize {
            let (nl, _, sum_bits) = popcount(n);
            // The carry-save reduction may emit one structurally-zero top
            // bit (a half-adder carry that can never fire).
            let needed = (usize::BITS - n.leading_zeros()) as usize;
            assert!(
                sum_bits.len() >= needed && sum_bits.len() <= needed + 1,
                "n={n}: {} bits, need {needed}",
                sum_bits.len()
            );
            for m in 0..(1usize << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                let want = inputs.iter().filter(|&&b| b).count() as u64;
                assert_eq!(eval_bits(&nl, &inputs), want, "n={n} m={m:b}");
            }
        }
    }

    #[test]
    fn popcount_16_spot_checks() {
        let (nl, _, _) = popcount(16);
        let all = vec![true; 16];
        assert_eq!(eval_bits(&nl, &all), 16);
        let none = vec![false; 16];
        assert_eq!(eval_bits(&nl, &none), 0);
        let mut half = vec![false; 16];
        for i in (0..16).step_by(2) {
            half[i] = true;
        }
        assert_eq!(eval_bits(&nl, &half), 8);
    }

    #[test]
    fn comparator_exhaustive() {
        for threshold in 0..=8u64 {
            let (nl, _, _) = popcount_ge(8, threshold);
            for m in 0..256usize {
                let inputs: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
                let ones = inputs.iter().filter(|&&b| b).count() as u64;
                let out = nl.eval(&inputs).unwrap();
                assert_eq!(out, vec![ones >= threshold], "m={m:08b} T={threshold}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn popcount_zero_panics() {
        popcount(0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn comparator_threshold_overflow_panics() {
        let (mut nl, _, sum) = popcount(3); // 2 bits
        comparator_ge(&mut nl, &sum, 4);
    }
}
