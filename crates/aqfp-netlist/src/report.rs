//! JJ, energy and latency accounting for netlists.

use crate::graph::{Netlist, Node};
use aqfp_device::{CellLibrary, ClockScheme, GateKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hardware cost summary of one netlist under one clock scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Total Josephson junction count.
    pub jj_total: u64,
    /// JJ count per gate kind.
    pub jj_by_kind: HashMap<GateKind, u64>,
    /// Total gate count (excluding inputs/constants).
    pub gate_count: usize,
    /// Pipeline depth in stages.
    pub depth: u32,
    /// End-to-end latency in ps.
    pub latency_ps: f64,
    /// Energy dissipated per clock cycle, in aJ (every AQFP gate switches
    /// every cycle — the excitation powers all of them).
    pub energy_per_cycle_aj: f64,
}

impl CostReport {
    /// Energy per completed computation in aJ, assuming the pipeline is kept
    /// full: each result occupies every stage once, so the energy per result
    /// equals the energy per cycle.
    pub fn energy_per_result_aj(&self) -> f64 {
        self.energy_per_cycle_aj
    }

    /// Power at the given clock frequency, in nW
    /// (aJ/cycle × GHz = 1e-18 J × 1e9 /s = nW).
    pub fn power_nw(&self, frequency_ghz: f64) -> f64 {
        self.energy_per_cycle_aj * frequency_ghz
    }
}

/// Computes the cost report of a netlist.
pub fn cost_report(nl: &Netlist, lib: &CellLibrary, clock: &ClockScheme) -> CostReport {
    let mut jj_total = 0u64;
    let mut jj_by_kind: HashMap<GateKind, u64> = HashMap::new();
    let mut gate_count = 0usize;
    for (_, node) in nl.iter() {
        if let Node::Gate { kind, .. } = node {
            let jj = lib.cost(*kind).jj_count as u64;
            jj_total += jj;
            *jj_by_kind.entry(*kind).or_insert(0) += jj;
            gate_count += 1;
        }
    }
    let depth = nl.depth();
    CostReport {
        jj_total,
        jj_by_kind,
        gate_count,
        depth,
        latency_ps: clock.pipeline_latency_ps(depth),
        energy_per_cycle_aj: jj_total as f64 * lib.energy_per_jj_aj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_one_gate() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let o = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(o);
        let rep = cost_report(&nl, &CellLibrary::hstp(), &ClockScheme::four_phase_5ghz());
        assert_eq!(rep.jj_total, 6);
        assert_eq!(rep.gate_count, 1);
        assert_eq!(rep.depth, 1);
        assert!((rep.latency_ps - 50.0).abs() < 1e-12);
        assert!((rep.energy_per_cycle_aj - 0.03).abs() < 1e-12);
    }

    #[test]
    fn inputs_and_constants_cost_nothing() {
        let mut nl = Netlist::new();
        nl.add_input();
        nl.add_const(true);
        let rep = cost_report(&nl, &CellLibrary::hstp(), &ClockScheme::four_phase_5ghz());
        assert_eq!(rep.jj_total, 0);
        assert_eq!(rep.gate_count, 0);
        assert_eq!(rep.energy_per_cycle_aj, 0.0);
    }

    #[test]
    fn power_conversion() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let o = nl.add_gate(GateKind::Buffer, &[a]).unwrap();
        nl.mark_output(o);
        let rep = cost_report(&nl, &CellLibrary::hstp(), &ClockScheme::four_phase_5ghz());
        // 2 JJ × 0.005 aJ = 0.01 aJ/cycle; at 5 GHz → 0.05 nW.
        assert!((rep.power_nw(5.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn jj_by_kind_partitions_total() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Inverter, &[x]).unwrap();
        nl.mark_output(y);
        let rep = cost_report(&nl, &CellLibrary::hstp(), &ClockScheme::four_phase_5ghz());
        let sum: u64 = rep.jj_by_kind.values().sum();
        assert_eq!(sum, rep.jj_total);
        assert_eq!(rep.jj_by_kind[&GateKind::And], 6);
        assert_eq!(rep.jj_by_kind[&GateKind::Inverter], 2);
    }
}
