//! Gate-level AQFP netlists: construction, simulation, fan-out legalization,
//! path balancing and n-phase clocking optimization.
//!
//! AQFP is a *fully pipelined* logic family: every gate is clocked, data
//! advances one logic stage per clock phase, and any two signals converging
//! on a gate must arrive in (nearly) the same stage. Conventional 4-phase
//! designs therefore spend a large fraction of their Josephson junctions on
//! *path-balancing buffers*. Section 4.4 of the SupeRBNN paper observes that
//! raising the clock phase count (8, 16) lets signals legally skip stages,
//! removing ≥ 20.8 % / ≥ 27.3 % of the total JJ count, and that dropping the
//! buffer-chain memory from 4 to 3 phases saves 20 % of the memory JJs.
//!
//! This crate provides the machinery to *measure* those claims on concrete
//! netlists:
//!
//! * [`Netlist`] — a DAG of AQFP standard cells with functional simulation;
//! * [`legalize_fanout`](balance::legalize_fanout) — splitter-tree insertion
//!   (AQFP gates drive exactly one consumer);
//! * [`balance`](balance::balance) — path-balancing buffer insertion under a
//!   [`ClockScheme`](aqfp_device::ClockScheme) skew tolerance;
//! * [`builders`] — ripple-carry adders, popcount trees and comparators used
//!   by the stochastic-computing layer;
//! * [`random`] — reproducible random benchmark DAGs;
//! * [`clocking`] — the Section 4.4 experiment (computing part + BCM memory);
//! * [`synth`] — technology-independent optimization passes (constant
//!   folding, algebraic rules, majority re-synthesis, structural hashing,
//!   dead-gate sweep) in the spirit of the AQFP EDA flow the paper's
//!   discussion section describes.
//!
//! # Example
//!
//! ```
//! use aqfp_netlist::{builders, balance};
//! use aqfp_device::ClockScheme;
//!
//! // An 8-input popcount tree, legalized and balanced for 4-phase clocking.
//! let (mut nl, inputs, _sum) = builders::popcount(8);
//! balance::legalize_fanout(&mut nl);
//! let report = balance::balance(&mut nl, &ClockScheme::four_phase_5ghz());
//! assert!(report.buffers_inserted > 0);
//! assert_eq!(inputs.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod builders;
pub mod clocking;
pub mod random;
pub mod report;
pub mod synth;

mod graph;

pub use graph::{Netlist, NetlistError, Node, NodeId};

/// Crate-wide result alias: every fallible netlist API fails with
/// [`NetlistError`].
pub type Result<T> = std::result::Result<T, NetlistError>;
