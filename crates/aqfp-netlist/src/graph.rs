//! The netlist DAG: nodes, construction invariants, simulation, levelization.

use aqfp_device::cells::eval_gate;
use aqfp_device::GateKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`Netlist`].
///
/// Ids are dense indices; they are only meaningful for the netlist that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node of the netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A primary input.
    Input,
    /// A constant bias line (no JJ cost; realized by a DC offset).
    Const(bool),
    /// A standard-cell gate reading earlier nodes.
    Gate {
        /// The cell kind.
        kind: GateKind,
        /// Producer nodes, length = `kind.arity()`.
        inputs: Vec<NodeId>,
    },
}

/// Errors raised by netlist construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate referenced a node id not yet defined (would create a cycle or
    /// dangling edge).
    ForwardReference {
        /// The offending reference.
        referenced: usize,
        /// Number of nodes defined so far.
        defined: usize,
    },
    /// A gate was given the wrong number of inputs.
    WrongArity {
        /// The cell kind.
        kind: GateKind,
        /// Expected input count.
        expected: usize,
        /// Provided input count.
        got: usize,
    },
    /// Simulation was invoked with the wrong number of primary input values.
    WrongInputCount {
        /// Expected primary input count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference {
                referenced,
                defined,
            } => write!(
                f,
                "gate references node {referenced} but only {defined} nodes are defined \
                 (netlists are built in topological order)"
            ),
            NetlistError::WrongArity {
                kind,
                expected,
                got,
            } => {
                write!(f, "gate {kind:?} expects {expected} inputs, got {got}")
            }
            NetlistError::WrongInputCount { expected, got } => {
                write!(f, "netlist has {expected} primary inputs, got {got} values")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A combinational AQFP netlist (a DAG of standard cells).
///
/// Nodes must be appended in topological order: a gate may only reference
/// already-defined nodes. This makes cycles unrepresentable and turns both
/// simulation and levelization into single forward passes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (inputs + constants + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Ids of the primary inputs, in creation order.
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n, Node::Input))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Input))
            .count()
    }

    /// The designated output nodes, in the order they were marked.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self) -> NodeId {
        self.nodes.push(Node::Input);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a constant bias line.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.nodes.push(Node::Const(value));
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a gate reading `inputs` and returns its id.
    ///
    /// # Errors
    /// [`NetlistError::WrongArity`] if `inputs.len() != kind.arity()`;
    /// [`NetlistError::ForwardReference`] if any input id is not yet defined.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NodeId]) -> crate::Result<NodeId> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::WrongArity {
                kind,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        for &inp in inputs {
            if inp.0 >= self.nodes.len() {
                return Err(NetlistError::ForwardReference {
                    referenced: inp.0,
                    defined: self.nodes.len(),
                });
            }
        }
        self.nodes.push(Node::Gate {
            kind,
            inputs: inputs.to_vec(),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Marks a node as a primary output.
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// Removes all output markings (the nodes themselves remain).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Simulates the netlist on boolean input values (given in primary-input
    /// creation order) and returns the values of the designated outputs.
    ///
    /// Buffers, splitters and read-outs are identities; the simulation is
    /// purely functional (no gray-zone noise — stochastic behaviour belongs
    /// to the analog crossbar layer, not to digital AQFP logic, whose drive
    /// currents sit far outside the gray-zone).
    ///
    /// # Errors
    /// [`NetlistError::WrongInputCount`] on input-count mismatch.
    pub fn eval(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        let values = self.eval_all(inputs)?;
        Ok(self.outputs.iter().map(|&id| values[id.0]).collect())
    }

    /// Like [`Netlist::eval`] but returns the value of *every* node.
    pub fn eval_all(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        let expected = self.input_count();
        if inputs.len() != expected {
            return Err(NetlistError::WrongInputCount {
                expected,
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        let mut scratch: Vec<bool> = Vec::with_capacity(3);
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Const(v) => *v,
                Node::Gate { kind, inputs } => {
                    scratch.clear();
                    scratch.extend(inputs.iter().map(|&id| values[id.0]));
                    eval_gate(*kind, &scratch)
                }
            };
        }
        Ok(values)
    }

    /// Logic level of every node: inputs and constants sit at level 0, a
    /// gate at `1 + max(level of producers)`. This is the ASAP pipeline
    /// stage of the gate before any buffering.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Gate { inputs, .. } = node {
                levels[i] = 1 + inputs.iter().map(|&id| levels[id.0]).max().unwrap_or(0);
            }
        }
        levels
    }

    /// The pipeline depth (maximum level over all nodes).
    pub fn depth(&self) -> u32 {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// As-late-as-possible stage of every node: gates are pushed toward the
    /// pipeline depth as far as their consumers allow; inputs and constants
    /// stay at stage 0 (they physically arrive there). A gate with no
    /// consumers sits at the full depth.
    ///
    /// ALAP scheduling trades where balancing buffers go: it shortens the
    /// early edges of high-fanout sources at the cost of longer input
    /// edges — the classic ASAP/ALAP buffer-count trade-off explored by the
    /// scheduling ablation bench.
    pub fn levels_alap(&self) -> Vec<u32> {
        let depth = self.depth();
        let mut levels = vec![depth; self.nodes.len()];
        // Reverse topological order: consumers are processed before
        // producers, so `levels[producer]` can take the min over consumers.
        for (i, node) in self.nodes.iter().enumerate().rev() {
            if let Node::Gate { inputs, .. } = node {
                for &inp in inputs {
                    levels[inp.0] = levels[inp.0].min(levels[i].saturating_sub(1));
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !matches!(node, Node::Gate { .. }) {
                levels[i] = 0;
            }
        }
        levels
    }

    /// Number of consumers of each node (graph fan-out).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let Node::Gate { inputs, .. } = node {
                for &id in inputs {
                    counts[id.0] += 1;
                }
            }
        }
        counts
    }

    /// Count of gates of each kind currently in the netlist.
    pub fn gate_histogram(&self) -> std::collections::HashMap<GateKind, usize> {
        let mut hist = std::collections::HashMap::new();
        for node in &self.nodes {
            if let Node::Gate { kind, .. } = node {
                *hist.entry(*kind).or_insert(0) += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_via_majority(nl: &mut Netlist, a: NodeId, b: NodeId) -> NodeId {
        // XOR(a,b) = OR(AND(a, !b), AND(!a, b))
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let nb = nl.add_gate(GateKind::Inverter, &[b]).unwrap();
        let t1 = nl.add_gate(GateKind::And, &[a, nb]).unwrap();
        let t2 = nl.add_gate(GateKind::And, &[na, b]).unwrap();
        nl.add_gate(GateKind::Or, &[t1, t2]).unwrap()
    }

    #[test]
    fn builds_and_evaluates_xor() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = xor_via_majority(&mut nl, a, b);
        nl.mark_output(x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = nl.eval(&[va, vb]).unwrap();
            assert_eq!(out, vec![va ^ vb], "XOR({va},{vb})");
        }
    }

    #[test]
    fn constants_participate() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let one = nl.add_const(true);
        let o = nl.add_gate(GateKind::And, &[a, one]).unwrap();
        nl.mark_output(o);
        assert_eq!(nl.eval(&[true]).unwrap(), vec![true]);
        assert_eq!(nl.eval(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let err = nl.add_gate(GateKind::Majority, &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::WrongArity { .. }));
    }

    #[test]
    fn rejects_forward_reference() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let bogus = NodeId(99);
        let err = nl.add_gate(GateKind::And, &[a, bogus]).unwrap_err();
        assert!(matches!(err, NetlistError::ForwardReference { .. }));
    }

    #[test]
    fn rejects_wrong_input_count() {
        let mut nl = Netlist::new();
        nl.add_input();
        nl.add_input();
        let err = nl.eval(&[true]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::WrongInputCount {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn levels_are_longest_paths() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let buf = nl.add_gate(GateKind::Buffer, &[a]).unwrap(); // level 1
        let and = nl.add_gate(GateKind::And, &[buf, b]).unwrap(); // level 2
        let levels = nl.levels();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[buf.index()], 1);
        assert_eq!(levels[and.index()], 2);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn fanout_counts_consumers() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let fo = nl.fanout_counts();
        assert_eq!(fo[a.index()], 3);
        assert_eq!(fo[b.index()], 2);
    }

    #[test]
    fn histogram_counts_gates() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_gate(GateKind::And, &[b, a]).unwrap();
        nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let h = nl.gate_histogram();
        assert_eq!(h[&GateKind::And], 2);
        assert_eq!(h[&GateKind::Inverter], 1);
        assert!(!h.contains_key(&GateKind::Majority));
    }

    #[test]
    fn empty_netlist() {
        let nl = Netlist::new();
        assert!(nl.is_empty());
        assert_eq!(nl.depth(), 0);
        assert_eq!(nl.eval(&[]).unwrap(), Vec::<bool>::new());
    }
}
