//! The Section 4.4 experiment: clocking-scheme adjustment as a circuit
//! optimization.
//!
//! Two independent knobs:
//!
//! 1. **Computing part.** Raising the clock from 4 to 8/16 phases lets data
//!    coast across more stages per hop, removing path-balancing buffers.
//!    The paper: "the total Josephson junction (JJ) count can be reduced by
//!    at least 20.8 % and 27.3 %, assuming 8-phase and 16-phase clocking".
//! 2. **Memory (BCM).** The buffer-chain memory is fully balanced by
//!    construction and clocked independently of the logic; each stored bit
//!    circulates through one buffer per clock phase, so dropping the memory
//!    clock from 4 to 3 phases removes a quarter of the storage buffers —
//!    "a 20 % reduction in the total JJ count of the memory component" once
//!    the phase-independent read-out overhead is included.

use crate::balance::{balance, legalize_fanout};
use crate::graph::Netlist;
use crate::report::{cost_report, CostReport};
use aqfp_device::{CellLibrary, ClockScheme};
use serde::{Deserialize, Serialize};

/// Result of re-balancing one netlist under one phase count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Clock phases used.
    pub phases: u32,
    /// Buffers inserted for path balancing.
    pub buffers: usize,
    /// Full cost report of the balanced netlist.
    pub cost: CostReport,
    /// JJ reduction relative to the 4-phase baseline (0.208 = 20.8 %).
    pub jj_reduction_vs_4phase: f64,
}

/// Runs the computing-part clocking study on `base`: legalizes fan-out once,
/// then balances a fresh copy under each phase count and reports JJ savings
/// relative to the 4-phase baseline.
///
/// # Panics
/// Panics if `phase_counts` does not contain 4 (the baseline) or contains a
/// value below 3.
pub fn clocking_study(base: &Netlist, phase_counts: &[u32], lib: &CellLibrary) -> Vec<PhaseResult> {
    assert!(
        phase_counts.contains(&4),
        "the study needs the 4-phase baseline"
    );
    let mut legal = base.clone();
    legalize_fanout(&mut legal);

    let mut results: Vec<(u32, usize, CostReport)> = Vec::new();
    for &phases in phase_counts {
        let clock = ClockScheme::new(phases, aqfp_device::consts::CLOCK_FREQUENCY_GHZ)
            .expect("phase count >= 3");
        let mut nl = legal.clone();
        let report = balance(&mut nl, &clock);
        let cost = cost_report(&nl, lib, &clock);
        results.push((phases, report.buffers_inserted, cost));
    }

    let baseline_jj = results
        .iter()
        .find(|(p, _, _)| *p == 4)
        .map(|(_, _, c)| c.jj_total)
        .expect("baseline present") as f64;

    results
        .into_iter()
        .map(|(phases, buffers, cost)| PhaseResult {
            phases,
            buffers,
            jj_reduction_vs_4phase: 1.0 - cost.jj_total as f64 / baseline_jj,
            cost,
        })
        .collect()
}

/// Result of the delay-line clocking comparison (paper Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayLineResult {
    /// Cost of the netlist balanced for the conventional 4-phase scheme.
    pub conventional: CostReport,
    /// Cost of the netlist balanced for the delay-line scheme (effective
    /// 40 phases, 5 ps stage-to-stage delay).
    pub delay_line: CostReport,
}

impl DelayLineResult {
    /// End-to-end latency speed-up of the delay-line scheme.
    pub fn latency_speedup(&self) -> f64 {
        self.conventional.latency_ps / self.delay_line.latency_ps
    }

    /// JJ reduction of the delay-line scheme (its 40 effective phases also
    /// relax path balancing), `0.25` = 25 %.
    pub fn jj_reduction(&self) -> f64 {
        1.0 - self.delay_line.jj_total as f64 / self.conventional.jj_total as f64
    }
}

/// Compares conventional 4-phase clocking with the delay-line
/// (micro-stripline) scheme of Section 6.1: "This approach effectively
/// increases the total clock phases to 40 by delaying the sinusoidal
/// current by 5 ps between each adjacent logic stage", cutting the
/// stage-to-stage delay from 50 ps to 5 ps *and* relaxing path balancing.
pub fn delay_line_study(base: &Netlist, lib: &CellLibrary) -> DelayLineResult {
    let mut legal = base.clone();
    legalize_fanout(&mut legal);

    let run = |clock: &ClockScheme| {
        let mut nl = legal.clone();
        balance(&mut nl, clock);
        cost_report(&nl, lib, clock)
    };
    DelayLineResult {
        conventional: run(&ClockScheme::four_phase_5ghz()),
        delay_line: run(&ClockScheme::delay_line_5ghz()),
    }
}

/// Buffer-chain memory (BCM) model.
///
/// Each stored bit occupies one buffer per clock phase (the bit circulates
/// once per clock period). Read-out, addressing and excitation interfaces
/// are phase-independent; their JJ cost is modelled as a fixed fraction of
/// the 4-phase storage cost, calibrated so the paper's 4→3-phase saving is
/// exactly 20 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BcmMemory {
    /// Storage capacity in bits.
    pub bits: usize,
    /// Clock phases of the (independent) memory clock.
    pub phases: u32,
}

/// Phase-independent overhead as a fraction of the 4-phase storage JJ.
/// With overhead `v·B₄` and storage `(p/4)·B₄`, the 4→3-phase saving is
/// `(1/4)/(1 + v)`; `v = 1/4` yields the paper's 20 %.
const BCM_OVERHEAD_FRACTION: f64 = 0.25;

impl BcmMemory {
    /// JJs per buffer cell.
    const JJ_PER_BUFFER: f64 = 2.0;

    /// Creates a BCM.
    ///
    /// # Errors
    /// Returns [`aqfp_device::DeviceError::InvalidClockPhases`] for fewer
    /// than 3 phases.
    pub fn new(bits: usize, phases: u32) -> aqfp_device::Result<Self> {
        if phases < ClockScheme::MIN_PHASES {
            return Err(aqfp_device::DeviceError::InvalidClockPhases { phases });
        }
        Ok(Self { bits, phases })
    }

    /// Storage-buffer JJ count at this phase count.
    pub fn storage_jj(&self) -> f64 {
        self.bits as f64 * self.phases as f64 * Self::JJ_PER_BUFFER
    }

    /// Total JJ count including the phase-independent overhead.
    pub fn total_jj(&self) -> f64 {
        let four_phase_storage = self.bits as f64 * 4.0 * Self::JJ_PER_BUFFER;
        self.storage_jj() + BCM_OVERHEAD_FRACTION * four_phase_storage
    }

    /// Energy per clock cycle in aJ.
    pub fn energy_per_cycle_aj(&self, lib: &CellLibrary) -> f64 {
        self.total_jj() * lib.energy_per_jj_aj
    }

    /// JJ reduction of moving this memory from 4 phases to `phases`.
    pub fn reduction_from_4phase(bits: usize, phases: u32) -> f64 {
        let four = BcmMemory { bits, phases: 4 }.total_jj();
        let new = BcmMemory { bits, phases }.total_jj();
        1.0 - new / four
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_dag, RandomDagConfig};
    use rand::SeedableRng;

    #[test]
    fn bcm_4_to_3_phase_saves_exactly_20_percent() {
        let r = BcmMemory::reduction_from_4phase(1024, 3);
        assert!((r - 0.20).abs() < 1e-12, "got {r}");
        // Independent of capacity.
        let r2 = BcmMemory::reduction_from_4phase(7, 3);
        assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn bcm_rejects_two_phases() {
        assert!(BcmMemory::new(16, 2).is_err());
        assert!(BcmMemory::new(16, 3).is_ok());
    }

    #[test]
    fn bcm_storage_scales_linearly() {
        let a = BcmMemory {
            bits: 100,
            phases: 4,
        };
        let b = BcmMemory {
            bits: 200,
            phases: 4,
        };
        assert!((b.total_jj() / a.total_jj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delay_line_cuts_latency_and_buffers() {
        let cfg = RandomDagConfig::default();
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(99));
        let lib = CellLibrary::hstp();
        let r = delay_line_study(&base, &lib);
        // 50 ps → 5 ps stage delay: ≥ 10× latency cut even before the
        // shallower (less-buffered) pipeline is counted.
        assert!(
            r.latency_speedup() >= 10.0,
            "speed-up {}",
            r.latency_speedup()
        );
        assert!(r.jj_reduction() > 0.0, "40 phases must relax balancing");
        assert!(r.delay_line.depth <= r.conventional.depth);
    }

    #[test]
    fn study_shows_monotone_jj_reduction() {
        let cfg = RandomDagConfig::default();
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(2023));
        let lib = CellLibrary::hstp();
        let results = clocking_study(&base, &[4, 8, 16], &lib);
        assert_eq!(results.len(), 3);
        let by_phase = |p: u32| results.iter().find(|r| r.phases == p).unwrap();
        assert_eq!(by_phase(4).jj_reduction_vs_4phase, 0.0);
        let r8 = by_phase(8).jj_reduction_vs_4phase;
        let r16 = by_phase(16).jj_reduction_vs_4phase;
        assert!(r8 > 0.0, "8-phase should save JJs, got {r8}");
        assert!(r16 > r8, "16-phase should save more: {r16} vs {r8}");
    }

    #[test]
    fn study_matches_paper_magnitudes() {
        // Paper: ≥ 20.8 % (8-phase) and ≥ 27.3 % (16-phase) on its designs.
        // Our random benchmark DAGs are not the paper's netlists, so we
        // assert the same ballpark rather than the exact figures.
        let cfg = RandomDagConfig::default();
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
        let lib = CellLibrary::hstp();
        let results = clocking_study(&base, &[4, 8, 16], &lib);
        let r8 = results.iter().find(|r| r.phases == 8).unwrap();
        let r16 = results.iter().find(|r| r.phases == 16).unwrap();
        assert!(
            r8.jj_reduction_vs_4phase > 0.15,
            "8-phase reduction {} below ballpark",
            r8.jj_reduction_vs_4phase
        );
        assert!(
            r16.jj_reduction_vs_4phase > 0.20,
            "16-phase reduction {} below ballpark",
            r16.jj_reduction_vs_4phase
        );
    }

    #[test]
    fn balanced_baseline_has_most_buffers() {
        let cfg = RandomDagConfig {
            inputs: 16,
            gates: 200,
            ..Default::default()
        };
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
        let lib = CellLibrary::hstp();
        let results = clocking_study(&base, &[4, 8, 16], &lib);
        let buffers: Vec<usize> = results.iter().map(|r| r.buffers).collect();
        assert!(buffers[0] > buffers[1] && buffers[1] > buffers[2]);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn study_requires_baseline() {
        let cfg = RandomDagConfig {
            inputs: 4,
            gates: 10,
            ..Default::default()
        };
        let base = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(0));
        clocking_study(&base, &[8, 16], &CellLibrary::hstp());
    }
}
