//! Reproducible random benchmark DAGs.
//!
//! The Section 4.4 clocking study needs circuits whose depth profile
//! resembles synthesized logic: mostly-local wiring with occasional long
//! skips (the skips are what path balancing pays for). This generator
//! produces such DAGs deterministically from a seed, so every experiment
//! and bench is repeatable.

use crate::graph::{Netlist, NodeId};
use aqfp_device::GateKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`random_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomDagConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of logic gates to create.
    pub gates: usize,
    /// Probability that a gate operand is drawn from the most recent
    /// `locality_window` nodes (creating deep chains); otherwise the operand
    /// is uniform over all existing nodes (creating the long skips that
    /// require balancing buffers).
    pub locality: f64,
    /// Size of the recent-node window for local operands.
    pub locality_window: usize,
    /// Maximum lookback (in nodes) for non-local operands. Real synthesized
    /// logic has bounded wire reach; unbounded skips would make balancing
    /// buffers dominate the JJ budget far beyond realistic designs.
    pub global_window: usize,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        Self {
            inputs: 32,
            gates: 600,
            locality: 0.95,
            locality_window: 8,
            global_window: 60,
        }
    }
}

/// Generates a random combinational netlist.
///
/// Gate kinds are drawn as 40 % AND, 30 % OR, 20 % MAJ, 10 % INV —
/// a mix typical of majority-synthesized AQFP logic. All sink nodes
/// (fan-out 0) are marked outputs so nothing is dead.
///
/// # Panics
/// Panics if `inputs == 0` or `gates == 0`.
pub fn random_dag<R: Rng + ?Sized>(config: &RandomDagConfig, rng: &mut R) -> Netlist {
    assert!(config.inputs > 0, "need at least one input");
    assert!(config.gates > 0, "need at least one gate");
    let mut nl = Netlist::new();
    for _ in 0..config.inputs {
        nl.add_input();
    }

    let pick = |nl: &Netlist, rng: &mut R| -> NodeId {
        let len = nl.len();
        let idx = if rng.gen::<f64>() < config.locality {
            let w = config.locality_window.min(len);
            len - 1 - rng.gen_range(0..w)
        } else {
            let w = config.global_window.min(len);
            len - 1 - rng.gen_range(0..w)
        };
        NodeId(idx)
    };

    for _ in 0..config.gates {
        let roll: f64 = rng.gen();
        let kind = if roll < 0.40 {
            GateKind::And
        } else if roll < 0.70 {
            GateKind::Or
        } else if roll < 0.90 {
            GateKind::Majority
        } else {
            GateKind::Inverter
        };
        let operands: Vec<NodeId> = (0..kind.arity()).map(|_| pick(&nl, rng)).collect();
        nl.add_gate(kind, &operands).expect("operands are defined");
    }

    // Mark all sinks as outputs.
    let fanout = nl.fanout_counts();
    let sinks: Vec<NodeId> = nl
        .iter()
        .filter(|(id, _)| fanout[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    for s in sinks {
        nl.mark_output(s);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_from_seed() {
        let cfg = RandomDagConfig::default();
        let a = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(11));
        let b = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        let c = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(12));
        assert_ne!(a, c);
    }

    #[test]
    fn respects_sizes() {
        let cfg = RandomDagConfig {
            inputs: 8,
            gates: 100,
            ..Default::default()
        };
        let nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(0));
        assert_eq!(nl.input_count(), 8);
        assert_eq!(nl.len(), 108);
        assert!(!nl.outputs().is_empty());
    }

    #[test]
    fn has_nontrivial_depth_and_skips() {
        let cfg = RandomDagConfig::default();
        let nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(3));
        assert!(nl.depth() > 10, "depth {}", nl.depth());
        // Long skips exist: some edge spans more than one level.
        let levels = nl.levels();
        let mut has_skip = false;
        for (id, node) in nl.iter() {
            if let crate::graph::Node::Gate { inputs, .. } = node {
                for &inp in inputs {
                    if levels[id.index()] - levels[inp.index()] > 1 {
                        has_skip = true;
                    }
                }
            }
        }
        assert!(has_skip, "generator produced a fully balanced DAG");
    }

    #[test]
    fn evaluates_without_error() {
        let cfg = RandomDagConfig {
            inputs: 8,
            gates: 64,
            ..Default::default()
        };
        let nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(5));
        let inputs = vec![true; 8];
        let out = nl.eval(&inputs).unwrap();
        assert_eq!(out.len(), nl.outputs().len());
    }
}
