//! Fan-out legalization (splitter insertion) and path-balancing buffer
//! insertion.
//!
//! Two structural rules of AQFP that CMOS designers never meet:
//!
//! 1. **Fan-out one.** An AQFP gate's output transformer drives exactly one
//!    consumer; driving `k` consumers requires a tree of 1-to-2 splitters.
//! 2. **Path balance.** Data lives for only a bounded number of clock phases
//!    at a gate output. Two signals converging on a gate must arrive within
//!    the clock scheme's skew tolerance; otherwise buffers must be inserted
//!    on the faster path. With the conventional 4-phase clock the tolerance
//!    is a single stage — reconvergent paths must be balanced exactly —
//!    which is what makes buffer overhead dominate real AQFP designs.

use crate::graph::{Netlist, Node, NodeId};
use aqfp_device::{ClockScheme, GateKind};
use serde::{Deserialize, Serialize};

/// Inserts splitter trees so every node drives at most one consumer.
///
/// Returns the number of splitters inserted. Output markings are preserved;
/// a node that is both an output and a producer counts as having one extra
/// consumer (the read-out interface taps a dedicated splitter leg).
pub fn legalize_fanout(nl: &mut Netlist) -> usize {
    let fanout = {
        let mut f = nl.fanout_counts();
        for &out in nl.outputs() {
            f[out.index()] += 1;
        }
        f
    };

    let mut new = Netlist::new();
    // For each old node: a stack of (new_id, remaining_uses) slots.
    let mut slots: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); nl.len()];
    let mut splitters = 0usize;

    // Takes one available reference to old node `id`, growing a splitter
    // *chain* lazily: a node with `k` pending consumers hands the current
    // consumer a fresh splitter leg and leaves the chain tail (with `k − 1`
    // uses) for the next taker. `k` consumers end up behind `k − 1`
    // splitters, each driving exactly two things (one consumer + the next
    // chain link, or two consumers at the very end).
    fn take(
        slots: &mut [Vec<(NodeId, u32)>],
        new: &mut Netlist,
        splitters: &mut usize,
        id: NodeId,
    ) -> NodeId {
        let stack = &mut slots[id.index()];
        let (node, uses) = stack.pop().expect("fan-out accounting exhausted");
        if uses == 1 {
            return node;
        }
        let sp = new
            .add_gate(GateKind::Splitter, &[node])
            .expect("splitter on defined node");
        *splitters += 1;
        stack.push((sp, uses - 1));
        sp
    }

    for (old_id, node) in nl.iter() {
        let new_id = match node {
            Node::Input => new.add_input(),
            Node::Const(v) => new.add_const(*v),
            Node::Gate { kind, inputs } => {
                let mapped: Vec<NodeId> = inputs
                    .iter()
                    .map(|&i| take(&mut slots, &mut new, &mut splitters, i))
                    .collect();
                new.add_gate(*kind, &mapped).expect("valid rewrite")
            }
        };
        let uses = fanout[old_id.index()].max(1);
        slots[old_id.index()].push((new_id, uses));
    }

    for &out in nl.outputs().to_vec().iter() {
        let leg = take(&mut slots, &mut new, &mut splitters, out);
        new.mark_output(leg);
    }

    *nl = new;
    splitters
}

/// Inserts *balanced* splitter trees so every node drives at most one
/// consumer — the depth-optimal variant of [`legalize_fanout`].
///
/// The lazy chain of [`legalize_fanout`] puts a node's `k` consumers
/// behind up to `k − 1` sequential splitters; this variant arranges the
/// same `k − 1` splitters as a near-balanced binary tree of depth
/// `⌈log₂ k⌉`. Which shape is cheaper is exactly the trade-off the
/// buffer/splitter co-insertion literature (Fu et al.\[28\], Huang et
/// al.\[35\]) optimizes over:
///
/// * consumers at the **same stage** (broadcast fan-out, e.g. a crossbar
///   input row) favor the tree — sibling legs differ by at most one
///   stage, so the follow-up [`balance`] pass inserts far fewer buffers,
///   and the critical path through the fan-out shrinks from `k − 1` to
///   `⌈log₂ k⌉` stages;
/// * consumers at **staggered stages** (e.g. the successive adders of a
///   Wallace tree) favor the chain — its progressively deeper legs act
///   as free path-balancing buffers for the deeper consumers.
///
/// Both variants are exposed so the trade-off can be measured per
/// netlist; `clocking_study`-style flows default to the chain.
///
/// Returns the number of splitters inserted (identical to the chain
/// variant's count — only the tree shape differs).
pub fn legalize_fanout_balanced(nl: &mut Netlist) -> usize {
    use std::collections::VecDeque;

    let fanout = {
        let mut f = nl.fanout_counts();
        for &out in nl.outputs() {
            f[out.index()] += 1;
        }
        f
    };

    let mut new = Netlist::new();
    // legs[old] = queue of splitter-tree legs still unassigned; a 1→2
    // splitter node appears twice (once per leg).
    let mut legs: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); nl.len()];
    let mut splitters = 0usize;

    for (old_id, node) in nl.iter() {
        let new_id = match node {
            Node::Input => new.add_input(),
            Node::Const(v) => new.add_const(*v),
            Node::Gate { kind, inputs } => {
                let mapped: Vec<NodeId> = inputs
                    .iter()
                    .map(|&i| legs[i.index()].pop_front().expect("fan-out accounting"))
                    .collect();
                new.add_gate(*kind, &mapped).expect("valid rewrite")
            }
        };
        let uses = fanout[old_id.index()].max(1) as usize;
        // Grow the leg set breadth-first: each expansion replaces one leg
        // with a splitter providing two, so leg depths differ by ≤ 1.
        let mut q = VecDeque::with_capacity(uses);
        q.push_back(new_id);
        while q.len() < uses {
            let src = q.pop_front().expect("non-empty by construction");
            let sp = new
                .add_gate(GateKind::Splitter, &[src])
                .expect("splitter on defined node");
            splitters += 1;
            q.push_back(sp);
            q.push_back(sp);
        }
        legs[old_id.index()] = q;
    }

    for &out in nl.outputs().to_vec().iter() {
        let leg = legs[out.index()].pop_front().expect("output leg reserved");
        new.mark_output(leg);
    }

    *nl = new;
    splitters
}

/// Result of path-balancing buffer insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Skew tolerance (stages) the clock scheme permits on a single edge.
    pub allowed_skew: u32,
    /// Buffers inserted to balance all edges.
    pub buffers_inserted: usize,
    /// Pipeline depth (stages) after balancing.
    pub depth: u32,
    /// Stage assigned to every node of the rewritten netlist.
    pub stages: Vec<u32>,
}

/// Stage-assignment policy for [`balance_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// Each gate fires at its earliest possible stage (longest path from
    /// the inputs) — the default.
    Asap,
    /// Each gate fires as late as its consumers allow.
    Alap,
}

/// Inserts path-balancing buffers for the given clock scheme, rewriting the
/// netlist in place. Uses ASAP scheduling; see [`balance_with`] for the
/// ALAP variant.
///
/// The stage of each gate is its ASAP level; an edge spanning `d` stages
/// needs `⌈d / s⌉ − 1` buffers, where `s` is the scheme's
/// [`allowed_skew`](ClockScheme::allowed_skew) — data may coast up to `s`
/// stages per hop. The 4-phase scheme has `s = 1`: every edge spanning more
/// than one stage is fully buffered, the classical AQFP cost.
///
/// Call [`legalize_fanout`] first; balancing assumes (but does not require)
/// legal fan-out, and inserted buffers never increase fan-out.
pub fn balance(nl: &mut Netlist, clock: &ClockScheme) -> BalanceReport {
    balance_with(nl, clock, Schedule::Asap)
}

/// [`balance`] with an explicit stage-assignment policy.
pub fn balance_with(nl: &mut Netlist, clock: &ClockScheme, schedule: Schedule) -> BalanceReport {
    let skew = clock.allowed_skew();
    let levels = match schedule {
        Schedule::Asap => nl.levels(),
        Schedule::Alap => nl.levels_alap(),
    };

    let mut new = Netlist::new();
    let mut map: Vec<Option<NodeId>> = vec![None; nl.len()];
    let mut stages: Vec<u32> = Vec::new();
    let mut buffers = 0usize;

    for (old_id, node) in nl.iter() {
        let new_id = match node {
            Node::Input => {
                let id = new.add_input();
                stages.push(0);
                id
            }
            Node::Const(v) => {
                let id = new.add_const(*v);
                stages.push(0);
                id
            }
            Node::Gate { kind, inputs } => {
                let my_stage = levels[old_id.index()];
                let mut mapped = Vec::with_capacity(inputs.len());
                for &inp in inputs {
                    let src_stage = levels[inp.index()];
                    let gap = my_stage - src_stage;
                    debug_assert!(gap >= 1);
                    let needed = gap.div_ceil(skew) - 1; // ⌈gap/s⌉ − 1
                    let mut cur = map[inp.index()].expect("topological order");
                    for b in 1..=needed {
                        cur = new
                            .add_gate(GateKind::Buffer, &[cur])
                            .expect("buffer on defined node");
                        stages.push(src_stage + b * skew);
                        buffers += 1;
                    }
                    mapped.push(cur);
                }
                let id = new.add_gate(*kind, &mapped).expect("valid rewrite");
                stages.push(my_stage);
                id
            }
        };
        map[old_id.index()] = Some(new_id);
    }

    for &out in nl.outputs().to_vec().iter() {
        new.mark_output(map[out.index()].expect("output defined"));
    }

    let depth = stages.iter().copied().max().unwrap_or(0);
    *nl = new;
    BalanceReport {
        allowed_skew: skew,
        buffers_inserted: buffers,
        depth,
        stages,
    }
}

/// Checks that `stages` is a legal schedule for `nl` under skew tolerance
/// `skew`: every edge spans between 1 and `skew` stages. Used by tests.
pub fn is_balanced(nl: &Netlist, stages: &[u32], skew: u32) -> bool {
    for (id, node) in nl.iter() {
        if let Node::Gate { inputs, .. } = node {
            for &inp in inputs {
                let gap = stages[id.index()] as i64 - stages[inp.index()] as i64;
                if gap < 1 || gap > skew as i64 {
                    return false;
                }
            }
        }
    }
    true
}

/// Maximum fan-out over all nodes (outputs count as one extra consumer).
pub fn max_fanout(nl: &Netlist) -> u32 {
    let mut f = nl.fanout_counts();
    for &out in nl.outputs() {
        f[out.index()] += 1;
    }
    f.into_iter().max().unwrap_or(0)
}

/// Checks the AQFP fan-out rule: every node drives at most as many
/// consumers as its kind supports (2 for splitters, 1 for everything else;
/// output markings count as one consumer).
pub fn fanout_is_legal(nl: &Netlist) -> bool {
    let mut f = nl.fanout_counts();
    for &out in nl.outputs() {
        f[out.index()] += 1;
    }
    nl.iter().all(|(id, node)| {
        let capacity = match node {
            Node::Gate { kind, .. } => kind.fanout() as u32,
            _ => 1,
        };
        f[id.index()] <= capacity
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_device::GateKind;

    /// a XOR b with reconvergent fan-out on both inputs.
    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let nb = nl.add_gate(GateKind::Inverter, &[b]).unwrap();
        let t1 = nl.add_gate(GateKind::And, &[a, nb]).unwrap();
        let t2 = nl.add_gate(GateKind::And, &[na, b]).unwrap();
        let o = nl.add_gate(GateKind::Or, &[t1, t2]).unwrap();
        nl.mark_output(o);
        nl
    }

    fn truth_table(nl: &Netlist, n: usize) -> Vec<Vec<bool>> {
        (0..(1usize << n))
            .map(|m| {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                nl.eval(&inputs).unwrap()
            })
            .collect()
    }

    #[test]
    fn legalization_preserves_function() {
        let mut nl = xor_netlist();
        let before = truth_table(&nl, 2);
        let splitters = legalize_fanout(&mut nl);
        assert!(splitters > 0, "XOR has fan-out 2 on each input");
        assert_eq!(truth_table(&nl, 2), before);
    }

    #[test]
    fn legalization_bounds_fanout() {
        let mut nl = xor_netlist();
        assert!(!fanout_is_legal(&nl), "XOR netlist starts illegal");
        legalize_fanout(&mut nl);
        assert!(fanout_is_legal(&nl), "max fanout {} after", max_fanout(&nl));
    }

    #[test]
    fn legalization_splitter_count_is_consumers_minus_one() {
        // A single input with 4 consumers needs 3 splitters.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        for _ in 0..4 {
            let g = nl.add_gate(GateKind::Buffer, &[a]).unwrap();
            nl.mark_output(g);
        }
        let splitters = legalize_fanout(&mut nl);
        assert_eq!(splitters, 3);
    }

    #[test]
    fn balancing_preserves_function() {
        let mut nl = xor_netlist();
        legalize_fanout(&mut nl);
        let before = truth_table(&nl, 2);
        let clock = ClockScheme::four_phase_5ghz();
        balance(&mut nl, &clock);
        assert_eq!(truth_table(&nl, 2), before);
    }

    /// One input fanned out to `k` XOR-combined consumers: a worst case
    /// for splitter chains.
    fn high_fanout_netlist(k: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut acc = nl.add_gate(GateKind::Buffer, &[b]).unwrap();
        for _ in 0..k {
            acc = nl.add_gate(GateKind::And, &[acc, a]).unwrap();
        }
        nl.mark_output(acc);
        nl
    }

    #[test]
    fn balanced_legalization_preserves_function_and_legality() {
        let mut nl = xor_netlist();
        let before = truth_table(&nl, 2);
        let splitters = legalize_fanout_balanced(&mut nl);
        assert!(splitters > 0);
        assert!(fanout_is_legal(&nl));
        assert_eq!(truth_table(&nl, 2), before);
    }

    #[test]
    fn balanced_and_chain_use_the_same_splitter_count() {
        for k in [2usize, 5, 16, 33] {
            let mut chain = high_fanout_netlist(k);
            let mut tree = high_fanout_netlist(k);
            assert_eq!(
                legalize_fanout(&mut chain),
                legalize_fanout_balanced(&mut tree),
                "k={k}"
            );
            assert!(fanout_is_legal(&tree), "k={k}");
        }
    }

    /// One input broadcast to `k` consumers that each pair it with a fresh
    /// stage-0 primary input — the shape where splitter trees win: chain
    /// legs arrive at depths 1..k against stage-0 partners, forcing a
    /// quadratic number of balancing buffers.
    fn broadcast_netlist(k: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let partners: Vec<NodeId> = (0..k).map(|_| nl.add_input()).collect();
        for &b in &partners {
            let c = nl.add_gate(GateKind::And, &[a, b]).unwrap();
            nl.mark_output(c);
        }
        nl
    }

    #[test]
    fn splitter_trees_win_on_broadcast_chains_win_on_wallace() {
        let clock = ClockScheme::four_phase_5ghz();
        let run = |mut nl: Netlist, balanced: bool| {
            if balanced {
                legalize_fanout_balanced(&mut nl);
            } else {
                legalize_fanout(&mut nl);
            }
            let r = balance(&mut nl, &clock);
            (r.buffers_inserted, r.depth, nl)
        };

        // Broadcast fan-out: every consumer is at the same stage, so the
        // log-depth tree leaves much less skew than the linear chain.
        let (chain_buf, chain_depth, _) = run(broadcast_netlist(32), false);
        let (tree_buf, tree_depth, _) = run(broadcast_netlist(32), true);
        assert!(
            tree_buf < chain_buf,
            "broadcast: tree {tree_buf} vs chain {chain_buf} buffers"
        );
        assert!(
            tree_depth < chain_depth,
            "broadcast: tree must be shallower"
        );

        // Wallace-tree popcount: consumers sit at staggered stages and the
        // chain's deeper legs double as free balancing buffers.
        let (chain_buf, _, chain_nl) = run(crate::builders::popcount(32).0, false);
        let (tree_buf, _, tree_nl) = run(crate::builders::popcount(32).0, true);
        assert!(
            chain_buf <= tree_buf,
            "wallace: chain {chain_buf} vs tree {tree_buf} buffers"
        );
        // Function survives both flows either way.
        let inputs = vec![true; 32];
        assert_eq!(
            chain_nl.eval(&inputs).unwrap(),
            tree_nl.eval(&inputs).unwrap()
        );
    }

    #[test]
    fn balanced_legalization_of_wide_fanout_is_logarithmic_depth() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        for _ in 0..16 {
            let g = nl.add_gate(GateKind::Buffer, &[a]).unwrap();
            nl.mark_output(g);
        }
        legalize_fanout_balanced(&mut nl);
        // 17 legs (16 consumers + none extra): tree depth ⌈log2 17⌉ = 5,
        // plus the buffer stage.
        assert!(nl.depth() <= 6, "depth {}", nl.depth());
        assert!(fanout_is_legal(&nl));
    }

    #[test]
    fn balanced_netlist_is_balanced() {
        let mut nl = xor_netlist();
        legalize_fanout(&mut nl);
        let clock = ClockScheme::four_phase_5ghz();
        let report = balance(&mut nl, &clock);
        assert!(is_balanced(&nl, &report.stages, report.allowed_skew));
    }

    #[test]
    fn four_phase_inserts_more_buffers_than_sixteen_phase() {
        let counts: Vec<usize> = [4u32, 8, 16]
            .iter()
            .map(|&p| {
                let mut nl = xor_netlist();
                legalize_fanout(&mut nl);
                let clock = ClockScheme::new(p, 5.0).unwrap();
                balance(&mut nl, &clock).buffers_inserted
            })
            .collect();
        assert!(counts[0] >= counts[1]);
        assert!(counts[1] >= counts[2]);
    }

    #[test]
    fn four_phase_balances_exactly() {
        // With skew 1, every edge must span exactly one stage.
        let mut nl = xor_netlist();
        legalize_fanout(&mut nl);
        let clock = ClockScheme::four_phase_5ghz();
        let report = balance(&mut nl, &clock);
        assert!(is_balanced(&nl, &report.stages, 1));
    }

    #[test]
    fn straight_chain_needs_no_buffers() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let mut cur = a;
        for _ in 0..10 {
            cur = nl.add_gate(GateKind::Inverter, &[cur]).unwrap();
        }
        nl.mark_output(cur);
        let report = balance(&mut nl, &ClockScheme::four_phase_5ghz());
        assert_eq!(report.buffers_inserted, 0);
        assert_eq!(report.depth, 10);
    }

    #[test]
    fn skewed_reconvergence_is_buffered() {
        // in -> INV -> INV -> AND <- (direct edge from in): gap 3 vs 1.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let i1 = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let i2 = nl.add_gate(GateKind::Inverter, &[i1]).unwrap();
        let o = nl.add_gate(GateKind::And, &[i2, b]).unwrap();
        nl.mark_output(o);
        let report = balance(&mut nl, &ClockScheme::four_phase_5ghz());
        // b sits at stage 0, AND at stage 3: needs 2 buffers.
        assert_eq!(report.buffers_inserted, 2);
        assert!(is_balanced(&nl, &report.stages, 1));
    }

    #[test]
    fn alap_schedule_is_legal_and_function_preserving() {
        use crate::random::{random_dag, RandomDagConfig};
        use rand::SeedableRng;
        let cfg = RandomDagConfig {
            inputs: 6,
            gates: 60,
            ..Default::default()
        };
        for seed in [0u64, 1, 2] {
            let mut nl = random_dag(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
            let probe: Vec<bool> = (0..6).map(|i| (seed >> i) & 1 == 1).collect();
            let before = nl.eval(&probe).unwrap();
            legalize_fanout(&mut nl);
            let clock = ClockScheme::four_phase_5ghz();
            let report = balance_with(&mut nl, &clock, Schedule::Alap);
            assert!(is_balanced(&nl, &report.stages, report.allowed_skew));
            assert_eq!(nl.eval(&probe).unwrap(), before, "seed {seed}");
        }
    }

    #[test]
    fn alap_helps_early_fanout_structures() {
        // One input drives many gates that feed a deep chain: ASAP pins all
        // of them at stage 1 (far from their consumers); ALAP slides each
        // next to its consumer, removing the balancing buffers.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let mut chain = nl.add_gate(GateKind::Buffer, &[a]).unwrap();
        let mut taps = Vec::new();
        for _ in 0..6 {
            chain = nl.add_gate(GateKind::Inverter, &[chain]).unwrap();
            taps.push(nl.add_gate(GateKind::Buffer, &[a]).unwrap());
        }
        // Each tap joins the chain at a different depth.
        let mut acc = chain;
        for &t in &taps {
            acc = nl.add_gate(GateKind::And, &[acc, t]).unwrap();
        }
        nl.mark_output(acc);
        legalize_fanout(&mut nl);
        let clock = ClockScheme::four_phase_5ghz();
        let mut asap_nl = nl.clone();
        let asap = balance_with(&mut asap_nl, &clock, Schedule::Asap);
        let mut alap_nl = nl.clone();
        let alap = balance_with(&mut alap_nl, &clock, Schedule::Alap);
        assert!(
            alap.buffers_inserted < asap.buffers_inserted,
            "ALAP {} vs ASAP {}",
            alap.buffers_inserted,
            asap.buffers_inserted
        );
        assert!(is_balanced(&alap_nl, &alap.stages, 1));
    }

    #[test]
    fn higher_phase_count_reduces_depth_never() {
        // Balancing never changes the ASAP depth, only the buffer count.
        for p in [4u32, 8, 16] {
            let mut nl = xor_netlist();
            legalize_fanout(&mut nl);
            let depth_before = nl.depth();
            let report = balance(&mut nl, &ClockScheme::new(p, 5.0).unwrap());
            assert_eq!(report.depth, depth_before, "phases {p}");
        }
    }
}
