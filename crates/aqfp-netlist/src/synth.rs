//! Logic-synthesis optimization passes for AQFP netlists.
//!
//! The paper's discussion section points at the AQFP EDA stack — majority
//! -logic synthesis (Testa et al.\[71\]), algebraic rewriting and the
//! cell-based flows of \[74\]/\[28\] — as what makes AQFP systems buildable
//! beyond hand-designed blocks. This module implements the classical
//! technology-independent core of such a flow on [`Netlist`]s:
//!
//! * **constant folding** — gates with constant operands collapse
//!   (including the majority identities `MAJ(a,b,1) = OR(a,b)` and
//!   `MAJ(a,b,0) = AND(a,b)` that make AND/OR "majority gates with a bias
//!   input" in AQFP);
//! * **algebraic rules** — idempotence (`AND(a,a) = a`,
//!   `MAJ(a,a,b) = a`), complementation (`AND(a,¬a) = 0`,
//!   `MAJ(a,¬a,b) = b`), double-inverter elimination and buffer bypass;
//! * **majority re-synthesis** — the carry pattern
//!   `OR(AND(a,b), AND(c, OR(a,b)))` and its input orderings rewrite to a
//!   single native `MAJ(a,b,c)` cell (the key rewrite of majority-logic
//!   synthesis);
//! * **structural hashing** — common-subexpression sharing;
//! * **dead-gate elimination** — unreachable logic is dropped (primary
//!   inputs are always kept so the interface is unchanged).
//!
//! Passes run to a fixpoint. The result is functionally equivalent to the
//! input (property-tested in this module and in `tests/props.rs`) and
//! never costs more JJs.

use crate::graph::{Netlist, Node, NodeId};
use crate::report::{self, CostReport};
use aqfp_device::{CellLibrary, ClockScheme, GateKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Before/after metrics of one [`optimize`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthReport {
    /// Gate count before optimization (excluding inputs/constants).
    pub gates_before: usize,
    /// Gate count after.
    pub gates_after: usize,
    /// JJ count before (unbalanced netlist, 4-phase costing).
    pub jj_before: u64,
    /// JJ count after.
    pub jj_after: u64,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

impl SynthReport {
    /// Fraction of JJs removed, in `[0, 1]`.
    pub fn jj_saving(&self) -> f64 {
        if self.jj_before == 0 {
            0.0
        } else {
            1.0 - self.jj_after as f64 / self.jj_before as f64
        }
    }
}

/// Optimizes `nl`, returning the rewritten netlist and a report.
///
/// The output netlist has the same primary inputs (same order) and the
/// same outputs (same order, same functions). Gate and JJ counts never
/// increase.
pub fn optimize(nl: &Netlist, lib: &CellLibrary) -> (Netlist, SynthReport) {
    let clock = ClockScheme::four_phase_5ghz();
    let before = report::cost_report(nl, lib, &clock);

    let mut current = nl.clone();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let (next, changed) = rewrite_once(&current);
        let (next, demorganed) = demorgan_once(&next);
        let next = eliminate_dead(&next);
        let stable = !changed && !demorganed && next.len() == current.len();
        current = next;
        if stable || iterations >= 16 {
            break;
        }
    }

    let after = report::cost_report(&current, lib, &clock);
    let report = SynthReport {
        gates_before: gate_count(&before),
        gates_after: gate_count(&after),
        jj_before: before.jj_total,
        jj_after: after.jj_total,
        iterations,
    };
    (current, report)
}

fn gate_count(r: &CostReport) -> usize {
    r.gate_count
}

/// One forward rewrite pass with hash-consing. Returns the rewritten
/// netlist and whether any rule fired.
fn rewrite_once(nl: &Netlist) -> (Netlist, bool) {
    let mut out = Netlist::new();
    // remap[old] = new node standing for the old node's function.
    let mut remap: Vec<NodeId> = Vec::with_capacity(nl.len());
    let mut cache: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();
    let mut consts: HashMap<bool, NodeId> = HashMap::new();
    let mut changed = false;

    for (_, node) in nl.iter() {
        let new_id = match node {
            Node::Input => out.add_input(),
            Node::Const(v) => *consts.entry(*v).or_insert_with(|| out.add_const(*v)),
            Node::Gate { kind, inputs } => {
                let mapped: Vec<NodeId> = inputs.iter().map(|&i| remap[i.index()]).collect();
                let (id, fired) = simplify(*kind, &mapped, &mut out, &mut cache, &mut consts);
                changed |= fired;
                id
            }
        };
        remap.push(new_id);
    }

    for &o in nl.outputs() {
        out.mark_output(remap[o.index()]);
    }
    (out, changed)
}

/// Emits a gate computing `kind(inputs)` into `out`, applying local rules.
/// Returns the resulting node and whether a simplification fired.
fn simplify(
    kind: GateKind,
    inputs: &[NodeId],
    out: &mut Netlist,
    cache: &mut HashMap<(GateKind, Vec<NodeId>), NodeId>,
    consts: &mut HashMap<bool, NodeId>,
) -> (NodeId, bool) {
    let const_of = |id: NodeId, out: &Netlist| -> Option<bool> {
        match out.node(id) {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    };
    let mut make_const = |v: bool, out: &mut Netlist| -> NodeId {
        *consts.entry(v).or_insert_with(|| out.add_const(v))
    };

    match kind {
        GateKind::Buffer => {
            // Synthesis-time buffers are transparent; path balancing
            // reinserts what timing needs.
            return (inputs[0], true);
        }
        GateKind::Inverter => {
            if let Some(v) = const_of(inputs[0], out) {
                return (make_const(!v, out), true);
            }
            // INV(INV(a)) = a
            if let Node::Gate {
                kind: GateKind::Inverter,
                inputs: inner,
            } = out.node(inputs[0])
            {
                return (inner[0], true);
            }
        }
        GateKind::And | GateKind::Or => {
            let (a, b) = (inputs[0], inputs[1]);
            let absorbing = kind == GateKind::Or; // OR: 1 absorbs; AND: 0 absorbs
            for (x, y) in [(a, b), (b, a)] {
                if let Some(v) = const_of(x, out) {
                    return if v == absorbing {
                        (make_const(absorbing, out), true)
                    } else {
                        (y, true) // identity element
                    };
                }
            }
            if a == b {
                return (a, true);
            }
            if inverts(out, a, b) {
                return (make_const(absorbing, out), true);
            }
            if kind == GateKind::Or {
                if let Some(id) = match_carry_pattern(out, a, b) {
                    return (id, true);
                }
            }
        }
        GateKind::Majority => {
            let (a, b, c) = (inputs[0], inputs[1], inputs[2]);
            // Duplicate inputs dominate.
            if a == b || a == c {
                return (a, true);
            }
            if b == c {
                return (b, true);
            }
            // A complementary pair cancels: MAJ(a, ¬a, x) = x.
            for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
                if inverts(out, x, y) {
                    return (z, true);
                }
            }
            // Constant biases lower MAJ to OR/AND.
            for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
                if let Some(v) = const_of(z, out) {
                    let lowered = if v { GateKind::Or } else { GateKind::And };
                    let (id, _) = simplify(lowered, &[x, y], out, cache, consts);
                    return (id, true);
                }
            }
        }
        GateKind::Splitter | GateKind::Readout => {}
    }

    // Hash-cons: commutative kinds use sorted operand keys.
    let key_inputs = match kind {
        GateKind::And | GateKind::Or | GateKind::Majority => {
            let mut v = inputs.to_vec();
            v.sort_unstable();
            v
        }
        _ => inputs.to_vec(),
    };
    if let Some(&hit) = cache.get(&(kind, key_inputs.clone())) {
        return (hit, true);
    }
    let id = out
        .add_gate(kind, inputs)
        .expect("inputs precede this gate");
    cache.insert((kind, key_inputs), id);
    (id, false)
}

/// De Morgan / self-duality pass: `AND(¬a, ¬b) = ¬OR(a, b)`,
/// `OR(¬a, ¬b) = ¬AND(a, b)` and — using the majority gate's self-duality
/// — `MAJ(¬a, ¬b, ¬c) = ¬MAJ(a, b, c)`.
///
/// Each rewrite replaces `k` input inverters plus one gate with one gate
/// plus one output inverter. It fires only when every input inverter has
/// no other consumer (checked against the whole netlist), so the gate
/// count strictly drops for `k ≥ 2` and never rises — keeping
/// [`optimize`]'s monotonicity guarantee. The output inverter frequently
/// cancels against a downstream `INV` on the next fixpoint iteration.
fn demorgan_once(nl: &Netlist) -> (Netlist, bool) {
    // Uses of each node: gate consumers plus output markings.
    let mut uses = nl.fanout_counts();
    for &o in nl.outputs() {
        uses[o.index()] += 1;
    }
    let inverter_operand = |id: NodeId| -> Option<NodeId> {
        match nl.node(id) {
            Node::Gate {
                kind: GateKind::Inverter,
                inputs,
            } if uses[id.index()] == 1 => Some(inputs[0]),
            _ => None,
        }
    };

    let mut out = Netlist::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(nl.len());
    let mut changed = false;
    for (_, node) in nl.iter() {
        let new_id = match node {
            Node::Input => out.add_input(),
            Node::Const(v) => out.add_const(*v),
            Node::Gate { kind, inputs } => {
                let dual = match kind {
                    GateKind::And => Some(GateKind::Or),
                    GateKind::Or => Some(GateKind::And),
                    GateKind::Majority => Some(GateKind::Majority),
                    _ => None,
                };
                let operands: Option<Vec<NodeId>> = dual
                    .is_some()
                    .then(|| inputs.iter().map(|&i| inverter_operand(i)).collect())
                    .flatten();
                match (dual, operands) {
                    (Some(dual_kind), Some(ops)) => {
                        let mapped: Vec<NodeId> = ops.iter().map(|&i| remap[i.index()]).collect();
                        let gate = out
                            .add_gate(dual_kind, &mapped)
                            .expect("operands precede the rewrite site");
                        changed = true;
                        out.add_gate(GateKind::Inverter, &[gate])
                            .expect("gate just added")
                    }
                    _ => {
                        let mapped: Vec<NodeId> =
                            inputs.iter().map(|&i| remap[i.index()]).collect();
                        out.add_gate(*kind, &mapped).expect("valid rewrite")
                    }
                }
            }
        };
        remap.push(new_id);
    }
    for &o in nl.outputs() {
        out.mark_output(remap[o.index()]);
    }
    (out, changed)
}

/// Whether `a` and `b` are structural complements (one is INV of the other).
fn inverts(nl: &Netlist, a: NodeId, b: NodeId) -> bool {
    let is_inv_of = |x: NodeId, y: NodeId| -> bool {
        matches!(nl.node(x), Node::Gate { kind: GateKind::Inverter, inputs } if inputs[0] == y)
    };
    is_inv_of(a, b) || is_inv_of(b, a)
}

/// Matches `OR(AND(a,b), AND(c, OR(a,b)))` (any operand order) and emits
/// `MAJ(a, b, c)` — the majority-synthesis carry rewrite.
fn match_carry_pattern(out: &mut Netlist, x: NodeId, y: NodeId) -> Option<NodeId> {
    let and_inputs = |id: NodeId| -> Option<(NodeId, NodeId)> {
        match out.node(id) {
            Node::Gate {
                kind: GateKind::And,
                inputs,
            } => Some((inputs[0], inputs[1])),
            _ => None,
        }
    };
    let or_inputs = |id: NodeId| -> Option<(NodeId, NodeId)> {
        match out.node(id) {
            Node::Gate {
                kind: GateKind::Or,
                inputs,
            } => Some((inputs[0], inputs[1])),
            _ => None,
        }
    };
    for (p, q) in [(x, y), (y, x)] {
        let Some((a, b)) = and_inputs(p) else {
            continue;
        };
        let Some((u, v)) = and_inputs(q) else {
            continue;
        };
        // One operand of the second AND must be OR(a, b); the other is c.
        for (or_cand, c) in [(u, v), (v, u)] {
            if let Some((oa, ob)) = or_inputs(or_cand) {
                let same = (oa == a && ob == b) || (oa == b && ob == a);
                if same {
                    let id = out
                        .add_gate(GateKind::Majority, &[a, b, c])
                        .expect("operands precede the rewrite site");
                    return Some(id);
                }
            }
        }
    }
    None
}

/// Drops gates unreachable from the outputs; inputs are always kept.
fn eliminate_dead(nl: &Netlist) -> Netlist {
    let mut live = vec![false; nl.len()];
    let mut stack: Vec<usize> = nl.outputs().iter().map(|o| o.index()).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        if let Node::Gate { inputs, .. } = nl.node(NodeId(i)) {
            stack.extend(inputs.iter().map(|x| x.index()));
        }
    }

    let mut out = Netlist::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; nl.len()];
    for (id, node) in nl.iter() {
        let i = id.index();
        let keep = live[i] || matches!(node, Node::Input);
        if !keep {
            continue;
        }
        let new_id = match node {
            Node::Input => out.add_input(),
            Node::Const(v) => out.add_const(*v),
            Node::Gate { kind, inputs } => {
                let mapped: Vec<NodeId> = inputs
                    .iter()
                    .map(|x| remap[x.index()].expect("live gate input is live"))
                    .collect();
                out.add_gate(*kind, &mapped)
                    .expect("topological order preserved")
            }
        };
        remap[i] = Some(new_id);
    }
    for &o in nl.outputs() {
        out.mark_output(remap[o.index()].expect("outputs are live"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lib() -> CellLibrary {
        CellLibrary::hstp()
    }

    fn assert_equivalent(a: &Netlist, b: &Netlist, trials: usize, seed: u64) {
        assert_eq!(a.input_count(), b.input_count());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..trials {
            let inputs: Vec<bool> = (0..a.input_count()).map(|_| rng.gen()).collect();
            assert_eq!(
                a.eval(&inputs).unwrap(),
                b.eval(&inputs).unwrap(),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn folds_constants_through_gates() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let one = nl.add_const(true);
        let zero = nl.add_const(false);
        let and1 = nl.add_gate(GateKind::And, &[a, one]).unwrap(); // = a
        let or0 = nl.add_gate(GateKind::Or, &[and1, zero]).unwrap(); // = a
        let maj = nl.add_gate(GateKind::Majority, &[or0, a, zero]).unwrap(); // = AND(a,a) = a
        nl.mark_output(maj);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 4, 1);
        assert_eq!(report.gates_after, 0, "everything folds to the input");
    }

    #[test]
    fn eliminates_double_inverters_and_buffers() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b1 = nl.add_gate(GateKind::Buffer, &[a]).unwrap();
        let i1 = nl.add_gate(GateKind::Inverter, &[b1]).unwrap();
        let i2 = nl.add_gate(GateKind::Inverter, &[i1]).unwrap();
        let b2 = nl.add_gate(GateKind::Buffer, &[i2]).unwrap();
        nl.mark_output(b2);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 2, 2);
        assert_eq!(report.gates_after, 0);
    }

    #[test]
    fn complementary_inputs_collapse() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let and = nl.add_gate(GateKind::And, &[a, na]).unwrap(); // 0
        let or = nl.add_gate(GateKind::Or, &[a, na]).unwrap(); // 1
        let maj = nl.add_gate(GateKind::Majority, &[a, na, b]).unwrap(); // b
        let all = nl.add_gate(GateKind::Majority, &[and, or, maj]).unwrap(); // b
        nl.mark_output(all);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 4, 3);
        assert_eq!(report.gates_after, 0, "collapses to input b");
    }

    #[test]
    fn shares_common_subexpressions() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::And, &[b, a]).unwrap(); // commutative dup
        let o = nl.add_gate(GateKind::Or, &[x, y]).unwrap(); // OR(x,x) = x
        nl.mark_output(o);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 4, 4);
        assert_eq!(report.gates_after, 1, "one AND remains");
    }

    #[test]
    fn rewrites_carry_pattern_to_majority() {
        // carry = OR(AND(a,b), AND(c, OR(a,b))) — 4 gates — must become
        // one MAJ cell.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let c = nl.add_input();
        let ab = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let oab = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        let coab = nl.add_gate(GateKind::And, &[c, oab]).unwrap();
        let carry = nl.add_gate(GateKind::Or, &[ab, coab]).unwrap();
        nl.mark_output(carry);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 8, 5);
        assert_eq!(report.gates_after, 1, "single majority cell");
        assert!(matches!(
            opt.node(opt.outputs()[0]),
            Node::Gate {
                kind: GateKind::Majority,
                ..
            }
        ));
        assert!(report.jj_saving() > 0.5);
    }

    #[test]
    fn demorgan_rewrites_nand_of_inverters() {
        // AND(¬a, ¬b) — 3 gates — becomes OR + INV — 2 gates.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let nb = nl.add_gate(GateKind::Inverter, &[b]).unwrap();
        let g = nl.add_gate(GateKind::And, &[na, nb]).unwrap();
        nl.mark_output(g);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 4, 31);
        assert_eq!(report.gates_after, 2, "OR + INV");
    }

    #[test]
    fn demorgan_respects_shared_inverters() {
        // ¬a feeds two consumers: rewriting would duplicate logic, so the
        // pass must leave the AND alone.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let nb = nl.add_gate(GateKind::Inverter, &[b]).unwrap();
        let g = nl.add_gate(GateKind::And, &[na, nb]).unwrap();
        let other = nl.add_gate(GateKind::Or, &[na, b]).unwrap();
        nl.mark_output(g);
        nl.mark_output(other);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 4, 32);
        assert!(report.jj_after <= report.jj_before);
    }

    #[test]
    fn majority_self_duality_fires_and_cancels_downstream_inverter() {
        // ¬MAJ(¬a, ¬b, ¬c) — 5 gates — collapses to MAJ(a, b, c): the
        // self-duality rewrite plus INV(INV) cancellation.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let c = nl.add_input();
        let na = nl.add_gate(GateKind::Inverter, &[a]).unwrap();
        let nb = nl.add_gate(GateKind::Inverter, &[b]).unwrap();
        let nc = nl.add_gate(GateKind::Inverter, &[c]).unwrap();
        let m = nl.add_gate(GateKind::Majority, &[na, nb, nc]).unwrap();
        let nm = nl.add_gate(GateKind::Inverter, &[m]).unwrap();
        nl.mark_output(nm);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 8, 33);
        assert_eq!(report.gates_after, 1, "one majority cell: {report:?}");
    }

    #[test]
    fn recovers_majority_carries_from_aoi_adder() {
        let (nl, _, _, _) = crate::builders::ripple_adder_aoi(8);
        let (opt, report) = optimize(&nl, &lib());
        assert_equivalent(&nl, &opt, 64, 21);
        // Every carry collapses from 4 AOI gates to one MAJ cell.
        let majs = opt
            .gate_histogram()
            .get(&GateKind::Majority)
            .copied()
            .unwrap_or(0);
        assert!(majs >= 7, "expected rewritten majority carries, got {majs}");
        assert!(
            report.jj_saving() > 0.15,
            "majority re-synthesis should save JJs: {report:?}"
        );
    }

    #[test]
    fn random_dags_stay_equivalent_and_never_grow() {
        for seed in 0..6u64 {
            let cfg = RandomDagConfig {
                inputs: 12,
                gates: 160,
                ..Default::default()
            };
            let nl = random_dag(&cfg, &mut StdRng::seed_from_u64(seed));
            let (opt, report) = optimize(&nl, &lib());
            assert_equivalent(&nl, &opt, 32, seed ^ 99);
            assert!(
                report.jj_after <= report.jj_before,
                "seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn optimize_is_idempotent() {
        let cfg = RandomDagConfig {
            inputs: 8,
            gates: 80,
            ..Default::default()
        };
        let nl = random_dag(&cfg, &mut StdRng::seed_from_u64(13));
        let (once, _) = optimize(&nl, &lib());
        let (twice, report) = optimize(&once, &lib());
        assert_eq!(once.len(), twice.len());
        assert_eq!(report.jj_saving(), 0.0);
    }

    #[test]
    fn dead_gates_are_swept_but_inputs_remain() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let _dead = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let live = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        nl.mark_output(live);
        let (opt, report) = optimize(&nl, &lib());
        assert_eq!(opt.input_count(), 2);
        assert_eq!(report.gates_after, 1);
        assert_equivalent(&nl, &opt, 4, 6);
    }

    #[test]
    fn report_tracks_savings_fraction() {
        let r = SynthReport {
            gates_before: 10,
            gates_after: 5,
            jj_before: 100,
            jj_after: 25,
            iterations: 2,
        };
        assert!((r.jj_saving() - 0.75).abs() < 1e-12);
        let zero = SynthReport {
            jj_before: 0,
            jj_after: 0,
            ..r
        };
        assert_eq!(zero.jj_saving(), 0.0);
    }
}
