//! SynthDigits: the MNIST stand-in.
//!
//! Ten digit classes rendered as seven-segment glyphs on a 16×16 canvas,
//! augmented with random translation, stroke gain and additive noise.
//! Background is −1, strokes are +1 (already in BNN-friendly range).

use crate::dataset::{approx_normal, shift_image, Dataset, SynthConfig};
use bnn_nn::Tensor;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIZE: usize = 16;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Seven-segment truth table: segments a–g (top, top-right, bottom-right,
/// bottom, bottom-left, top-left, middle) per digit.
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Renders the canonical glyph of `digit` (background −1, stroke +1).
///
/// # Panics
/// Panics if `digit >= 10`.
pub fn glyph(digit: usize) -> Vec<f32> {
    assert!(digit < CLASSES, "digit {digit} out of range");
    let mut img = vec![-1.0f32; SIZE * SIZE];
    let seg = SEGMENTS[digit];
    // Glyph box: rows 2..14, cols 4..12; stroke thickness 2.
    let (top, mid, bot) = (2usize, 7usize, 13usize);
    let (left, right) = (4usize, 11usize);
    let mut hline = |row: usize| {
        for y in row..row + 2 {
            for x in left..=right {
                img[y * SIZE + x] = 1.0;
            }
        }
    };
    if seg[0] {
        hline(top);
    }
    if seg[6] {
        hline(mid);
    }
    if seg[3] {
        hline(bot);
    }
    let mut vline = |col: usize, from: usize, to: usize| {
        for y in from..=to {
            for x in col..col + 2 {
                img[y * SIZE + x] = 1.0;
            }
        }
    };
    if seg[5] {
        vline(left, top, mid + 1);
    }
    if seg[1] {
        vline(right - 1, top, mid + 1);
    }
    if seg[4] {
        vline(left, mid, bot + 1);
    }
    if seg[2] {
        vline(right - 1, mid, bot + 1);
    }
    img
}

/// Generates the SynthDigits dataset.
pub fn generate_digits(config: &SynthConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = config.samples_per_class * CLASSES;
    let mut data = Vec::with_capacity(n * SIZE * SIZE);
    let mut labels = Vec::with_capacity(n);
    let templates: Vec<Vec<f32>> = (0..CLASSES).map(glyph).collect();

    #[allow(clippy::needless_range_loop)] // digit is also the label
    for digit in 0..CLASSES {
        for _ in 0..config.samples_per_class {
            let dy = rng.gen_range(-config.max_shift..=config.max_shift);
            let dx = rng.gen_range(-config.max_shift..=config.max_shift);
            let gain = 0.8 + 0.4 * rng.gen::<f32>();
            let mut img = shift_image(&templates[digit], 1, SIZE, SIZE, dy, dx, -1.0);
            for px in img.iter_mut() {
                *px = (*px * gain + config.noise_std * approx_normal(&mut rng)).clamp(-1.5, 1.5);
            }
            data.extend(img);
            labels.push(digit);
        }
    }
    Dataset {
        images: Tensor::from_vec(&[n, 1, SIZE, SIZE], data),
        labels,
        num_classes: CLASSES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_distinct() {
        let glyphs: Vec<Vec<f32>> = (0..10).map(glyph).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(glyphs[i], glyphs[j], "digits {i} and {j} collide");
            }
        }
    }

    #[test]
    fn eight_has_most_ink() {
        let ink = |d: usize| glyph(d).iter().filter(|&&p| p > 0.0).count();
        for d in 0..10 {
            assert!(ink(8) >= ink(d), "8 must use every segment");
        }
        assert!(ink(1) < ink(8));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            samples_per_class: 3,
            ..Default::default()
        };
        let a = generate_digits(&cfg);
        let b = generate_digits(&cfg);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn shapes_and_labels() {
        let cfg = SynthConfig {
            samples_per_class: 5,
            ..Default::default()
        };
        let d = generate_digits(&cfg);
        assert_eq!(d.len(), 50);
        assert_eq!(d.image_shape(), [1, 16, 16]);
        assert_eq!(d.num_classes, 10);
        for c in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 5);
        }
    }

    #[test]
    fn noise_zero_reproduces_scaled_glyph() {
        let cfg = SynthConfig {
            samples_per_class: 1,
            noise_std: 0.0,
            max_shift: 0,
            seed: 7,
        };
        let d = generate_digits(&cfg);
        // First sample is digit 0; its positive pixels must coincide with
        // the glyph's strokes.
        let g = glyph(0);
        let img = &d.images.data()[0..256];
        for (a, b) in img.iter().zip(&g) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glyph_rejects_11() {
        glyph(11);
    }
}
