//! Synthetic image-classification datasets standing in for MNIST/CIFAR-10.
//!
//! The paper evaluates on MNIST and CIFAR-10, which are not available in
//! this offline environment. Every SupeRBNN experiment measures *relative*
//! accuracy across hardware configurations, so the substitution requirement
//! (DESIGN.md §2) is a multi-class image task that (a) flows through the
//! same conv/BN/binarize code paths, (b) is learnable but not trivially so,
//! and (c) is deterministic from a seed. Two generators:
//!
//! * [`digits::generate_digits`] — **SynthDigits**, the MNIST stand-in:
//!   10 classes of 1×16×16 seven-segment-style digit glyphs with random
//!   shifts, stroke gain and pixel noise;
//! * [`objects::generate_objects`] — **SynthObjects**, the CIFAR-10
//!   stand-in: 10 classes of 3×16×16 low-frequency colour textures
//!   (per-class sinusoid mixtures) with shifts, gain and noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digits;
pub mod objects;

mod dataset;

pub use dataset::{BatchIter, Dataset, SynthConfig};
