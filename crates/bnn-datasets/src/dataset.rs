//! Dataset container and batching.

use bnn_nn::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generation parameters shared by both synthetic datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of additive pixel noise.
    pub noise_std: f32,
    /// Maximum absolute random translation in pixels (per axis).
    pub max_shift: i32,
    /// Seed for the generator RNG.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            samples_per_class: 100,
            noise_std: 0.25,
            max_shift: 2,
            seed: 2023,
        }
    }
}

/// An in-memory labelled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, shape `[N, C, H, W]`, values roughly in `[−1, 1]`.
    pub images: Tensor,
    /// Labels, `labels[i] ∈ 0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image shape `[C, H, W]`.
    pub fn image_shape(&self) -> [usize; 3] {
        let s = self.images.shape();
        [s[1], s[2], s[3]]
    }

    /// Gathers the samples at `indices` into a batch tensor + labels.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let [c, h, w] = self.image_shape();
        let per = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(&[indices.len(), c, h, w], data), labels)
    }

    /// Splits into `(train, test)` with `test_fraction` of each class's
    /// samples (deterministically, by position) going to the test set.
    ///
    /// # Panics
    /// Panics unless `0 < test_fraction < 1`.
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        // Stratified: every k-th sample of each class goes to test.
        let stride = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut seen = vec![0usize; self.num_classes];
        for (i, &label) in self.labels.iter().enumerate() {
            if seen[label] % stride == stride - 1 {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
            seen[label] += 1;
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    fn subset(&self, indices: &[usize]) -> Dataset {
        let (images, labels) = self.batch(indices);
        Dataset {
            images,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Iterates over shuffled mini-batches.
    pub fn batches<'a, R: Rng>(&'a self, batch_size: usize, rng: &mut R) -> BatchIter<'a> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        BatchIter {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }
}

/// Iterator over shuffled mini-batches of a [`Dataset`].
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.batch(idx))
    }
}

/// Shifts an image in place within its `[C, H, W]` frame; vacated pixels
/// become `fill`. Shared by the two generators.
pub(crate) fn shift_image(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    dy: i32,
    dx: i32,
    fill: f32,
) -> Vec<f32> {
    let mut out = vec![fill; c * h * w];
    for ci in 0..c {
        for y in 0..h {
            let sy = y as i32 - dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                out[(ci * h + y) * w + x] = src[(ci * h + sy as usize) * w + sx as usize];
            }
        }
    }
    out
}

/// Samples an approximately standard-normal value (sum of 12 uniforms —
/// Irwin–Hall; adequate for pixel noise, dependency-free).
pub(crate) fn approx_normal<R: Rng>(rng: &mut R) -> f32 {
    let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        // 6 samples, 2 classes, 1×2×2 images.
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        Dataset {
            images: Tensor::from_vec(&[6, 1, 2, 2], data),
            labels: vec![0, 1, 0, 1, 0, 1],
            num_classes: 2,
        }
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(y, vec![0, 0]);
        assert_eq!(&x.data()[0..4], &[8., 9., 10., 11.]);
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let d = toy();
        let (train, test) = d.split(0.34);
        assert_eq!(train.len() + test.len(), d.len());
        assert!(test.labels.contains(&0) && test.labels.contains(&1));
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut count = 0;
        for (x, y) in d.batches(4, &mut rng) {
            assert_eq!(x.shape()[0], y.len());
            count += y.len();
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn shift_moves_pixels() {
        // 1×2×2 image [[1,2],[3,4]] shifted down-right by 1.
        let out = shift_image(&[1., 2., 3., 4.], 1, 2, 2, 1, 1, 0.0);
        assert_eq!(out, vec![0., 0., 0., 1.]);
    }

    #[test]
    fn approx_normal_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| approx_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
