//! SynthObjects: the CIFAR-10 stand-in.
//!
//! Ten classes of 3×16×16 colour textures. Each class is a fixed mixture of
//! low-frequency 2-D sinusoids per channel (drawn once from the seed), so
//! classes are smooth, overlapping but separable colour/texture patterns —
//! qualitatively closer to natural-image statistics than glyphs. Samples
//! add random translation, gain and pixel noise.

use crate::dataset::{approx_normal, shift_image, Dataset, SynthConfig};
use bnn_nn::Tensor;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIZE: usize = 16;
/// Channels (RGB-like).
pub const CHANNELS: usize = 3;
/// Number of classes.
pub const CLASSES: usize = 10;
/// Sinusoid components per channel.
const WAVES: usize = 4;

/// One sinusoid: `amp · sin(fx·x + fy·y + phase)`.
#[derive(Debug, Clone, Copy)]
struct Wave {
    amp: f32,
    fx: f32,
    fy: f32,
    phase: f32,
}

/// Renders the canonical template of `class` with the dataset `seed`.
///
/// # Panics
/// Panics if `class >= 10`.
pub fn template(class: usize, seed: u64) -> Vec<f32> {
    assert!(class < CLASSES, "class {class} out of range");
    // Class templates derive from the seed so the whole dataset moves with
    // it, but sample augmentation noise (below) never leaks in here.
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(class as u64 + 1)),
    );
    let mut img = vec![0.0f32; CHANNELS * SIZE * SIZE];
    for c in 0..CHANNELS {
        let waves: Vec<Wave> = (0..WAVES)
            .map(|_| Wave {
                amp: 0.3 + 0.5 * rng.gen::<f32>(),
                fx: rng.gen_range(0.2..1.2),
                fy: rng.gen_range(0.2..1.2),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            })
            .collect();
        let norm: f32 = waves.iter().map(|w| w.amp).sum();
        for y in 0..SIZE {
            for x in 0..SIZE {
                let mut v = 0.0;
                for w in &waves {
                    v += w.amp * (w.fx * x as f32 + w.fy * y as f32 + w.phase).sin();
                }
                img[(c * SIZE + y) * SIZE + x] = v / norm;
            }
        }
    }
    img
}

/// Generates the SynthObjects dataset.
pub fn generate_objects(config: &SynthConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let n = config.samples_per_class * CLASSES;
    let per = CHANNELS * SIZE * SIZE;
    let mut data = Vec::with_capacity(n * per);
    let mut labels = Vec::with_capacity(n);
    let templates: Vec<Vec<f32>> = (0..CLASSES).map(|c| template(c, config.seed)).collect();

    #[allow(clippy::needless_range_loop)] // class is also the label
    for class in 0..CLASSES {
        for _ in 0..config.samples_per_class {
            let dy = rng.gen_range(-config.max_shift..=config.max_shift);
            let dx = rng.gen_range(-config.max_shift..=config.max_shift);
            let gain = 0.8 + 0.4 * rng.gen::<f32>();
            let mut img = shift_image(&templates[class], CHANNELS, SIZE, SIZE, dy, dx, 0.0);
            for px in img.iter_mut() {
                *px = (*px * gain + config.noise_std * approx_normal(&mut rng)).clamp(-1.5, 1.5);
            }
            data.extend(img);
            labels.push(class);
        }
    }
    Dataset {
        images: Tensor::from_vec(&[n, CHANNELS, SIZE, SIZE], data),
        labels,
        num_classes: CLASSES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_are_distinct_and_bounded() {
        let ts: Vec<Vec<f32>> = (0..10).map(|c| template(c, 42)).collect();
        for (i, t) in ts.iter().enumerate() {
            assert!(t.iter().all(|&v| (-1.0..=1.0).contains(&v)), "class {i}");
            for (j, u) in ts.iter().enumerate().skip(i + 1) {
                let dist: f32 = t.iter().zip(u).map(|(a, b)| (a - b) * (a - b)).sum();
                assert!(dist > 1.0, "classes {i} and {j} nearly identical ({dist})");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = template(0, 1);
        let b = template(0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let cfg = SynthConfig {
            samples_per_class: 4,
            ..Default::default()
        };
        let a = generate_objects(&cfg);
        let b = generate_objects(&cfg);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.len(), 40);
        assert_eq!(a.image_shape(), [3, 16, 16]);
    }

    #[test]
    fn within_class_variation_below_between_class() {
        let cfg = SynthConfig {
            samples_per_class: 6,
            noise_std: 0.15,
            max_shift: 1,
            seed: 5,
        };
        let d = generate_objects(&cfg);
        let per = 3 * 16 * 16;
        let dist = |i: usize, j: usize| -> f32 {
            let a = &d.images.data()[i * per..(i + 1) * per];
            let b = &d.images.data()[j * per..(j + 1) * per];
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        // Samples 0..6 are class 0; 6..12 class 1.
        let within = dist(0, 1) + dist(2, 3) + dist(4, 5);
        let between = dist(0, 6) + dist(2, 8) + dist(4, 10);
        assert!(
            within < between,
            "class structure too weak: within {within} between {between}"
        );
    }
}
