//! Published baseline accelerator results quoted by the paper.

use serde::{Deserialize, Serialize};

/// Implementation technology of a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Room-temperature CMOS digital.
    Cmos,
    /// Resistive-RAM crossbar in-memory computing.
    ReRam,
    /// Spin-transfer-torque MRAM in-memory computing.
    SttMram,
    /// Phase-change-memory in-memory computing.
    Pcm,
    /// Rapid single-flux-quantum superconducting logic.
    Rsfq,
    /// Energy-efficient RSFQ (zero static power bias).
    Ersfq,
    /// AQFP with pure stochastic computing (SC-AQFP).
    AqfpSc,
}

/// Dataset a baseline reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// MNIST (MLP workloads, Table 3).
    Mnist,
    /// CIFAR-10 (VGG-Small workloads, Table 2).
    Cifar10,
}

/// One published baseline row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Name as printed in the paper.
    pub name: &'static str,
    /// Implementation technology.
    pub technology: Technology,
    /// Dataset of the reported accuracy.
    pub dataset: Dataset,
    /// Whether the model is binary (`false` = full precision).
    pub binary: bool,
    /// Top-1 accuracy in percent.
    pub accuracy_pct: f64,
    /// Energy efficiency in TOPS/W, excluding cooling.
    pub tops_per_watt: f64,
    /// Energy efficiency in TOPS/W including cooling, when the paper
    /// reports it (cryogenic baselines only).
    pub tops_per_watt_cooled: Option<f64>,
    /// Reported power in mW, if printed.
    pub power_mw: Option<f64>,
    /// Reported throughput in images/ms, if printed.
    pub throughput_img_per_ms: Option<f64>,
}

/// Table 2 baselines (CIFAR-10).
pub fn cifar10_baselines() -> Vec<Baseline> {
    vec![
        Baseline {
            name: "DDN (VGG-Small)",
            technology: Technology::Cmos,
            dataset: Dataset::Cifar10,
            binary: false,
            accuracy_pct: 92.5,
            tops_per_watt: 0.28,
            tops_per_watt_cooled: None,
            power_mw: None,
            throughput_img_per_ms: None,
        },
        Baseline {
            name: "IMB",
            technology: Technology::ReRam,
            dataset: Dataset::Cifar10,
            binary: true,
            accuracy_pct: 87.7,
            tops_per_watt: 82.6,
            tops_per_watt_cooled: None,
            power_mw: Some(12.5),
            throughput_img_per_ms: Some(1.3),
        },
        Baseline {
            name: "STT-BNN",
            technology: Technology::SttMram,
            dataset: Dataset::Cifar10,
            binary: true,
            accuracy_pct: 80.1,
            tops_per_watt: 311.0,
            tops_per_watt_cooled: None,
            power_mw: None,
            throughput_img_per_ms: None,
        },
        Baseline {
            name: "CMOS-BNN",
            technology: Technology::Cmos,
            dataset: Dataset::Cifar10,
            binary: true,
            accuracy_pct: 92.0,
            tops_per_watt: 617.0,
            tops_per_watt_cooled: None,
            power_mw: None,
            throughput_img_per_ms: None,
        },
    ]
}

/// Table 3 baselines (MNIST MLP).
pub fn mnist_baselines() -> Vec<Baseline> {
    vec![
        Baseline {
            name: "SyncBNN",
            technology: Technology::Cmos,
            dataset: Dataset::Mnist,
            binary: true,
            accuracy_pct: 98.4,
            tops_per_watt: 36.6,
            tops_per_watt_cooled: Some(36.6), // room temperature: no cooling
            power_mw: None,
            throughput_img_per_ms: None,
        },
        Baseline {
            name: "RSFQ",
            technology: Technology::Rsfq,
            dataset: Dataset::Mnist,
            binary: true,
            accuracy_pct: 97.9,
            tops_per_watt: 2.4e3,
            tops_per_watt_cooled: Some(8.1),
            power_mw: None,
            throughput_img_per_ms: None,
        },
        Baseline {
            name: "ERSFQ",
            technology: Technology::Ersfq,
            dataset: Dataset::Mnist,
            binary: true,
            accuracy_pct: 97.9,
            tops_per_watt: 1.5e4,
            tops_per_watt_cooled: Some(50.0),
            power_mw: None,
            throughput_img_per_ms: None,
        },
        Baseline {
            name: "SC-AQFP",
            technology: Technology::AqfpSc,
            dataset: Dataset::Mnist,
            binary: true,
            accuracy_pct: 96.9,
            tops_per_watt: 9.8e3,
            tops_per_watt_cooled: Some(24.5),
            power_mw: None,
            throughput_img_per_ms: None,
        },
    ]
}

/// The HERMES PCM in-memory compute core (Fig. 12), ~10.5 TOPS/W at 1 GHz.
pub fn hermes() -> Baseline {
    Baseline {
        name: "HERMES",
        technology: Technology::Pcm,
        dataset: Dataset::Cifar10,
        binary: false,
        accuracy_pct: f64::NAN, // not an accuracy comparison point
        tops_per_watt: 10.5,
        tops_per_watt_cooled: None,
        power_mw: None,
        throughput_img_per_ms: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_four_baselines_with_paper_numbers() {
        let b = cifar10_baselines();
        assert_eq!(b.len(), 4);
        let imb = b.iter().find(|x| x.name == "IMB").unwrap();
        assert_eq!(imb.tops_per_watt, 82.6);
        assert_eq!(imb.accuracy_pct, 87.7);
        let ddn = b.iter().find(|x| x.name.starts_with("DDN")).unwrap();
        assert!(!ddn.binary);
        assert_eq!(ddn.tops_per_watt, 0.28);
    }

    #[test]
    fn table3_cooling_penalties_match_paper() {
        let b = mnist_baselines();
        let rsfq = b.iter().find(|x| x.name == "RSFQ").unwrap();
        // 2.4e3 → 8.1 with cooling: a ~300× penalty (RSFQ static bias power
        // makes it worse than the 400× rule alone would suggest — the paper
        // prints both numbers, we encode both).
        assert!(rsfq.tops_per_watt / rsfq.tops_per_watt_cooled.unwrap() > 100.0);
        let sync = b.iter().find(|x| x.name == "SyncBNN").unwrap();
        assert_eq!(sync.tops_per_watt, sync.tops_per_watt_cooled.unwrap());
    }

    #[test]
    fn every_binary_baseline_is_marked() {
        for b in cifar10_baselines().iter().chain(mnist_baselines().iter()) {
            if b.name.starts_with("DDN") {
                assert!(!b.binary);
            } else {
                assert!(b.binary, "{}", b.name);
            }
        }
    }
}
