//! The pure stochastic-computing DNN baseline (SC-AQFP stand-in).
//!
//! Paper Section 2.3 contrasts SupeRBNN with SC-AQFP (Cai et al., ISCA'19),
//! which "can only work on a very small network for simple tasks (e.g.,
//! MNIST) without complex layers (e.g., batch normalization) and requires a
//! pretty large bit-stream length (i.e., 256∼2048)", whereas SupeRBNN's
//! SC-as-accumulator design needs only 16∼32. That claim is about an
//! architecture the paper does not rerun; this module *builds* the pure-SC
//! architecture so the stream-length requirement can be measured instead of
//! quoted.
//!
//! The baseline is an MLP whose every inference value is carried by bipolar
//! stochastic streams:
//!
//! * weights (real-valued, trained in software without batch norm — the
//!   limitation the paper names) are encoded as streams with
//!   `P(1) = (w/s + 1)/2`, where `s` is the per-layer max-magnitude scale
//!   recovered digitally after accumulation;
//! * multiplication is bitwise XNOR of weight and activation streams;
//! * accumulation is selectable between the two SC options:
//!   [`ScAccumulator::Apc`] (counts product bits into a binary number —
//!   what SC-AQFP's inner product does) and [`ScAccumulator::MuxTree`]
//!   (random-select scaled addition with an FSM `Stanh` activation — the
//!   fully stream-domain datapath);
//! * hidden activations are `HardTanh` in the value the streams carry.
//!
//! The APC variant re-randomizes each hidden value into a fresh stream per
//! layer (SC-AQFP's APC → binary → stochastic-number-generator loop); the
//! MUX variant never leaves the stream domain.

use aqfp_sc::fsm::StanhFsm;
use aqfp_sc::mux::mux_collect;
use aqfp_sc::packed::PackedStream;
use bnn_nn::layers::{HardTanh, Linear, Mode};
use bnn_nn::loss::softmax_cross_entropy;
use bnn_nn::optim::Sgd;
use bnn_nn::{NnRng, SeedableRng, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters for the float MLP underlying the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScMlpConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for ScMlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 32],
            epochs: 30,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed: 17,
        }
    }
}

/// One trained dense layer: weights `[out × in]` row-major plus bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseWeights {
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl DenseWeights {
    /// Wraps a weight matrix.
    ///
    /// # Panics
    /// Panics if the buffer sizes disagree with the dimensions.
    pub fn new(weights: Vec<f32>, bias: Vec<f32>, in_features: usize, out_features: usize) -> Self {
        assert_eq!(weights.len(), in_features * out_features, "weight size");
        assert_eq!(bias.len(), out_features, "bias size");
        Self {
            weights,
            bias,
            in_features,
            out_features,
        }
    }

    /// `(in_features, out_features)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }

    /// The weight row feeding output unit `o`.
    fn row(&self, o: usize) -> &[f32] {
        &self.weights[o * self.in_features..(o + 1) * self.in_features]
    }

    /// Per-layer stream scale: the max weight magnitude (streams encode
    /// `w/s`); at least 1e-6 to avoid division by zero on dead layers.
    fn scale(&self) -> f32 {
        self.weights
            .iter()
            .fold(0.0f32, |m, w| m.max(w.abs()))
            .max(1e-6)
    }
}

/// A trained float MLP (no batch normalization) ready for SC deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloatMlp {
    layers: Vec<DenseWeights>,
}

impl FloatMlp {
    /// Builds from explicit layer weights.
    ///
    /// # Panics
    /// Panics if `layers` is empty or consecutive dimensions disagree.
    pub fn new(layers: Vec<DenseWeights>) -> Self {
        assert!(!layers.is_empty(), "MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_features, pair[1].in_features,
                "layer dimensions must chain"
            );
        }
        Self { layers }
    }

    /// Trains on flat images (`inputs[i].len() == in_features`, values
    /// roughly in `[−1, 1]`) with HardTanh activations and no batch norm.
    ///
    /// # Panics
    /// Panics on empty data, mismatched labels, or zero epochs.
    pub fn train(
        inputs: &[Vec<f32>],
        labels: &[usize],
        classes: usize,
        config: &ScMlpConfig,
    ) -> Self {
        assert!(!inputs.is_empty(), "training set is empty");
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        assert!(config.epochs > 0, "need at least one epoch");
        let in_features = inputs[0].len();

        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut model = Sequential::new();
        let mut prev = in_features;
        for &h in &config.hidden {
            model.push(Linear::new(prev, h, false, &mut rng));
            model.push(HardTanh::new());
            prev = h;
        }
        model.push(Linear::new(prev, classes, false, &mut rng));

        let mut sgd = Sgd::new(config.lr, config.momentum, 0.0);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut shuffle_rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
        for _ in 0..config.epochs {
            order.shuffle(&mut shuffle_rng);
            for chunk in order.chunks(config.batch_size) {
                let mut data = Vec::with_capacity(chunk.len() * in_features);
                let mut batch_labels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    data.extend_from_slice(&inputs[i]);
                    batch_labels.push(labels[i]);
                }
                let x = Tensor::from_vec(&[chunk.len(), in_features], data);
                let logits = model.forward(&x, Mode::Train, &mut rng);
                let (_, grad) = softmax_cross_entropy(&logits, &batch_labels);
                sgd.zero_grad(&mut model);
                model.backward(&grad);
                sgd.step(&mut model);
            }
        }

        let mut layers = Vec::new();
        for layer in model.layers() {
            if let Some(lin) = layer.as_any().downcast_ref::<Linear>() {
                let (inf, outf) = lin.dims();
                layers.push(DenseWeights::new(
                    lin.weight().data().to_vec(),
                    lin.bias().data().to_vec(),
                    inf,
                    outf,
                ));
            }
        }
        Self::new(layers)
    }

    /// The layer stack.
    pub fn layers(&self) -> &[DenseWeights] {
        &self.layers
    }

    /// Exact float forward pass; returns class logits.
    ///
    /// # Panics
    /// Panics if `input.len()` differs from the first layer's fan-in.
    pub fn forward_float(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.layers[0].in_features, "input width");
        let mut act: Vec<f32> = input.to_vec();
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut next = Vec::with_capacity(layer.out_features);
            for o in 0..layer.out_features {
                let y: f32 = layer
                    .row(o)
                    .iter()
                    .zip(&act)
                    .map(|(w, x)| w * x)
                    .sum::<f32>()
                    + layer.bias[o];
                next.push(if l == last { y } else { y.clamp(-1.0, 1.0) });
            }
            act = next;
        }
        act
    }

    /// Float classification accuracy over `(inputs, labels)`.
    ///
    /// # Panics
    /// Panics on mismatched lengths.
    pub fn accuracy_float(&self, inputs: &[Vec<f32>], labels: &[usize]) -> f64 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        let correct = inputs
            .iter()
            .zip(labels)
            .filter(|(x, &y)| argmax(&self.forward_float(x)) == y)
            .count();
        correct as f64 / inputs.len().max(1) as f64
    }
}

/// How the pure-SC datapath accumulates per-neuron products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScAccumulator {
    /// Count product-stream bits with an approximate parallel counter into
    /// a binary number, apply the activation digitally, regenerate a
    /// stream (SC-AQFP's datapath). Stream noise enters once per layer.
    Apc,
    /// Random-select MUX scaled addition plus `Stanh` FSM activation; the
    /// value never leaves the stream domain, but the sum is scaled by
    /// `1/fan-in`, so resolution demands very long streams.
    MuxTree,
}

impl std::fmt::Display for ScAccumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScAccumulator::Apc => write!(f, "APC"),
            ScAccumulator::MuxTree => write!(f, "MUX"),
        }
    }
}

/// Weight streams pre-generated for one stream length, reusable across
/// samples and across both accumulator variants.
#[derive(Debug, Clone)]
pub struct PreparedScMlp<'a> {
    mlp: &'a FloatMlp,
    stream_len: usize,
    /// Per layer: `out × in` packed weight streams, row-major.
    weight_streams: Vec<Vec<PackedStream>>,
    /// Per layer scale `s` (streams carry `w/s`).
    scales: Vec<f32>,
}

impl<'a> PreparedScMlp<'a> {
    /// Generates weight streams of length `stream_len`.
    ///
    /// # Panics
    /// Panics if `stream_len == 0`.
    pub fn new(mlp: &'a FloatMlp, stream_len: usize, seed: u64) -> Self {
        assert!(stream_len > 0, "stream length must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weight_streams = Vec::with_capacity(mlp.layers.len());
        let mut scales = Vec::with_capacity(mlp.layers.len());
        for layer in &mlp.layers {
            let s = layer.scale();
            scales.push(s);
            let mut streams = Vec::with_capacity(layer.out_features * layer.in_features);
            for o in 0..layer.out_features {
                for &w in layer.row(o) {
                    streams.push(PackedStream::generate_bipolar(
                        f64::from(w / s).clamp(-1.0, 1.0),
                        stream_len,
                        &mut rng,
                    ));
                }
            }
            weight_streams.push(streams);
        }
        Self {
            mlp,
            stream_len,
            weight_streams,
            scales,
        }
    }

    /// Stream length `L`.
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Classifies one flat input (values clamped into `[−1, 1]`).
    ///
    /// # Panics
    /// Panics if `input.len()` differs from the first layer's fan-in.
    pub fn classify<R: Rng + ?Sized>(
        &self,
        input: &[f32],
        accumulator: ScAccumulator,
        rng: &mut R,
    ) -> usize {
        match accumulator {
            ScAccumulator::Apc => self.classify_apc(input, rng),
            ScAccumulator::MuxTree => self.classify_mux(input, rng),
        }
    }

    /// SC classification accuracy over `(inputs, labels)`, optionally on
    /// the first `limit` samples.
    ///
    /// # Panics
    /// Panics on mismatched lengths.
    pub fn accuracy<R: Rng + ?Sized>(
        &self,
        inputs: &[Vec<f32>],
        labels: &[usize],
        accumulator: ScAccumulator,
        limit: Option<usize>,
        rng: &mut R,
    ) -> f64 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        let n = limit.unwrap_or(inputs.len()).min(inputs.len());
        let correct = inputs[..n]
            .iter()
            .zip(&labels[..n])
            .filter(|(x, &y)| self.classify(x, accumulator, rng) == y)
            .count();
        correct as f64 / n.max(1) as f64
    }

    fn encode_input<R: Rng + ?Sized>(&self, values: &[f32], rng: &mut R) -> Vec<PackedStream> {
        values
            .iter()
            .map(|&v| {
                PackedStream::generate_bipolar(f64::from(v).clamp(-1.0, 1.0), self.stream_len, rng)
            })
            .collect()
    }

    /// SC-AQFP datapath: XNOR products, APC count, digital activation,
    /// stream regeneration between layers.
    fn classify_apc<R: Rng + ?Sized>(&self, input: &[f32], rng: &mut R) -> usize {
        let layers = &self.mlp.layers;
        assert_eq!(input.len(), layers[0].in_features, "input width");
        let l_len = self.stream_len as f64;
        let mut streams = self.encode_input(input, rng);
        let last = layers.len() - 1;
        let mut logits = Vec::new();
        for (l, layer) in layers.iter().enumerate() {
            let s = f64::from(self.scales[l]);
            let fan_in = layer.in_features as f64;
            let mut values = Vec::with_capacity(layer.out_features);
            for o in 0..layer.out_features {
                let base = o * layer.in_features;
                let mut ones = 0usize;
                for (i, x) in streams.iter().enumerate() {
                    ones += x.xnor_ones(&self.weight_streams[l][base + i]);
                }
                // Σ bipolar product values = 2·ones/L − fan_in, each product
                // carrying (w/s)·x; undo the scale and add the bias.
                let y = s * (2.0 * ones as f64 / l_len - fan_in) + f64::from(layer.bias[o]);
                values.push(y);
            }
            if l == last {
                logits = values;
            } else {
                streams = values
                    .iter()
                    .map(|&y| {
                        PackedStream::generate_bipolar(y.clamp(-1.0, 1.0), self.stream_len, rng)
                    })
                    .collect();
            }
        }
        argmax_f64(&logits)
    }

    /// Fully stream-domain datapath: MUX scaled addition and `Stanh`
    /// activation; values stay stochastic streams end to end.
    fn classify_mux<R: Rng + ?Sized>(&self, input: &[f32], rng: &mut R) -> usize {
        let layers = &self.mlp.layers;
        assert_eq!(input.len(), layers[0].in_features, "input width");
        let mut streams = self.encode_input(input, rng);
        let last = layers.len() - 1;
        for (l, layer) in layers.iter().enumerate() {
            let s = f64::from(self.scales[l]);
            // Bias joins the MUX as one extra input stream carrying bias/s.
            let bias_streams: Vec<PackedStream> = layer
                .bias
                .iter()
                .map(|&b| {
                    PackedStream::generate_bipolar(
                        f64::from(b / self.scales[l]).clamp(-1.0, 1.0),
                        self.stream_len,
                        rng,
                    )
                })
                .collect();
            let n_sel = layer.in_features + 1;
            let mut next = Vec::with_capacity(layer.out_features);
            for (o, bias_stream) in bias_streams.iter().enumerate() {
                let base = o * layer.in_features;
                let summed = mux_collect(self.stream_len, |t| {
                    let pick = rng.gen_range(0..n_sel);
                    if pick == layer.in_features {
                        bias_stream.bit(t)
                    } else {
                        // XNOR of activation and weight stream bits.
                        streams[pick].bit(t) == self.weight_streams[l][base + pick].bit(t)
                    }
                });
                if l == last {
                    next.push(summed);
                } else {
                    // The MUX output carries y/(s·n); HardTanh(y) needs a
                    // linear gain of s·n, approximated by Stanh.
                    let fsm = StanhFsm::with_gain(s * n_sel as f64);
                    next.push(fsm.run(&summed));
                }
            }
            streams = next;
        }
        // Same positive scale on every logit stream: argmax of the stream
        // values is the argmax of the logits, up to SC noise.
        let counts: Vec<f64> = streams.iter().map(|s| s.ones() as f64).collect();
        argmax_f64(&counts)
    }
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

fn argmax_f64(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-class toy problem: class = sign of the mean of the inputs.
    fn toy_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label = rng.gen_range(0..2usize);
            let center = if label == 0 { -0.4 } else { 0.4 };
            let x: Vec<f32> = (0..dim)
                .map(|_| (center + rng.gen_range(-0.5..0.5f32)).clamp(-1.0, 1.0))
                .collect();
            xs.push(x);
            ys.push(label);
        }
        (xs, ys)
    }

    fn trained_toy() -> (FloatMlp, Vec<Vec<f32>>, Vec<usize>) {
        let (xs, ys) = toy_data(240, 16, 5);
        let cfg = ScMlpConfig {
            hidden: vec![12],
            epochs: 25,
            batch_size: 16,
            lr: 0.08,
            momentum: 0.9,
            seed: 3,
        };
        let mlp = FloatMlp::train(&xs, &ys, 2, &cfg);
        (mlp, xs, ys)
    }

    #[test]
    fn float_training_learns_the_toy_task() {
        let (mlp, xs, ys) = trained_toy();
        assert!(mlp.accuracy_float(&xs, &ys) > 0.9);
    }

    #[test]
    fn long_streams_recover_float_accuracy_apc() {
        let (mlp, xs, ys) = trained_toy();
        let float_acc = mlp.accuracy_float(&xs, &ys);
        let prepared = PreparedScMlp::new(&mlp, 1024, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let sc = prepared.accuracy(&xs, &ys, ScAccumulator::Apc, Some(80), &mut rng);
        assert!(
            sc > float_acc - 0.1,
            "APC at L=1024 should track float: {sc} vs {float_acc}"
        );
    }

    #[test]
    fn apc_accuracy_improves_with_stream_length() {
        let (mlp, xs, ys) = trained_toy();
        let mut accs = Vec::new();
        for &len in &[4usize, 64, 1024] {
            let prepared = PreparedScMlp::new(&mlp, len, 11);
            let mut rng = StdRng::seed_from_u64(12);
            accs.push(prepared.accuracy(&xs, &ys, ScAccumulator::Apc, Some(80), &mut rng));
        }
        assert!(
            accs[2] >= accs[0],
            "longer streams should not hurt: {accs:?}"
        );
    }

    #[test]
    fn mux_needs_longer_streams_than_apc() {
        let (mlp, xs, ys) = trained_toy();
        let prepared = PreparedScMlp::new(&mlp, 64, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let apc = prepared.accuracy(&xs, &ys, ScAccumulator::Apc, Some(80), &mut rng);
        let mux = prepared.accuracy(&xs, &ys, ScAccumulator::MuxTree, Some(80), &mut rng);
        // At a short window the binary-domain APC is no worse than the
        // 1/fan-in-scaled MUX datapath.
        assert!(apc + 1e-9 >= mux, "APC {apc} vs MUX {mux} at L=64");
    }

    #[test]
    fn classify_is_deterministic_given_rng_seed() {
        let (mlp, xs, _) = trained_toy();
        let prepared = PreparedScMlp::new(&mlp, 128, 15);
        let a = prepared.classify(&xs[0], ScAccumulator::Apc, &mut StdRng::seed_from_u64(1));
        let b = prepared.classify(&xs[0], ScAccumulator::Apc, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn dense_weights_validate_dimensions() {
        let d = DenseWeights::new(vec![0.0; 6], vec![0.0; 2], 3, 2);
        assert_eq!(d.dims(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "weight size")]
    fn dense_weights_reject_bad_buffer() {
        DenseWeights::new(vec![0.0; 5], vec![0.0; 2], 3, 2);
    }

    #[test]
    #[should_panic(expected = "dimensions must chain")]
    fn mlp_rejects_non_chaining_layers() {
        FloatMlp::new(vec![
            DenseWeights::new(vec![0.0; 6], vec![0.0; 2], 3, 2),
            DenseWeights::new(vec![0.0; 12], vec![0.0; 4], 3, 4),
        ]);
    }

    #[test]
    #[should_panic(expected = "stream length must be positive")]
    fn prepared_rejects_zero_length() {
        let (mlp, _, _) = trained_toy();
        PreparedScMlp::new(&mlp, 0, 1);
    }
}
