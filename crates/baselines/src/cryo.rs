//! Cryogenic scaling arithmetic (paper Sections 6.5–6.6, Fig. 12).
//!
//! * 77 K Cryo-CMOS: device efficiency ×1.5 over room temperature; cooling
//!   consumes 9.65× the device power, so cooled efficiency divides by 9.65.
//! * 4.2 K superconducting: cooling is ~400× the chip dissipation, so
//!   cooled efficiency divides by 400.
//! * AQFP frequency scaling: adiabatic switching loss per operation grows
//!   linearly with clock frequency, so efficiency scales as `f₀ / f`
//!   relative to the 5 GHz calibration point — "lower frequency can
//!   generally achieve higher energy efficiency" (Section 6.5).
//! * CMOS dynamic energy per operation is frequency-independent to first
//!   order (`E = C·V²` per switch), so CMOS curves are flat in Fig. 12.

use aqfp_device::consts::{COOLING_OVERHEAD_4K, COOLING_OVERHEAD_77K, CRYO_CMOS_GAIN};

/// Efficiency of a 77 K Cryo-CMOS version of a room-temperature design,
/// excluding cooling.
pub fn cryo_cmos_efficiency(room_tops_per_watt: f64) -> f64 {
    room_tops_per_watt * CRYO_CMOS_GAIN
}

/// Applies the 77 K cooling overhead.
pub fn with_77k_cooling(tops_per_watt: f64) -> f64 {
    tops_per_watt / COOLING_OVERHEAD_77K
}

/// Applies the 4.2 K cooling overhead (superconducting electronics).
pub fn with_4k_cooling(tops_per_watt: f64) -> f64 {
    tops_per_watt / COOLING_OVERHEAD_4K
}

/// AQFP efficiency at clock `f_ghz` given the efficiency calibrated at
/// `f0_ghz` (adiabatic `E/op ∝ f`).
///
/// # Panics
/// Panics unless both frequencies are positive and finite.
pub fn aqfp_efficiency_at(f_ghz: f64, eff_at_f0: f64, f0_ghz: f64) -> f64 {
    assert!(
        f_ghz > 0.0 && f_ghz.is_finite() && f0_ghz > 0.0 && f0_ghz.is_finite(),
        "frequencies must be positive and finite"
    );
    eff_at_f0 * f0_ghz / f_ghz
}

/// One point of the Fig. 12 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Point {
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Ours, no cooling.
    pub ours: f64,
    /// Ours, with 4.2 K cooling.
    pub ours_cooled: f64,
    /// Room-temperature CMOS reference.
    pub cmos: f64,
    /// 77 K Cryo-CMOS, no cooling.
    pub cryo_cmos: f64,
    /// 77 K Cryo-CMOS with cooling.
    pub cryo_cmos_cooled: f64,
}

/// Generates the Fig. 12 series: ours vs a CMOS reference across
/// frequencies, with and without cooling.
pub fn fig12_series(
    frequencies_ghz: &[f64],
    ours_at_5ghz: f64,
    cmos_reference: f64,
) -> Vec<Fig12Point> {
    frequencies_ghz
        .iter()
        .map(|&f| {
            let ours = aqfp_efficiency_at(f, ours_at_5ghz, 5.0);
            let cryo = cryo_cmos_efficiency(cmos_reference);
            Fig12Point {
                frequency_ghz: f,
                ours,
                ours_cooled: with_4k_cooling(ours),
                cmos: cmos_reference,
                cryo_cmos: cryo,
                cryo_cmos_cooled: with_77k_cooling(cryo),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooling_overheads_match_paper_constants() {
        assert!((with_4k_cooling(400.0) - 1.0).abs() < 1e-12);
        assert!((with_77k_cooling(9.65) - 1.0).abs() < 1e-12);
        assert!((cryo_cmos_efficiency(100.0) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_cooling_row_reproduces() {
        // Table 2: 1.9e5 TOPS/W → 4.8e2 with cooling.
        let cooled = with_4k_cooling(1.9e5);
        assert!((cooled - 4.75e2).abs() < 5.0, "got {cooled}");
    }

    #[test]
    fn aqfp_gains_at_low_frequency() {
        let at_5 = 1.9e5;
        assert!(aqfp_efficiency_at(0.5, at_5, 5.0) > at_5 * 9.9);
        assert!(aqfp_efficiency_at(10.0, at_5, 5.0) < at_5);
        // Calibration point is a fixed point.
        assert_eq!(aqfp_efficiency_at(5.0, at_5, 5.0), at_5);
    }

    #[test]
    fn fig12_margins_match_paper_claims() {
        // "approximately four orders of magnitude superior energy efficiency
        // when solely accounting for device consumption, and … two to three
        // orders … when factoring in cooling consumption" vs Cryo-CMOS.
        let pts = fig12_series(&[0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0], 1.9e5, 617.0);
        for p in &pts {
            let device_margin = p.ours / p.cryo_cmos;
            let cooled_margin = p.ours_cooled / p.cryo_cmos_cooled;
            assert!(
                device_margin > 50.0,
                "device margin {device_margin} at {} GHz",
                p.frequency_ghz
            );
            // Even against the best-case 617 TOPS/W CMOS-BNN corner at
            // 10 GHz, ours stays ahead with cooling; at typical operating
            // points the margin is orders of magnitude (checked below).
            assert!(
                cooled_margin > 2.0,
                "cooled margin {cooled_margin} at {} GHz",
                p.frequency_ghz
            );
        }
        // At the low-frequency end the device margin reaches ~4 orders and
        // the cooled margin 2+ orders, matching Section 6.5's claim.
        assert!(pts[0].ours / pts[0].cryo_cmos > 1e3);
        assert!(pts[0].ours_cooled / pts[0].cryo_cmos_cooled > 1e2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_frequency() {
        aqfp_efficiency_at(0.0, 1.0, 5.0);
    }
}
