//! Bit-exact software XNOR/popcount BNN reference.
//!
//! Conventional BNN inference replaces the signed dot product of ±1 vectors
//! with XNOR + popcount: for `n`-long vectors,
//! `dot(a, w) = 2·popcount(XNOR(a, w)) − n`. This module implements that
//! datapath exactly (bit-packed in `u64` words) and is the noiseless
//! accuracy reference against which hardware-faithful AQFP inference is
//! compared — and a baseline for throughput benchmarks.

use aqfp_sc::BitPlane;

/// A ±1 vector packed into `u64` words (`1` bit = +1), backed by the
/// workspace-wide [`BitPlane`] packing (same bit order and tail-masking
/// invariant as the deploy engine's activation planes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedVec {
    plane: BitPlane,
}

impl PackedVec {
    /// Packs a slice of ±1 values (`>= 0` packs as +1, matching the
    /// paper's sign convention).
    pub fn from_signs(values: &[f32]) -> Self {
        Self {
            plane: BitPlane::from_signs(values),
        }
    }

    /// Wraps an already packed plane.
    pub fn from_plane(plane: BitPlane) -> Self {
        Self { plane }
    }

    /// The backing plane.
    pub fn plane(&self) -> &BitPlane {
        &self.plane
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.plane.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.plane.is_empty()
    }

    /// Signed dot product with `other` via XNOR + popcount.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &PackedVec) -> i32 {
        assert_eq!(self.len(), other.len(), "length mismatch in packed dot");
        self.plane.xnor_dot(&other.plane) as i32
    }
}

/// A binary linear layer computed entirely with XNOR/popcount.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopcountLinear {
    rows: Vec<PackedVec>,
    fan_in: usize,
}

impl PopcountLinear {
    /// Builds from a row-major `[out, fan_in]` sign matrix.
    ///
    /// # Panics
    /// Panics if `weights.len()` is not a multiple of `fan_in` or `fan_in`
    /// is zero.
    pub fn new(weights: &[f32], fan_in: usize) -> Self {
        assert!(fan_in > 0, "fan-in must be positive");
        assert_eq!(weights.len() % fan_in, 0, "weights not a whole matrix");
        let rows = weights.chunks(fan_in).map(PackedVec::from_signs).collect();
        Self { rows, fan_in }
    }

    /// Builds from already packed weight rows (each row one output unit's
    /// ±1 weights over the fan-in) — the reassembly path of the deploy
    /// snapshot codec, which persists the rows as raw bitplane words.
    ///
    /// # Panics
    /// Panics if `fan_in` is zero or any row's length differs from it.
    pub fn from_rows(rows: Vec<PackedVec>, fan_in: usize) -> Self {
        assert!(fan_in > 0, "fan-in must be positive");
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), fan_in, "row {i} length mismatch");
        }
        Self { rows, fan_in }
    }

    /// Number of output units.
    pub fn out_features(&self) -> usize {
        self.rows.len()
    }

    /// The fan-in.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// The packed weight rows (used by the packed deploy engine to score
    /// classifier logits straight from an activation plane).
    pub fn rows(&self) -> &[PackedVec] {
        &self.rows
    }

    /// Computes all outputs for one already packed ±1 activation plane.
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn forward_plane(&self, input: &BitPlane) -> Vec<i32> {
        assert_eq!(input.len(), self.fan_in, "input length mismatch");
        self.rows
            .iter()
            .map(|r| r.plane().xnor_dot(input) as i32)
            .collect()
    }

    /// Computes all outputs for one ±1 input vector.
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn forward(&self, input: &[f32]) -> Vec<i32> {
        assert_eq!(input.len(), self.fan_in, "input length mismatch");
        let packed = PackedVec::from_signs(input);
        self.rows.iter().map(|r| r.dot(&packed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_dot(a: &[f32], b: &[f32]) -> i32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let sx = if x >= 0.0 { 1 } else { -1 };
                let sy = if y >= 0.0 { 1 } else { -1 };
                sx * sy
            })
            .sum()
    }

    #[test]
    fn packed_dot_matches_float_dot() {
        // Deterministic pseudo-random ±1 vectors of awkward lengths.
        for len in [1usize, 7, 63, 64, 65, 130, 200] {
            let a: Vec<f32> = (0..len)
                .map(|i| if (i * 7 + 3) % 5 < 2 { 1.0 } else { -1.0 })
                .collect();
            let b: Vec<f32> = (0..len)
                .map(|i| if (i * 11 + 1) % 3 == 0 { 1.0 } else { -1.0 })
                .collect();
            let pa = PackedVec::from_signs(&a);
            let pb = PackedVec::from_signs(&b);
            assert_eq!(pa.dot(&pb), float_dot(&a, &b), "len {len}");
        }
    }

    #[test]
    fn self_dot_is_length() {
        let v: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let p = PackedVec::from_signs(&v);
        assert_eq!(p.dot(&p), 100);
    }

    #[test]
    fn opposite_dot_is_negative_length() {
        let a: Vec<f32> = vec![1.0; 70];
        let b: Vec<f32> = vec![-1.0; 70];
        assert_eq!(
            PackedVec::from_signs(&a).dot(&PackedVec::from_signs(&b)),
            -70
        );
    }

    #[test]
    fn popcount_linear_layer() {
        // 2×3 weights: [+,+,−] and [−,−,−].
        let w = [1.0, 1.0, -1.0, -1.0, -1.0, -1.0];
        let layer = PopcountLinear::new(&w, 3);
        assert_eq!(layer.out_features(), 2);
        let out = layer.forward(&[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![1, -3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let a = PackedVec::from_signs(&[1.0; 8]);
        let b = PackedVec::from_signs(&[1.0; 9]);
        a.dot(&b);
    }
}
