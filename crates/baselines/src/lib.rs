//! Baseline accelerator models for the paper's comparison tables.
//!
//! The paper compares SupeRBNN against *published* numbers of CMOS, ReRAM,
//! MRAM and RSFQ/ERSFQ accelerators (Tables 2–3) and against Cryo-CMOS
//! scaling rules (Fig. 12); it does not rerun those systems. This crate
//! encodes the same numbers and the same cooling arithmetic, plus a
//! bit-exact software XNOR/popcount BNN reference used as the accuracy
//! yardstick for hardware-faithful inference.
//!
//! One baseline is rebuilt rather than quoted: [`sc_dnn`] implements the
//! *pure* stochastic-computing DNN datapath of SC-AQFP (paper Section 2.3)
//! so its 256–2048-bit stream-length requirement — versus SupeRBNN's
//! 16–32 — can be measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cryo;
pub mod published;
pub mod sc_dnn;
pub mod software;

pub use published::{Baseline, Dataset, Technology};
pub use sc_dnn::{FloatMlp, PreparedScMlp, ScAccumulator, ScMlpConfig};
