//! AQFP crossbar synapse arrays (paper Section 4.1–4.2).
//!
//! The crossbar is the in-memory compute fabric of SupeRBNN: binary weights
//! live in logic-in-memory (LiM) cells built from AQFP buffers, each cell
//! XNORs its stored weight with the row activation, and the per-column
//! output currents merge in the analog domain. The merged current is
//! attenuated by the growing superconductive inductance of the merging
//! network ([`attenuation`], paper Eq. 2) and digitized by an AQFP buffer
//! acting as sign-function + ADC — the *neuron circuit* — whose gray-zone
//! makes the column output stochastic near the decision threshold.
//!
//! Modules:
//!
//! * [`attenuation`] — the `I1(Cs) = A·Cs^−B` current-attenuation law and a
//!   log-log least-squares fitter (the paper fits its measured curve the
//!   same way);
//! * [`lim`] — the logic-in-memory cell;
//! * [`array`](mod@array) — the crossbar array with analog column summation and
//!   stochastic neuron read-out;
//! * [`cost`] — the hardware cost model that reproduces the paper's Table 1
//!   *exactly* (`JJ = 12n² + 48n`, `latency = 15n ps`, `E = 5 zJ/JJ`);
//! * [`tile`] — partitioning of large weight matrices onto multiple
//!   crossbars (the paper's scalability answer, Challenge #2/#3).
//!
//! # Example
//!
//! ```
//! use aqfp_crossbar::array::{Crossbar, CrossbarConfig};
//! use aqfp_device::{Bit, DeviceRng, SeedableRng};
//!
//! let mut rng = DeviceRng::seed_from_u64(1);
//! // A 4×2 crossbar with all-(+1) weights.
//! let weights = vec![vec![Bit::One; 2]; 4];
//! let xbar = Crossbar::new(CrossbarConfig::default(), weights).unwrap();
//! // All-(+1) input: every column sums to +4 — far outside the gray-zone.
//! let out = xbar.compute(&[Bit::One; 4], &mut rng).unwrap();
//! assert_eq!(out, vec![Bit::One, Bit::One]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod attenuation;
pub mod cost;
pub mod faults;
pub mod lim;
pub mod tile;

pub use array::{Crossbar, CrossbarConfig, CrossbarError};
pub use attenuation::AttenuationModel;
pub use cost::CrossbarCost;

/// Crate-wide result alias: every fallible crossbar API fails with
/// [`CrossbarError`].
pub type Result<T> = std::result::Result<T, CrossbarError>;
