//! Crossbar current attenuation (paper Eq. 2 and Fig. 5).
//!
//! Merging `Cs` cell outputs through superconductive inductance divides the
//! per-cell current: the amplitude that represents the value "1" decays as a
//! power law of the crossbar size,
//!
//! ```text
//! I1(Cs) = A · Cs^−B                                        (Eq. 2)
//! ```
//!
//! The paper measures the curve on fabricated merging circuits and fits the
//! constants; we adopt `A = 70 µA` (the drive amplitude, so a size-1 "array"
//! is lossless) and `B = 0.6` (see DESIGN.md §2). This module also provides
//! the same log-log least-squares fit the paper performs, so simulated
//! "measurements" can be turned back into a model — used by the Fig. 5
//! regeneration bench.

use serde::{Deserialize, Serialize};

/// Power-law current attenuation model `I1(Cs) = A · Cs^−B`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttenuationModel {
    /// Amplitude at size 1, in µA.
    pub a_ua: f64,
    /// Decay exponent (positive).
    pub b: f64,
}

impl AttenuationModel {
    /// The calibrated model used throughout the reproduction.
    pub fn paper_fit() -> Self {
        Self {
            a_ua: aqfp_device::consts::ATTENUATION_A_UA,
            b: aqfp_device::consts::ATTENUATION_B,
        }
    }

    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `a_ua > 0` and `b > 0`.
    pub fn new(a_ua: f64, b: f64) -> Self {
        assert!(
            a_ua > 0.0 && a_ua.is_finite(),
            "A must be positive, got {a_ua}"
        );
        assert!(b > 0.0 && b.is_finite(), "B must be positive, got {b}");
        Self { a_ua, b }
    }

    /// Output current amplitude representing the value 1 for a column that
    /// merges `cs` cells, in µA.
    ///
    /// # Panics
    /// Panics if `cs == 0`.
    pub fn i1_ua(&self, cs: usize) -> f64 {
        assert!(cs > 0, "crossbar size must be at least 1");
        self.a_ua * (cs as f64).powf(-self.b)
    }

    /// The value-domain gray-zone width `ΔVin(Cs) = ΔIin / I1(Cs)`
    /// (paper Eq. 4).
    pub fn value_grayzone(&self, grayzone_ua: f64, cs: usize) -> f64 {
        grayzone_ua / self.i1_ua(cs)
    }

    /// The same decay law with the drive amplitude scaled by `scale` —
    /// every `I1(Cs)` picks up the factor uniformly. This is how a
    /// device-parameter variation's attenuation drift
    /// (`aqfp_device::VariationModel::drive_scale`) lands on the model:
    /// the die's merged currents run at `scale × I1` while the programmed
    /// thresholds stay where calibration put them.
    ///
    /// # Panics
    /// Panics unless `scale` is positive and finite.
    #[must_use]
    pub fn with_drive_scale(&self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "drive scale must be positive and finite, got {scale}"
        );
        Self {
            a_ua: self.a_ua * scale,
            b: self.b,
        }
    }

    /// Fits a power law to `(size, current)` samples by least squares in
    /// log-log space — the "mathematical fitting curve" step of Fig. 5.
    ///
    /// Returns `None` if fewer than two distinct sizes are given or any
    /// sample is non-positive.
    pub fn fit(samples: &[(usize, f64)]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let mut xs = Vec::with_capacity(samples.len());
        let mut ys = Vec::with_capacity(samples.len());
        for &(cs, i) in samples {
            if cs == 0 || i <= 0.0 || !i.is_finite() {
                return None;
            }
            xs.push((cs as f64).ln());
            ys.push(i.ln());
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx == 0.0 {
            return None; // all sizes equal: slope undefined
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx; // = −B
        let intercept = my - slope * mx; // = ln A
        let b = -slope;
        if b <= 0.0 {
            return None; // not a decaying curve
        }
        Some(Self {
            a_ua: intercept.exp(),
            b,
        })
    }

    /// Generates the Fig. 5b curve: `(size, I1)` for each requested size.
    pub fn curve(&self, sizes: &[usize]) -> Vec<(usize, f64)> {
        sizes.iter().map(|&cs| (cs, self.i1_ua(cs))).collect()
    }
}

impl Default for AttenuationModel {
    fn default() -> Self {
        Self::paper_fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_one_is_lossless() {
        let m = AttenuationModel::paper_fit();
        assert!((m.i1_ua(1) - 70.0).abs() < 1e-12);
    }

    #[test]
    fn monotonically_decreasing() {
        let m = AttenuationModel::paper_fit();
        let mut prev = f64::INFINITY;
        for cs in [1usize, 4, 8, 16, 18, 36, 72, 144, 1024] {
            let i = m.i1_ua(cs);
            assert!(i < prev, "I1 must decrease, at {cs}");
            assert!(i > 0.0);
            prev = i;
        }
    }

    #[test]
    fn larger_crossbars_widen_value_grayzone() {
        let m = AttenuationModel::paper_fit();
        let g = aqfp_device::consts::DEFAULT_GRAYZONE_UA;
        assert!(m.value_grayzone(g, 144) > m.value_grayzone(g, 4));
    }

    #[test]
    fn fit_recovers_exact_power_law() {
        let truth = AttenuationModel::new(70.0, 0.6);
        let samples: Vec<(usize, f64)> = [4usize, 8, 16, 36, 72, 144]
            .iter()
            .map(|&cs| (cs, truth.i1_ua(cs)))
            .collect();
        let fit = AttenuationModel::fit(&samples).unwrap();
        assert!((fit.a_ua - 70.0).abs() < 1e-9, "A = {}", fit.a_ua);
        assert!((fit.b - 0.6).abs() < 1e-12, "B = {}", fit.b);
    }

    #[test]
    fn fit_tolerates_measurement_noise() {
        let truth = AttenuationModel::new(70.0, 0.6);
        // ±2 % deterministic "noise".
        let samples: Vec<(usize, f64)> = [4usize, 8, 16, 36, 72, 144]
            .iter()
            .enumerate()
            .map(|(i, &cs)| {
                let wiggle = if i % 2 == 0 { 1.02 } else { 0.98 };
                (cs, truth.i1_ua(cs) * wiggle)
            })
            .collect();
        let fit = AttenuationModel::fit(&samples).unwrap();
        assert!((fit.b - 0.6).abs() < 0.05, "B = {}", fit.b);
        assert!((fit.a_ua - 70.0).abs() < 5.0, "A = {}", fit.a_ua);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(AttenuationModel::fit(&[]).is_none());
        assert!(AttenuationModel::fit(&[(4, 10.0)]).is_none());
        assert!(AttenuationModel::fit(&[(4, 10.0), (4, 11.0)]).is_none());
        assert!(AttenuationModel::fit(&[(4, 10.0), (8, -1.0)]).is_none());
        // Increasing curve: not attenuation.
        assert!(AttenuationModel::fit(&[(4, 1.0), (8, 2.0)]).is_none());
    }

    #[test]
    fn curve_covers_requested_sizes() {
        let m = AttenuationModel::paper_fit();
        let sizes = [4usize, 8, 16];
        let c = m.curve(&sizes);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].0, 4);
        assert!((c[2].1 - m.i1_ua(16)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_panics() {
        AttenuationModel::paper_fit().i1_ua(0);
    }
}
