//! Fabrication-fault injection for crossbar arrays.
//!
//! The paper's Section 1 motivates AQFP's "immature manufacturing
//! technology" as one reason crossbars cannot grow arbitrarily large.
//! Fabricated superconducting dies exhibit defective Josephson junctions:
//! a LiM cell whose storage loop is damaged behaves as a *stuck-at* weight,
//! and a broken column merge or neuron reads as a stuck output. This module
//! injects such defects deterministically from a seed so robustness
//! experiments (accuracy vs defect rate) are reproducible.

use crate::array::Crossbar;
use aqfp_device::Bit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fabrication-fault model for crossbar arrays.
///
/// The fields are private so the `[0, 1]` rate invariant established by
/// [`FaultModel::new`] cannot be bypassed with a struct literal; read the
/// rates through [`stuck_cell_rate`](Self::stuck_cell_rate) /
/// [`dead_column_rate`](Self::dead_column_rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that a LiM cell's stored weight is stuck (at a uniform
    /// random polarity fixed at fabrication time).
    stuck_cell_rate: f64,
    /// Probability that an entire column's neuron is stuck (its output is a
    /// fabrication-time constant regardless of the input current).
    dead_column_rate: f64,
}

impl FaultModel {
    /// A defect-free process.
    pub fn pristine() -> Self {
        Self {
            stuck_cell_rate: 0.0,
            dead_column_rate: 0.0,
        }
    }

    /// Creates a model, validating that both probabilities are actual
    /// probabilities.
    ///
    /// # Errors
    /// [`CrossbarError::FaultRateOutOfRange`](crate::CrossbarError::FaultRateOutOfRange)
    /// unless both rates are in `[0, 1]` (NaN rates are rejected too).
    pub fn new(stuck_cell_rate: f64, dead_column_rate: f64) -> crate::Result<Self> {
        for (name, rate) in [
            ("stuck-cell", stuck_cell_rate),
            ("dead-column", dead_column_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(crate::CrossbarError::FaultRateOutOfRange { name, rate });
            }
        }
        Ok(Self {
            stuck_cell_rate,
            dead_column_rate,
        })
    }

    /// Probability that a LiM cell's stored weight is stuck.
    pub fn stuck_cell_rate(&self) -> f64 {
        self.stuck_cell_rate
    }

    /// Probability that an entire column's neuron is stuck.
    pub fn dead_column_rate(&self) -> f64 {
        self.dead_column_rate
    }
}

/// The faults drawn for one physical crossbar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    /// `(row, col, stuck_value)` stuck LiM cells.
    pub stuck_cells: Vec<(usize, usize, Bit)>,
    /// `(col, stuck_value)` dead columns.
    pub dead_columns: Vec<(usize, Bit)>,
}

impl InjectedFaults {
    /// Whether the die is defect-free.
    pub fn is_clean(&self) -> bool {
        self.stuck_cells.is_empty() && self.dead_columns.is_empty()
    }

    /// Total defect count.
    pub fn count(&self) -> usize {
        self.stuck_cells.len() + self.dead_columns.len()
    }
}

/// Draws the fabrication faults of one `rows × cols` die.
pub fn draw_faults<R: Rng + ?Sized>(
    model: &FaultModel,
    rows: usize,
    cols: usize,
    rng: &mut R,
) -> InjectedFaults {
    let mut stuck_cells = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen::<f64>() < model.stuck_cell_rate {
                stuck_cells.push((r, c, Bit::from_bool(rng.gen())));
            }
        }
    }
    let mut dead_columns = Vec::new();
    for c in 0..cols {
        if rng.gen::<f64>() < model.dead_column_rate {
            dead_columns.push((c, Bit::from_bool(rng.gen())));
        }
    }
    InjectedFaults {
        stuck_cells,
        dead_columns,
    }
}

/// Draws the fabrication faults of a whole tiled deployment: one
/// [`InjectedFaults`] per `(rows, cols)` die, in the order given.
///
/// This is the fault-drawing entry point for *packed* crossbar geometry,
/// where the physical dies have been re-assembled into bitplanes and no
/// `Crossbar` objects exist to iterate over. It consumes the RNG exactly
/// like the equivalent sequence of per-die [`draw_faults`] calls, so a
/// campaign that injects into the packed engine draws the *same* defects
/// as a scalar deployment walking its tile crossbars in plan order from
/// the same seed — the property the packed/scalar differential tests rely
/// on.
pub fn draw_faults_tiled<R: Rng + ?Sized>(
    model: &FaultModel,
    dims: &[(usize, usize)],
    rng: &mut R,
) -> Vec<InjectedFaults> {
    dims.iter()
        .map(|&(rows, cols)| draw_faults(model, rows, cols, rng))
        .collect()
}

/// One journaled weight-plane edit: the packed word at
/// `(layer, channel, word)` held `prior` before a fault patch overwrote
/// it. Recorded by the journaled fault applier so a Monte Carlo trial can
/// revert its patches in place instead of cloning the whole model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordPatch {
    /// Pipeline stage index the patched matrix belongs to.
    pub layer: usize,
    /// Output channel (bitplane row) of the patched word.
    pub channel: usize,
    /// Word index within the channel's packed weight row.
    pub word: usize,
    /// The word's value before the patch.
    pub prior: u64,
}

/// One journaled dead-column pin: the `(layer, channel, tile)` neuron's
/// dead-override byte held `prior_dead` — and, where the tile geometry
/// runs on SWAR tables, its folded comparator-bias lane word held
/// `prior_bias` — before a fault patch pinned the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinPatch {
    /// Pipeline stage index the patched matrix belongs to.
    pub layer: usize,
    /// Output channel of the pinned neuron.
    pub channel: usize,
    /// Row-tile index of the pinned neuron.
    pub tile: usize,
    /// The dead-override byte before the patch (0 = live, 1 = stuck '0',
    /// 2 = stuck '1').
    pub prior_dead: u8,
    /// The SWAR bias word covering this tile's lane before the patch;
    /// `None` when the tile is evaluated on the generic span path (no
    /// bias word exists to restore).
    pub prior_bias: Option<u64>,
}

/// An undo journal over in-place fault patches: every weight word and
/// dead-column pin an applier touches is recorded with its prior value,
/// so `patch → evaluate → revert` restores the packed state bit-for-bit
/// without a per-trial clone.
///
/// Entries must be reverted in **reverse record order**: adjacent row
/// tiles can share a boundary word, so the same `(layer, channel, word)`
/// may be recorded twice — the later record's `prior` already contains
/// the earlier patch, and only last-in-first-out restoration walks the
/// chain back to the original value. The packed engine's
/// `PackedModel::revert_faults` implements that contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchJournal {
    words: Vec<WordPatch>,
    pins: Vec<PinPatch>,
}

impl PatchJournal {
    /// An empty journal, ready for reuse across trials.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a weight-word edit (call **before** overwriting).
    pub fn record_word(&mut self, layer: usize, channel: usize, word: usize, prior: u64) {
        self.words.push(WordPatch {
            layer,
            channel,
            word,
            prior,
        });
    }

    /// Records a dead-column pin (call **before** overwriting).
    pub fn record_pin(
        &mut self,
        layer: usize,
        channel: usize,
        tile: usize,
        prior_dead: u8,
        prior_bias: Option<u64>,
    ) {
        self.pins.push(PinPatch {
            layer,
            channel,
            tile,
            prior_dead,
            prior_bias,
        });
    }

    /// The recorded weight-word edits, in record order.
    pub fn words(&self) -> &[WordPatch] {
        &self.words
    }

    /// The recorded dead-column pins, in record order.
    pub fn pins(&self) -> &[PinPatch] {
        &self.pins
    }

    /// Whether nothing was recorded (a clean draw needs no revert).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.pins.is_empty()
    }

    /// Total recorded entries.
    pub fn len(&self) -> usize {
        self.words.len() + self.pins.len()
    }

    /// Clears the journal for the next trial, keeping its allocations.
    pub fn clear(&mut self) {
        self.words.clear();
        self.pins.clear();
    }
}

/// One enumerable structural defect class of a single crossbar die.
///
/// Where [`FaultModel`] *draws* defects at random rates (the Monte Carlo
/// robustness view), this type *names* them one at a time — the unit the
/// ATPG screening loop and the fault-universe equivalence checks iterate
/// over. Coordinates are die-local (`row < rows`, `col < cols` of the
/// die).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A LiM cell whose storage loop is damaged: `(row, col)` reads as the
    /// fabrication constant `value` regardless of the programmed weight.
    StuckCell {
        /// Die-local fan-in row of the damaged cell.
        row: usize,
        /// Die-local output column of the damaged cell.
        col: usize,
        /// The constant the cell reads as.
        value: Bit,
    },
    /// A broken column merge or neuron: column `col`'s output is the
    /// fabrication constant `value` regardless of the input current.
    DeadColumn {
        /// Die-local output column of the dead neuron.
        col: usize,
        /// The constant the column reads as.
        value: Bit,
    },
}

/// One member of a tiled deployment's structural fault universe: a single
/// defect localized to one physical die (`die` indexes the deployment
/// plan order — the same order as
/// [`draw_faults_tiled`]'s `dims`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuralFault {
    /// Die index in deployment plan order.
    pub die: usize,
    /// The defect class on that die.
    pub kind: FaultKind,
}

impl StructuralFault {
    /// Renders the fault as a per-die draw vector aligned with a
    /// `dies`-tile deployment: every die is clean except `self.die`, which
    /// carries exactly this one defect. This is the bridge from the
    /// enumerated universe to the existing fault appliers
    /// (`PackedTiledMatrix::apply_faults*`, which consume one
    /// [`InjectedFaults`] per die in plan order).
    ///
    /// # Panics
    /// Panics if `self.die >= dies`.
    pub fn to_draws(&self, dies: usize) -> Vec<InjectedFaults> {
        assert!(self.die < dies, "die index out of range");
        let mut draws = vec![
            InjectedFaults {
                stuck_cells: Vec::new(),
                dead_columns: Vec::new(),
            };
            dies
        ];
        match self.kind {
            FaultKind::StuckCell { row, col, value } => {
                draws[self.die].stuck_cells.push((row, col, value));
            }
            FaultKind::DeadColumn { col, value } => {
                draws[self.die].dead_columns.push((col, value));
            }
        }
        draws
    }
}

/// Enumerates the complete single-defect structural fault universe of a
/// tiled deployment: for every `(rows, cols)` die in `dims` (plan order),
/// both stuck-at polarities of every LiM cell and both polarities of
/// every dead column. The universe size is
/// `Σ die (2·rows·cols + 2·cols)`; callers that need a bounded campaign
/// subsample it (see `core::screening`).
pub fn enumerate_fault_universe(dims: &[(usize, usize)]) -> Vec<StructuralFault> {
    let mut universe = Vec::with_capacity(fault_universe_size(dims));
    for (die, &(rows, cols)) in dims.iter().enumerate() {
        for row in 0..rows {
            for col in 0..cols {
                for value in [Bit::Zero, Bit::One] {
                    universe.push(StructuralFault {
                        die,
                        kind: FaultKind::StuckCell { row, col, value },
                    });
                }
            }
        }
        for col in 0..cols {
            for value in [Bit::Zero, Bit::One] {
                universe.push(StructuralFault {
                    die,
                    kind: FaultKind::DeadColumn { col, value },
                });
            }
        }
    }
    universe
}

/// The size of [`enumerate_fault_universe`]'s result without
/// materializing it.
pub fn fault_universe_size(dims: &[(usize, usize)]) -> usize {
    dims.iter()
        .map(|&(rows, cols)| 2 * rows * cols + 2 * cols)
        .sum()
}

/// Applies stuck-cell faults to a crossbar by overwriting the stored
/// weights (the physical effect of a damaged storage loop: the programmed
/// weight is lost). Dead columns cannot be expressed through weights; the
/// caller masks those outputs with
/// [`InjectedFaults::dead_columns`] after read-out.
pub fn apply_stuck_cells(xbar: &mut Crossbar, faults: &InjectedFaults) {
    let rows = xbar.rows();
    let cols = xbar.cols();
    let mut weights: Vec<Vec<Bit>> = (0..rows)
        .map(|r| (0..cols).map(|c| xbar.weight(r, c)).collect())
        .collect();
    for &(r, c, v) in &faults.stuck_cells {
        if r < rows && c < cols {
            weights[r][c] = v;
        }
    }
    xbar.program(&weights).expect("same shape");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::CrossbarConfig;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn pristine_draws_nothing() {
        let f = draw_faults(&FaultModel::pristine(), 16, 16, &mut rng());
        assert!(f.is_clean());
        assert_eq!(f.count(), 0);
    }

    #[test]
    fn rates_control_defect_density() {
        let model = FaultModel::new(0.1, 0.0).unwrap();
        let f = draw_faults(&model, 100, 100, &mut rng());
        // 10 000 cells at 10 %: expect ~1 000, allow wide Monte-Carlo slack.
        assert!(
            (700..1300).contains(&f.stuck_cells.len()),
            "{} stuck cells",
            f.stuck_cells.len()
        );
        assert!(f.dead_columns.is_empty());
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let model = FaultModel::new(0.05, 0.02).unwrap();
        let a = draw_faults(&model, 32, 32, &mut rng());
        let b = draw_faults(&model, 32, 32, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn tiled_draw_consumes_rng_like_per_die_draws() {
        let model = FaultModel::new(0.1, 0.3).unwrap();
        let dims = [(8usize, 5usize), (3, 5), (8, 2), (3, 2)];
        let tiled = draw_faults_tiled(&model, &dims, &mut rng());
        let mut r = rng();
        let per_die: Vec<InjectedFaults> = dims
            .iter()
            .map(|&(rows, cols)| draw_faults(&model, rows, cols, &mut r))
            .collect();
        assert_eq!(tiled, per_die);
        assert_eq!(tiled.len(), dims.len());
    }

    #[test]
    fn stuck_cells_override_weights() {
        let weights = vec![vec![Bit::One; 4]; 4];
        let mut xbar = Crossbar::new(CrossbarConfig::default(), weights).unwrap();
        let faults = InjectedFaults {
            stuck_cells: vec![(1, 2, Bit::Zero), (3, 0, Bit::Zero)],
            dead_columns: vec![],
        };
        apply_stuck_cells(&mut xbar, &faults);
        assert_eq!(xbar.weight(1, 2), Bit::Zero);
        assert_eq!(xbar.weight(3, 0), Bit::Zero);
        assert_eq!(xbar.weight(0, 0), Bit::One); // untouched
    }

    #[test]
    fn stuck_cell_changes_column_sum() {
        let weights = vec![vec![Bit::One]; 4];
        let mut xbar = Crossbar::new(CrossbarConfig::default(), weights).unwrap();
        let input = vec![Bit::One; 4];
        assert_eq!(xbar.raw_sum(0, &input).unwrap(), 4);
        let faults = InjectedFaults {
            stuck_cells: vec![(0, 0, Bit::Zero)],
            dead_columns: vec![],
        };
        apply_stuck_cells(&mut xbar, &faults);
        assert_eq!(xbar.raw_sum(0, &input).unwrap(), 2);
    }

    #[test]
    fn fault_universe_enumerates_every_class_once() {
        let dims = [(3usize, 2usize), (1, 2)];
        let universe = enumerate_fault_universe(&dims);
        // Die 0: 2·3·2 stuck + 2·2 dead = 16; die 1: 2·1·2 + 2·2 = 8.
        assert_eq!(universe.len(), 24);
        assert_eq!(universe.len(), fault_universe_size(&dims));
        // No duplicates.
        for (i, a) in universe.iter().enumerate() {
            for b in &universe[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Every coordinate stays inside its die.
        for f in &universe {
            let (rows, cols) = dims[f.die];
            match f.kind {
                FaultKind::StuckCell { row, col, .. } => {
                    assert!(row < rows && col < cols);
                }
                FaultKind::DeadColumn { col, .. } => assert!(col < cols),
            }
        }
    }

    #[test]
    fn structural_fault_draws_touch_only_their_die() {
        let f = StructuralFault {
            die: 1,
            kind: FaultKind::StuckCell {
                row: 2,
                col: 0,
                value: Bit::One,
            },
        };
        let draws = f.to_draws(3);
        assert_eq!(draws.len(), 3);
        assert!(draws[0].is_clean() && draws[2].is_clean());
        assert_eq!(draws[1].stuck_cells, vec![(2, 0, Bit::One)]);
        assert!(draws[1].dead_columns.is_empty());

        let d = StructuralFault {
            die: 0,
            kind: FaultKind::DeadColumn {
                col: 3,
                value: Bit::Zero,
            },
        };
        let draws = d.to_draws(1);
        assert_eq!(draws[0].dead_columns, vec![(3, Bit::Zero)]);
        assert!(draws[0].stuck_cells.is_empty());
    }

    #[test]
    fn rejects_bad_rates_through_the_error_seam() {
        use crate::CrossbarError;
        assert!(matches!(
            FaultModel::new(1.5, 0.0),
            Err(CrossbarError::FaultRateOutOfRange {
                name: "stuck-cell",
                ..
            })
        ));
        assert!(matches!(
            FaultModel::new(0.0, -0.1),
            Err(CrossbarError::FaultRateOutOfRange {
                name: "dead-column",
                ..
            })
        ));
        assert!(FaultModel::new(f64::NAN, 0.0).is_err());
        assert!(FaultModel::new(0.0, 1.0).is_ok());
    }
}
