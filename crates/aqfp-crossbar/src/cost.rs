//! The crossbar hardware cost model — an exact reproduction of Table 1.
//!
//! The paper's Table 1 lists latency, JJ count and per-cycle energy for
//! square crossbars. All seven published rows follow closed forms:
//!
//! ```text
//! JJ(n)      = 12·n² + 48·n          (12 JJ per LiM cell + 48 JJ per row/col periphery)
//! latency(n) = 15·n ps
//! energy(n)  = 0.005 aJ · JJ(n)      (5 zJ per JJ per cycle)
//! ```
//!
//! e.g. `n = 8`: `JJ = 12·64 + 48·8 = 1152`, `latency = 120 ps`,
//! `energy = 5.76 aJ` — exactly the printed row. The model generalizes to
//! rectangular `rows × cols` arrays as `12·rows·cols + 24·rows + 24·cols`.

use serde::{Deserialize, Serialize};

/// JJs per LiM cell (storage buffer + XNOR macro + merge coupling).
pub const JJ_PER_CELL: f64 = 12.0;

/// Peripheral JJs per row or column (drivers, clock distribution, neuron).
pub const JJ_PER_LINE: f64 = 24.0;

/// Latency coefficient: 15 ps per row of merge depth.
pub const LATENCY_PS_PER_ROW: f64 = 15.0;

/// Hardware cost of one crossbar array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarCost {
    /// Rows of the array.
    pub rows: usize,
    /// Columns of the array.
    pub cols: usize,
}

impl CrossbarCost {
    /// A square `n × n` crossbar.
    pub fn square(n: usize) -> Self {
        Self { rows: n, cols: n }
    }

    /// Total JJ count.
    pub fn jj_count(&self) -> u64 {
        (JJ_PER_CELL * (self.rows * self.cols) as f64
            + JJ_PER_LINE * (self.rows + self.cols) as f64) as u64
    }

    /// Latency of one crossbar evaluation, in ps.
    pub fn latency_ps(&self) -> f64 {
        LATENCY_PS_PER_ROW * self.rows as f64
    }

    /// Energy dissipated per clock cycle, in aJ.
    pub fn energy_per_cycle_aj(&self) -> f64 {
        self.jj_count() as f64 * aqfp_device::consts::ENERGY_PER_JJ_AJ
    }

    /// Power at clock frequency `f` GHz, in nW.
    pub fn power_nw(&self, frequency_ghz: f64) -> f64 {
        self.energy_per_cycle_aj() * frequency_ghz
    }

    /// Binary MAC operations performed per evaluation (`rows × cols`
    /// multiplies + the analog accumulation, counted as 2·rows·cols OPs by
    /// the usual accelerator convention).
    pub fn ops_per_eval(&self) -> u64 {
        2 * (self.rows * self.cols) as u64
    }

    /// Energy efficiency in TOPS/W for back-to-back pipelined evaluations
    /// at `f` GHz: one evaluation completes per cycle.
    ///
    /// `TOPS/W = (ops/cycle · f GHz) / power` with unit bookkeeping:
    /// ops·1e9/s ÷ (energy_aJ·1e-18 J · f·1e9 /s) = ops / energy_aJ / 1e-3.
    pub fn tops_per_watt(&self) -> f64 {
        // ops per cycle / energy per cycle: (ops / (E_aJ × 1e-18 J)) op/J;
        // 1 TOPS/W = 1e12 op/J.
        self.ops_per_eval() as f64 / (self.energy_per_cycle_aj() * 1e-18) / 1e12
    }
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Crossbar side length.
    pub size: usize,
    /// Latency in ps.
    pub latency_ps: f64,
    /// JJ count.
    pub jj_count: u64,
    /// Energy per cycle in aJ.
    pub energy_aj: f64,
}

/// The sizes printed in the paper's Table 1.
pub const TABLE1_SIZES: [usize; 7] = [4, 8, 16, 18, 36, 72, 144];

/// Regenerates Table 1.
pub fn table1() -> Vec<Table1Row> {
    TABLE1_SIZES
        .iter()
        .map(|&n| {
            let c = CrossbarCost::square(n);
            Table1Row {
                size: n,
                latency_ps: c.latency_ps(),
                jj_count: c.jj_count(),
                energy_aj: c.energy_per_cycle_aj(),
            }
        })
        .collect()
}

/// The rows exactly as printed in the paper, for verification.
pub const TABLE1_PAPER: [(usize, f64, u64, f64); 7] = [
    (4, 60.0, 384, 1.92),
    (8, 120.0, 1152, 5.76),
    (16, 240.0, 3840, 19.20),
    (18, 270.0, 4752, 23.76),
    (36, 540.0, 17280, 86.4),
    (72, 1080.0, 65664, 328.32),
    (144, 2160.0, 255744, 1278.72),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_exactly() {
        let rows = table1();
        for (row, &(size, lat, jj, e)) in rows.iter().zip(TABLE1_PAPER.iter()) {
            assert_eq!(row.size, size);
            assert!((row.latency_ps - lat).abs() < 1e-9, "latency at {size}");
            assert_eq!(row.jj_count, jj, "JJ at {size}");
            assert!((row.energy_aj - e).abs() < 1e-9, "energy at {size}");
        }
    }

    #[test]
    fn rectangular_matches_square_on_diagonal() {
        let sq = CrossbarCost::square(8);
        let rect = CrossbarCost { rows: 8, cols: 8 };
        assert_eq!(sq.jj_count(), rect.jj_count());
    }

    #[test]
    fn growth_trends_match_paper_observation() {
        // "As the crossbar area increases, all three hardware benchmarks
        // increase but with different growth trends": latency linear,
        // JJ/energy quadratic.
        let small = CrossbarCost::square(4);
        let big = CrossbarCost::square(144);
        let lat_ratio = big.latency_ps() / small.latency_ps();
        let jj_ratio = big.jj_count() as f64 / small.jj_count() as f64;
        assert!((lat_ratio - 36.0).abs() < 1e-9); // 144/4
        assert!(jj_ratio > 600.0, "JJ grows superlinearly: {jj_ratio}");
    }

    #[test]
    fn power_at_5ghz() {
        let c = CrossbarCost::square(8);
        // 5.76 aJ × 5 GHz = 28.8 nW.
        assert!((c.power_nw(5.0) - 28.8).abs() < 1e-9);
    }

    #[test]
    fn tops_per_watt_is_astronomical() {
        // Device-level efficiency of the raw crossbar fabric; the paper's
        // end-to-end numbers (1e5–1e6 TOPS/W) include peripherals, so the
        // bare fabric must sit above them.
        let c = CrossbarCost::square(16);
        let eff = c.tops_per_watt();
        assert!(eff > 1e6, "bare-fabric efficiency {eff} TOPS/W");
    }

    #[test]
    fn ops_count() {
        assert_eq!(CrossbarCost::square(4).ops_per_eval(), 32);
        assert_eq!(CrossbarCost { rows: 2, cols: 3 }.ops_per_eval(), 12);
    }
}
