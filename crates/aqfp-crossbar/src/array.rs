//! The crossbar synapse array with analog accumulation and stochastic
//! neuron read-out (paper Fig. 3).
//!
//! Computation of one column:
//!
//! 1. every LiM cell XNORs its stored weight with the row activation and
//!    injects ±I_in;
//! 2. the column currents merge magnetically; the per-unit amplitude after
//!    merging `rows` cells is `I1(rows)` (attenuation, Eq. 2), so a column
//!    whose XNOR products sum to `s` carries `s · I1(rows)` µA;
//! 3. an AQFP buffer (the *neuron circuit*) with a per-column programmable
//!    threshold `Ith` digitizes the current — deterministically when the
//!    current is far from `Ith`, stochastically inside the gray-zone.

use crate::attenuation::AttenuationModel;
use crate::lim::LimCell;
use aqfp_device::{AqfpBuffer, Bit, BufferConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration shared by all columns of a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Gray-zone width `ΔIin` of the neuron buffers, in µA.
    pub grayzone_ua: f64,
    /// Current-attenuation model of the merging network.
    pub attenuation: AttenuationModel,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self {
            grayzone_ua: aqfp_device::consts::DEFAULT_GRAYZONE_UA,
            attenuation: AttenuationModel::paper_fit(),
        }
    }
}

impl CrossbarConfig {
    /// The operating conditions under a device-parameter variation: the
    /// gray-zone width picks up the variation's effective width (scale ×
    /// thermal ratio) and the attenuation model its drive scale.
    ///
    /// This is the **single definition** of how a
    /// [`VariationModel`](aqfp_device::VariationModel) lands on crossbar
    /// operating conditions — the scalar drift path
    /// (`TiledMatrix::apply_variation`), the recalibration path
    /// (`HardwareConfig::with_variation`) and the packed stochastic
    /// engine's flip tables all go through it, which is what keeps the
    /// scalar and packed engines evaluating the identical effective law
    /// (and therefore seed-matched) under any variation.
    #[must_use]
    pub fn with_variation(&self, vm: &aqfp_device::VariationModel) -> Self {
        Self {
            grayzone_ua: vm.effective_grayzone_ua(self.grayzone_ua),
            attenuation: self.attenuation.with_drive_scale(vm.drive_scale()),
        }
    }
}

/// Errors raised by crossbar construction and use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// The weight matrix was empty in either dimension.
    EmptyWeights,
    /// The weight matrix rows have inconsistent lengths.
    RaggedWeights {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
    },
    /// An activation vector did not match the row count.
    WrongInputLen {
        /// Crossbar row count.
        expected: usize,
        /// Provided activation count.
        got: usize,
    },
    /// A threshold vector did not match the column count.
    WrongThresholdLen {
        /// Crossbar column count.
        expected: usize,
        /// Provided threshold count.
        got: usize,
    },
    /// A fault-model probability was outside `[0, 1]`.
    FaultRateOutOfRange {
        /// Which rate was rejected (`"stuck-cell"` or `"dead-column"`).
        name: &'static str,
        /// The offending value.
        rate: f64,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::EmptyWeights => {
                write!(
                    f,
                    "crossbar weight matrix must be non-empty in both dimensions"
                )
            }
            CrossbarError::RaggedWeights { expected, row, got } => write!(
                f,
                "weight matrix is ragged: row {row} has {got} entries, expected {expected}"
            ),
            CrossbarError::WrongInputLen { expected, got } => {
                write!(
                    f,
                    "activation vector length {got} does not match {expected} rows"
                )
            }
            CrossbarError::WrongThresholdLen { expected, got } => {
                write!(
                    f,
                    "threshold vector length {got} does not match {expected} columns"
                )
            }
            CrossbarError::FaultRateOutOfRange { name, rate } => {
                write!(f, "{name} fault rate {rate} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for CrossbarError {}

/// An AQFP crossbar synapse array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crossbar {
    config: CrossbarConfig,
    rows: usize,
    cols: usize,
    /// Row-major LiM cells.
    cells: Vec<LimCell>,
    /// Per-column neuron threshold `Ith`, in µA.
    thresholds_ua: Vec<f64>,
}

impl Crossbar {
    /// Builds a crossbar pre-storing `weights` (`weights[row][col]`).
    /// Neuron thresholds start at 0 µA.
    ///
    /// # Errors
    /// [`CrossbarError::EmptyWeights`] or [`CrossbarError::RaggedWeights`].
    pub fn new(config: CrossbarConfig, weights: Vec<Vec<Bit>>) -> crate::Result<Self> {
        if weights.is_empty() || weights[0].is_empty() {
            return Err(CrossbarError::EmptyWeights);
        }
        let cols = weights[0].len();
        for (i, row) in weights.iter().enumerate() {
            if row.len() != cols {
                return Err(CrossbarError::RaggedWeights {
                    expected: cols,
                    row: i,
                    got: row.len(),
                });
            }
        }
        let rows = weights.len();
        let cells = weights
            .into_iter()
            .flat_map(|row| row.into_iter().map(LimCell::new))
            .collect();
        Ok(Self {
            config,
            rows,
            cols,
            cells,
            thresholds_ua: vec![0.0; cols],
        })
    }

    /// Number of rows (= fan-in merged per column = the `Cs` of Eq. 2).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (output neurons).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shared configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Replaces the operating conditions (gray-zone width, attenuation)
    /// without touching the stored weights or the programmed thresholds —
    /// the seam device-parameter *variation* flows through: a drifted die
    /// keeps its calibration-time programming but senses and merges
    /// currents under the new conditions. A zero gray-zone width is only
    /// usable by the deterministic entry points ([`Crossbar::compute_ideal`],
    /// [`Crossbar::raw_sum`]); the stochastic ones reject it when they
    /// build their neuron law.
    pub fn set_config(&mut self, config: CrossbarConfig) {
        self.config = config;
    }

    /// The attenuated unit current `I1(rows)` of this crossbar, in µA.
    pub fn unit_current_ua(&self) -> f64 {
        self.config.attenuation.i1_ua(self.rows)
    }

    /// Per-column neuron thresholds, in µA.
    pub fn thresholds_ua(&self) -> &[f64] {
        &self.thresholds_ua
    }

    /// Programs the per-column neuron thresholds (BN matching, Eq. 16).
    ///
    /// # Errors
    /// [`CrossbarError::WrongThresholdLen`] on length mismatch.
    pub fn set_thresholds_ua(&mut self, thresholds: Vec<f64>) -> crate::Result<()> {
        if thresholds.len() != self.cols {
            return Err(CrossbarError::WrongThresholdLen {
                expected: self.cols,
                got: thresholds.len(),
            });
        }
        self.thresholds_ua = thresholds;
        Ok(())
    }

    /// The stored weight at `(row, col)`.
    pub fn weight(&self, row: usize, col: usize) -> Bit {
        self.cells[row * self.cols + col].weight()
    }

    /// The neuron buffer of `col`.
    pub fn neuron(&self, col: usize) -> AqfpBuffer {
        AqfpBuffer::new(BufferConfig {
            threshold_ua: self.thresholds_ua[col],
            grayzone_ua: self.config.grayzone_ua,
        })
    }

    /// The integer XNOR-product sum of `col` (the latent pre-activation in
    /// the value domain, range `[−rows, +rows]`).
    ///
    /// # Errors
    /// [`CrossbarError::WrongInputLen`] on activation length mismatch.
    pub fn raw_sum(&self, col: usize, input: &[Bit]) -> crate::Result<i32> {
        if input.len() != self.rows {
            return Err(CrossbarError::WrongInputLen {
                expected: self.rows,
                got: input.len(),
            });
        }
        let mut sum = 0i32;
        for (r, &a) in input.iter().enumerate() {
            sum += self.cells[r * self.cols + col].multiply(a).to_value() as i32;
        }
        Ok(sum)
    }

    /// The physical merged current of `col`, in µA: `raw_sum · I1(rows)`.
    pub fn column_current_ua(&self, col: usize, input: &[Bit]) -> crate::Result<f64> {
        Ok(self.raw_sum(col, input)? as f64 * self.unit_current_ua())
    }

    /// Analytic probability that the neuron of `col` reads '1' (Eq. 1).
    pub fn column_probability(&self, col: usize, input: &[Bit]) -> crate::Result<f64> {
        let i = self.column_current_ua(col, input)?;
        Ok(self.neuron(col).probability_one(i))
    }

    /// One stochastic read-out of all columns (one clock cycle).
    pub fn compute<R: rand::Rng + ?Sized>(
        &self,
        input: &[Bit],
        rng: &mut R,
    ) -> crate::Result<Vec<Bit>> {
        (0..self.cols)
            .map(|c| {
                let i = self.column_current_ua(c, input)?;
                Ok(self.neuron(c).sense(i, rng))
            })
            .collect()
    }

    /// Ideal (noiseless) read-out: the sign of the column current relative
    /// to the threshold. The software-model reference for tests.
    pub fn compute_ideal(&self, input: &[Bit]) -> crate::Result<Vec<Bit>> {
        (0..self.cols)
            .map(|c| {
                let i = self.column_current_ua(c, input)?;
                Ok(Bit::from_sign(i - self.thresholds_ua[c]))
            })
            .collect()
    }

    /// Holds `input` for `window` clock cycles and returns the per-column
    /// output bit-streams (paper Fig. 6a) — stochastic numbers ready for the
    /// SC accumulation module.
    pub fn observe<R: rand::Rng + ?Sized>(
        &self,
        input: &[Bit],
        window: usize,
        rng: &mut R,
    ) -> crate::Result<Vec<Vec<Bit>>> {
        (0..self.cols)
            .map(|c| {
                let i = self.column_current_ua(c, input)?;
                Ok(self.neuron(c).observe(i, window, rng))
            })
            .collect()
    }

    /// Reprograms all weights (same shape requirements as [`Crossbar::new`]).
    ///
    /// # Errors
    /// Shape errors as in [`Crossbar::new`]; additionally the new matrix
    /// must match the existing dimensions.
    pub fn program(&mut self, weights: &[Vec<Bit>]) -> crate::Result<()> {
        if weights.len() != self.rows {
            return Err(CrossbarError::WrongInputLen {
                expected: self.rows,
                got: weights.len(),
            });
        }
        for (i, row) in weights.iter().enumerate() {
            if row.len() != self.cols {
                return Err(CrossbarError::RaggedWeights {
                    expected: self.cols,
                    row: i,
                    got: row.len(),
                });
            }
        }
        for (r, row) in weights.iter().enumerate() {
            for (c, &w) in row.iter().enumerate() {
                self.cells[r * self.cols + c].program(w);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_device::{DeviceRng, SeedableRng};

    fn bits(pattern: &[i8]) -> Vec<Bit> {
        pattern.iter().map(|&v| Bit::from_sign(v as f64)).collect()
    }

    fn identity4() -> Vec<Vec<Bit>> {
        (0..4)
            .map(|r| (0..4).map(|c| Bit::from_bool(r == c)).collect())
            .collect()
    }

    #[test]
    fn raw_sum_is_dot_product() {
        let w = vec![bits(&[1, -1]), bits(&[1, 1]), bits(&[-1, 1])];
        let xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let input = bits(&[1, 1, -1]);
        // col0: 1·1 + 1·1 + (−1)(−1) = 3; col1: −1 + 1 − 1 = −1.
        assert_eq!(xbar.raw_sum(0, &input).unwrap(), 3);
        assert_eq!(xbar.raw_sum(1, &input).unwrap(), -1);
    }

    #[test]
    fn column_current_scales_by_attenuation() {
        let w = vec![bits(&[1]); 16];
        let xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let input = vec![Bit::One; 16];
        let i = xbar.column_current_ua(0, &input).unwrap();
        let unit = AttenuationModel::paper_fit().i1_ua(16);
        assert!((i - 16.0 * unit).abs() < 1e-9);
        assert!(i < 16.0 * 70.0, "attenuation must reduce the ideal sum");
    }

    #[test]
    fn deterministic_when_far_from_threshold() {
        let xbar = Crossbar::new(CrossbarConfig::default(), identity4()).unwrap();
        let mut rng = DeviceRng::seed_from_u64(0);
        // Identity weights, +1 inputs: every column sums to
        // 1·1 + 3·(−1) = −2 → current −2·I1(4) ≈ −61 µA, far below zero.
        let input = vec![Bit::One; 4];
        for _ in 0..50 {
            let out = xbar.compute(&input, &mut rng).unwrap();
            assert_eq!(out, vec![Bit::Zero; 4]);
        }
    }

    #[test]
    fn stochastic_at_zero_sum() {
        // 2 rows, weights (+1, −1) in one column: input (+1, +1) sums to 0.
        let w = vec![bits(&[1]), bits(&[-1])];
        let xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let mut rng = DeviceRng::seed_from_u64(1);
        let input = vec![Bit::One; 2];
        let p = xbar.column_probability(0, &input).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        let ones = (0..2000)
            .filter(|_| xbar.compute(&input, &mut rng).unwrap()[0] == Bit::One)
            .count();
        assert!((800..1200).contains(&ones), "got {ones}/2000 ones");
    }

    #[test]
    fn bigger_crossbars_are_more_random_at_fixed_sum() {
        // Same latent sum (+1), growing rows: the attenuated unit current
        // shrinks toward the gray-zone, so P drifts from 1 toward 1/2 —
        // the "randomness in the value domain is intensified when the
        // crossbar size becomes larger" observation of Section 3.
        let cfg = CrossbarConfig::default();
        let mut prev_p = 1.0 + 1e-12;
        for rows in [5usize, 17, 65, 257] {
            // All-(+1) weights, (rows+1)/2 positive inputs → latent sum +1.
            let w = vec![bits(&[1]); rows];
            let xbar = Crossbar::new(cfg, w).unwrap();
            let mut input = vec![Bit::Zero; rows];
            for bit in input.iter_mut().take(rows.div_ceil(2)) {
                *bit = Bit::One;
            }
            assert_eq!(xbar.raw_sum(0, &input).unwrap(), 1, "rows {rows}");
            let p = xbar.column_probability(0, &input).unwrap();
            assert!(p > 0.5, "sum +1 keeps P above 1/2 (rows {rows})");
            assert!(p <= prev_p, "P should shrink with size (rows {rows})");
            prev_p = p;
        }
        assert!(
            prev_p < 0.999,
            "at 257 rows a ±1 sum must be visibly random, P = {prev_p}"
        );
    }

    #[test]
    fn threshold_shifts_decision() {
        let w = vec![bits(&[1]); 4];
        let mut xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let input = vec![Bit::One; 4]; // sum +4 → strongly '1'
        assert_eq!(xbar.compute_ideal(&input).unwrap(), vec![Bit::One]);
        // Threshold above the column current flips the ideal decision.
        let i = xbar.column_current_ua(0, &input).unwrap();
        xbar.set_thresholds_ua(vec![i + 10.0]).unwrap();
        assert_eq!(xbar.compute_ideal(&input).unwrap(), vec![Bit::Zero]);
    }

    #[test]
    fn observe_length_and_bias() {
        let w = vec![bits(&[1]); 4];
        let xbar = Crossbar::new(CrossbarConfig::default(), w).unwrap();
        let mut rng = DeviceRng::seed_from_u64(3);
        let input = vec![Bit::One; 4];
        let streams = xbar.observe(&input, 32, &mut rng).unwrap();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].len(), 32);
        // Sum +4 at 4 rows: current ≈ 122 µA, fully saturated ones.
        assert!(streams[0].iter().all(|&b| b == Bit::One));
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            Crossbar::new(CrossbarConfig::default(), vec![]).unwrap_err(),
            CrossbarError::EmptyWeights
        );
        let ragged = vec![bits(&[1, 1]), bits(&[1])];
        assert!(matches!(
            Crossbar::new(CrossbarConfig::default(), ragged).unwrap_err(),
            CrossbarError::RaggedWeights { row: 1, .. }
        ));
        let xbar = Crossbar::new(CrossbarConfig::default(), identity4()).unwrap();
        assert!(matches!(
            xbar.raw_sum(0, &[Bit::One]).unwrap_err(),
            CrossbarError::WrongInputLen {
                expected: 4,
                got: 1
            }
        ));
        let mut xbar = xbar;
        assert!(matches!(
            xbar.set_thresholds_ua(vec![0.0]).unwrap_err(),
            CrossbarError::WrongThresholdLen {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn reprogramming_changes_outputs() {
        let mut xbar = Crossbar::new(CrossbarConfig::default(), identity4()).unwrap();
        let input = vec![Bit::One; 4];
        let before = xbar.raw_sum(0, &input).unwrap();
        let all_ones = vec![vec![Bit::One; 4]; 4];
        xbar.program(&all_ones).unwrap();
        let after = xbar.raw_sum(0, &input).unwrap();
        assert_ne!(before, after);
        assert_eq!(after, 4);
    }
}
