//! The logic-in-memory (LiM) cell.
//!
//! One LiM cell stores a binary weight in an AQFP buffer held at high
//! excitation and multiplies it with the row activation via an in-cell XNOR
//! macro (paper Section 4.1). Its output is a current pulse of ±I_in whose
//! sign is the product of activation and weight.

use aqfp_device::{Bit, BufferMemory};
use serde::{Deserialize, Serialize};

/// A logic-in-memory cell: 1-bit weight storage + XNOR multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimCell {
    weight: BufferMemory,
}

impl LimCell {
    /// Creates a cell pre-storing `weight`.
    pub fn new(weight: Bit) -> Self {
        Self {
            weight: BufferMemory::new(weight),
        }
    }

    /// The stored weight.
    pub fn weight(&self) -> Bit {
        self.weight.read()
    }

    /// Reprograms the stored weight.
    pub fn program(&mut self, weight: Bit) {
        self.weight.write(weight);
    }

    /// Multiplies the row activation with the stored weight (XNOR) and
    /// returns the product bit.
    pub fn multiply(&self, activation: Bit) -> Bit {
        activation.xnor(self.weight.read())
    }

    /// The signed current this cell contributes to its column before
    /// attenuation, in µA: `±I_in` with the sign of the XNOR product.
    pub fn output_current_ua(&self, activation: Bit) -> f64 {
        self.multiply(activation).to_current_ua()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_is_sign_product() {
        for w in [Bit::Zero, Bit::One] {
            for a in [Bit::Zero, Bit::One] {
                let cell = LimCell::new(w);
                assert_eq!(
                    cell.multiply(a).to_value(),
                    a.to_value() * w.to_value(),
                    "a={a:?} w={w:?}"
                );
            }
        }
    }

    #[test]
    fn output_current_is_signed_70ua() {
        let cell = LimCell::new(Bit::One);
        assert_eq!(cell.output_current_ua(Bit::One), 70.0);
        assert_eq!(cell.output_current_ua(Bit::Zero), -70.0);
        let cell = LimCell::new(Bit::Zero);
        assert_eq!(cell.output_current_ua(Bit::One), -70.0);
        assert_eq!(cell.output_current_ua(Bit::Zero), 70.0);
    }

    #[test]
    fn reprogramming_changes_weight() {
        let mut cell = LimCell::new(Bit::One);
        assert_eq!(cell.weight(), Bit::One);
        cell.program(Bit::Zero);
        assert_eq!(cell.weight(), Bit::Zero);
        assert_eq!(cell.multiply(Bit::One), Bit::Zero);
    }
}
