//! Partitioning weight matrices onto multiple crossbars.
//!
//! A BNN layer's weight matrix is `fan_in × out_channels`; the crossbar's
//! limited scalability (Challenge #2) means `fan_in` rarely fits one array.
//! The layer is split along the fan-in dimension into row tiles (each a
//! crossbar holding a *partial* filter) and along the output dimension into
//! column tiles. Partial results from row tiles of the same column are
//! accumulated by the SC module (Challenge #3).

use serde::{Deserialize, Serialize};

/// One tile of a partitioned weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// First fan-in row covered by this tile.
    pub row_start: usize,
    /// Rows covered (≤ max crossbar rows).
    pub rows: usize,
    /// First output column covered.
    pub col_start: usize,
    /// Columns covered (≤ max crossbar cols).
    pub cols: usize,
}

/// A tiling plan: how a `fan_in × out` matrix maps onto crossbars of at
/// most `max_rows × max_cols`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingPlan {
    /// Total fan-in of the layer.
    pub fan_in: usize,
    /// Total output channels.
    pub out: usize,
    /// Maximum rows of one crossbar.
    pub max_rows: usize,
    /// Maximum columns of one crossbar.
    pub max_cols: usize,
    /// The tiles, row-tile-major: all row tiles of column group 0 first.
    pub tiles: Vec<Tile>,
}

impl TilingPlan {
    /// Computes the tiling of a `fan_in × out` matrix.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(fan_in: usize, out: usize, max_rows: usize, max_cols: usize) -> Self {
        assert!(fan_in > 0 && out > 0, "matrix must be non-empty");
        assert!(max_rows > 0 && max_cols > 0, "crossbar must be non-empty");
        let mut tiles = Vec::new();
        let mut col_start = 0;
        while col_start < out {
            let cols = max_cols.min(out - col_start);
            let mut row_start = 0;
            while row_start < fan_in {
                let rows = max_rows.min(fan_in - row_start);
                tiles.push(Tile {
                    row_start,
                    rows,
                    col_start,
                    cols,
                });
                row_start += rows;
            }
            col_start += cols;
        }
        Self {
            fan_in,
            out,
            max_rows,
            max_cols,
            tiles,
        }
    }

    /// Number of row tiles each output column's partial sums spread over —
    /// the number of stochastic numbers the SC accumulation module must add
    /// per output.
    pub fn row_tiles(&self) -> usize {
        self.fan_in.div_ceil(self.max_rows)
    }

    /// Number of column groups.
    pub fn col_tiles(&self) -> usize {
        self.out.div_ceil(self.max_cols)
    }

    /// Total crossbars used.
    pub fn crossbar_count(&self) -> usize {
        self.tiles.len()
    }

    /// Checks full disjoint coverage of the matrix (used by property tests).
    pub fn covers_exactly(&self) -> bool {
        let mut covered = vec![false; self.fan_in * self.out];
        for t in &self.tiles {
            for r in t.row_start..t.row_start + t.rows {
                for c in t.col_start..t.col_start + t.cols {
                    let idx = r * self.out + c;
                    if covered[idx] {
                        return false; // overlap
                    }
                    covered[idx] = true;
                }
            }
        }
        covered.into_iter().all(|b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_single_tile() {
        let plan = TilingPlan::new(16, 16, 16, 16);
        assert_eq!(plan.crossbar_count(), 1);
        assert_eq!(plan.row_tiles(), 1);
        assert!(plan.covers_exactly());
    }

    #[test]
    fn splits_rows_and_cols() {
        let plan = TilingPlan::new(100, 40, 16, 16);
        assert_eq!(plan.row_tiles(), 7); // ⌈100/16⌉
        assert_eq!(plan.col_tiles(), 3); // ⌈40/16⌉
        assert_eq!(plan.crossbar_count(), 21);
        assert!(plan.covers_exactly());
    }

    #[test]
    fn ragged_edges_are_smaller_tiles() {
        let plan = TilingPlan::new(20, 20, 16, 16);
        assert_eq!(plan.crossbar_count(), 4);
        let sizes: Vec<(usize, usize)> = plan.tiles.iter().map(|t| (t.rows, t.cols)).collect();
        assert!(sizes.contains(&(16, 16)));
        assert!(sizes.contains(&(4, 4)));
        assert!(plan.covers_exactly());
    }

    #[test]
    fn tiny_matrix_single_small_tile() {
        let plan = TilingPlan::new(3, 2, 16, 16);
        assert_eq!(plan.crossbar_count(), 1);
        assert_eq!(plan.tiles[0].rows, 3);
        assert_eq!(plan.tiles[0].cols, 2);
        assert!(plan.covers_exactly());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_matrix() {
        TilingPlan::new(0, 4, 16, 16);
    }
}
