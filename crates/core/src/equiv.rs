//! Bounded equivalence checking across the four inference engines.
//!
//! The workspace carries one semantic invariant above all others: the
//! **scalar digital**, **packed digital**, **wide-word SIMD** and
//! **stochastic-limit** engines (see [`Engine`]) compute the same
//! function, bit for bit. Until now that invariant lived as test-suite
//! habit — `assert_eq!` calls scattered across the differential proptests.
//! This module makes it a first-class, *bounded* equivalence checker in
//! the spirit of logic-synthesis `check-equivalence` tools:
//!
//! * [`DieChecker`] proves any two engines agree on a single tiled matrix
//!   (one deployment "die" stack) — **exhaustively** over every input bit
//!   pattern for small fan-ins ([`DieChecker::prove_exhaustive`]), by
//!   directed random sampling at scale ([`DieChecker::check_random`]),
//!   and under **every structural fault class** the ATPG subsystem
//!   enumerates ([`DieChecker::check_fault_universe`], which puts the
//!   same named defect on both engines before comparing).
//! * [`ModelChecker`] lifts the comparison to a whole deployed model,
//!   walking the pipeline cell by cell so a divergence is localized
//!   before it is reported.
//!
//! On disagreement every entry point returns a typed [`Counterexample`] —
//! the failing input plus `(layer, lane, tile)` coordinates — instead of
//! a bare assert, so a differential test failure reads like a bug report:
//! which engines, which pipeline stage, which output channel, and (when
//! the per-tile votes themselves disagree) which physical die.
//!
//! The stochastic engine is checked in its **digital limit**: tables
//! built at gray-zone width 0 ([`VariationModel`] scale 0) make every
//! Bernoulli window saturate, the sampler consumes no RNG draws, and the
//! datapath must collapse to the digital decision rule exactly.
//!
//! A fifth axis, [`Engine::PackedDelta`], covers the event-driven
//! fault-cone engine ([`crate::deploy::delta`]): fault-free it collapses
//! to the packed digital forward by definition, and
//! [`DieChecker::check_fault_universe`] proves per fault class that
//! re-voting only the dirtied channels reproduces the faulted full
//! forward bit-for-bit. It stays out of the canonical four-engine
//! lattice ([`Engine::ALL`]).

use crate::deploy::{
    argmax, BitMap, DeployedCell, DeployedModel, MatrixStochasticTables, PackedLayer, PackedModel,
    PackedTiledMatrix, TiledMatrix,
};
use aqfp_crossbar::faults::{enumerate_fault_universe, PatchJournal, StructuralFault};
use aqfp_device::{Bit, VariationModel};
use aqfp_sc::bitplane::packed_im2col;
use aqfp_sc::{random_probe_plane, BitPlane, PackedMatrix, V256};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Fan-in bound of [`DieChecker::prove_exhaustive`]: `2^20` evaluations
/// is the largest budget the exhaustive mode accepts.
pub const MAX_EXHAUSTIVE_FAN_IN: usize = 20;

/// One of the inference engines under equivalence checking: the four
/// canonical datapaths of [`Engine::ALL`], plus the fault-cone delta
/// axis ([`Engine::PackedDelta`]) that only differentiates itself when a
/// structural fault is in play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The per-element scalar reference (`TiledMatrix::forward_digital`).
    ScalarDigital,
    /// The bit-packed XNOR–popcount per-plane kernel
    /// (`PackedTiledMatrix::forward_plane`, `u64` words).
    PackedDigital,
    /// The lane-generic blocked GEMM kernel at [`V256`] width
    /// (`PackedTiledMatrix::forward_matrix_as`).
    PackedSimd,
    /// The packed stochastic datapath evaluated in its digital limit
    /// (gray-zone width 0: saturated flip tables, no RNG draws).
    StochasticLimit,
    /// The event-driven fault-cone splice (see [`crate::deploy::delta`]):
    /// a clean forward plus a per-channel re-vote of the fault's dirtied
    /// columns. On a fault-free die the cone is empty and this collapses
    /// to [`Engine::PackedDigital`] exactly; it earns its keep inside
    /// [`DieChecker::check_fault_universe`], where the splice is diffed
    /// against the faulted full forward per fault class. Not part of
    /// [`Engine::ALL`] — the exhaustive lattice stays the four canonical
    /// datapaths.
    PackedDelta,
}

impl Engine {
    /// The four canonical engines, in canonical order.
    pub const ALL: [Engine; 4] = [
        Engine::ScalarDigital,
        Engine::PackedDigital,
        Engine::PackedSimd,
        Engine::StochasticLimit,
    ];

    /// The six unordered engine pairs — the full equivalence lattice.
    pub fn pairs() -> Vec<(Engine, Engine)> {
        let mut pairs = Vec::with_capacity(6);
        for (i, &a) in Self::ALL.iter().enumerate() {
            for &b in &Self::ALL[i + 1..] {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::ScalarDigital => "scalar-digital",
            Engine::PackedDigital => "packed-digital",
            Engine::PackedSimd => "wide-simd",
            Engine::StochasticLimit => "stochastic-limit",
            Engine::PackedDelta => "packed-delta",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed divergence witness: the input on which two engines disagreed,
/// localized to a pipeline stage, an output lane, and — when the
/// per-tile votes of the scalar and packed states themselves disagree —
/// a physical die (row tile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The engine pair that diverged.
    pub engines: (Engine, Engine),
    /// The failing input plane (die input for [`DieChecker`], model
    /// input for [`ModelChecker`]).
    pub input: BitPlane,
    /// Pipeline stage index of the diverging activation (always 0 for
    /// die-level checks).
    pub layer: usize,
    /// Output channel (lane) whose bit diverged.
    pub lane: usize,
    /// The row tile whose vote diverged, when the divergence localizes
    /// to one physical die; `None` when the per-tile votes agree and the
    /// divergence is in vote accumulation or a kernel.
    pub tile: Option<usize>,
    /// The first engine's output bit at `lane`.
    pub left: bool,
    /// The second engine's output bit at `lane`.
    pub right: bool,
    /// The structural fault class under which the divergence was found,
    /// for fault-universe checks.
    pub fault: Option<StructuralFault>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ≢ {}: lane {} diverged at layer {} ({} = {}, {} = {})",
            self.engines.0,
            self.engines.1,
            self.lane,
            self.layer,
            self.engines.0,
            self.left as u8,
            self.engines.1,
            self.right as u8,
        )?;
        match self.tile {
            Some(t) => write!(f, ", die vote mismatch at row tile {t}")?,
            None => write!(f, ", per-tile votes agree (accumulation/kernel)")?,
        }
        if let Some(fault) = &self.fault {
            write!(f, ", under injected fault {fault:?}")?;
        }
        write!(f, "; input[{}] = 0x", self.input.len())?;
        for w in self.input.words().iter().rev() {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

/// A completed bounded-equivalence run: which engines, how many cases,
/// in which mode. Returned by every checking entry point on success so
/// callers (and CI logs) can assert the intended coverage actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivProof {
    /// The engine pair proven equivalent over the run.
    pub engines: (Engine, Engine),
    /// Total `(input, engine-pair)` comparisons performed.
    pub cases: usize,
    /// `"exhaustive"`, `"random"` or `"fault-universe"`.
    pub mode: &'static str,
}

/// The digital-limit variation point: gray-zone width scaled to 0, no
/// attenuation or temperature drift.
fn zero_variation() -> VariationModel {
    VariationModel::new(0.0, 0.0, 0.0).expect("zero variation is valid")
}

/// Extracts column `col` of a `[rows × n]` packed output matrix as a
/// plane of `rows` bits — the de-batching step of single-input GEMM
/// evaluation.
fn matrix_column(m: &PackedMatrix, col: usize) -> BitPlane {
    let mut out = BitPlane::zeros(m.rows());
    for r in 0..m.rows() {
        if m.get(r, col) {
            out.set(r, true);
        }
    }
    out
}

/// Compares the per-row-tile votes the scalar and packed states produce
/// for `channel` on `input`; returns the first diverging tile. Both
/// sides read their own fault state (crossbar weights + dead map vs
/// packed planes + overrides), so a `Some(tile)` pinpoints the die whose
/// *state* disagrees between the engines; `None` means the states vote
/// identically and a divergence lies in accumulation or a kernel.
fn tile_divergence(
    scalar: &TiledMatrix,
    packed: &PackedTiledMatrix,
    channel: usize,
    input: &BitPlane,
) -> Option<usize> {
    let bits = input.to_bits();
    let plan = scalar.plan();
    let k = plan.row_tiles();
    // Plan tiles are column-group-major: find the group holding `channel`.
    let mut base = 0;
    loop {
        let t = &plan.tiles[base];
        if channel >= t.col_start && channel < t.col_start + t.cols {
            break;
        }
        base += k;
    }
    let c = channel - plan.tiles[base].col_start;
    let mut matches = vec![0u32; packed.out() * k];
    packed.matches_into(input.words(), &mut matches);
    for r in 0..k {
        let idx = base + r;
        let scalar_vote = if let Some(&b) = scalar.dead_outputs().get(&(idx, c)) {
            b.as_bool()
        } else {
            let t = &plan.tiles[idx];
            let slice = &bits[t.row_start..t.row_start + t.rows];
            let sum = scalar.tile_crossbars()[idx]
                .raw_sum(c, slice)
                .expect("tile geometry is consistent");
            sum as i64 >= scalar.digital_min_sums()[idx][c]
        };
        let packed_vote = match packed.dead_override(channel, r) {
            Some(b) => b.as_bool(),
            None => {
                let m = matches[channel * k + r] as i64;
                2 * m - packed.tile_rows(r) as i64 >= packed.min_sum(channel, r)
            }
        };
        if scalar_vote != packed_vote {
            return Some(r);
        }
    }
    None
}

/// A bounded equivalence checker over one tiled weight matrix — the
/// die-level harness. Owns a scalar [`TiledMatrix`] and its packed
/// lowering (plus digital-limit stochastic tables), evaluates any
/// [`Engine`] on any input, and localizes divergences.
#[derive(Debug, Clone)]
pub struct DieChecker {
    scalar: TiledMatrix,
    packed: PackedTiledMatrix,
    tables: MatrixStochasticTables,
}

impl DieChecker {
    /// Builds the harness from a scalar deployment: the packed lowering
    /// and the digital-limit stochastic tables are derived here, so all
    /// four engines evaluate the *same* die stack.
    pub fn new(scalar: &TiledMatrix) -> Self {
        let packed = PackedTiledMatrix::from_tiled(scalar);
        let tables = packed.stochastic_tables(&zero_variation());
        Self {
            scalar: scalar.clone(),
            packed,
            tables,
        }
    }

    /// The die's fan-in.
    pub fn fan_in(&self) -> usize {
        self.packed.fan_in()
    }

    /// The packed lowering under check.
    pub fn packed(&self) -> &PackedTiledMatrix {
        &self.packed
    }

    /// Evaluates one engine on one input plane against an explicit die
    /// state — the shared kernel of [`Self::check`] and the journal-path
    /// fault-universe walk (which patches one reusable packed clone
    /// instead of building a checker per fault).
    fn eval_parts(
        scalar: &TiledMatrix,
        packed: &PackedTiledMatrix,
        tables: &MatrixStochasticTables,
        engine: Engine,
        input: &BitPlane,
    ) -> BitPlane {
        match engine {
            Engine::ScalarDigital => {
                let bits = input.to_bits();
                BitPlane::from_bits(&scalar.forward_digital(&bits))
            }
            // On a die evaluated in isolation the delta engine has an
            // empty fault cone, which collapses to the full packed
            // forward by definition; its faulted splice is exercised by
            // `check_fault_universe`.
            Engine::PackedDigital | Engine::PackedDelta => packed.forward_plane(input),
            Engine::PackedSimd => {
                let batch = PackedMatrix::from_planes(std::slice::from_ref(input));
                matrix_column(&packed.forward_matrix_as::<V256>(&batch), 0)
            }
            Engine::StochasticLimit => {
                // The zero-width tables saturate every window: no draws
                // are consumed, so the fixed seed is inert.
                let mut rng = StdRng::seed_from_u64(0);
                packed.forward_stochastic(tables, input, &mut rng)
            }
        }
    }

    /// [`Self::check`] against an explicit die state.
    fn check_parts(
        scalar: &TiledMatrix,
        packed: &PackedTiledMatrix,
        tables: &MatrixStochasticTables,
        engines: (Engine, Engine),
        input: &BitPlane,
    ) -> Result<(), Counterexample> {
        let a = Self::eval_parts(scalar, packed, tables, engines.0, input);
        let b = Self::eval_parts(scalar, packed, tables, engines.1, input);
        if a == b {
            return Ok(());
        }
        let lane = (0..a.len())
            .find(|&i| a.get(i) != b.get(i))
            .expect("unequal planes differ somewhere");
        Err(Counterexample {
            engines,
            input: input.clone(),
            layer: 0,
            lane,
            tile: tile_divergence(scalar, packed, lane, input),
            left: a.get(lane),
            right: b.get(lane),
            fault: None,
        })
    }

    /// Checks one input: both engines must produce identical output
    /// planes.
    ///
    /// # Errors
    /// The localized [`Counterexample`] on divergence.
    pub fn check(&self, engines: (Engine, Engine), input: &BitPlane) -> Result<(), Counterexample> {
        Self::check_parts(&self.scalar, &self.packed, &self.tables, engines, input)
    }

    /// Proves the pair equivalent over **every** input bit pattern —
    /// `2^fan_in` evaluations.
    ///
    /// # Errors
    /// The first [`Counterexample`] found.
    ///
    /// # Panics
    /// Panics if `fan_in > `[`MAX_EXHAUSTIVE_FAN_IN`].
    pub fn prove_exhaustive(
        &self,
        engines: (Engine, Engine),
    ) -> Result<EquivProof, Counterexample> {
        let n = self.fan_in();
        assert!(
            n <= MAX_EXHAUSTIVE_FAN_IN,
            "exhaustive proof over 2^{n} inputs exceeds the 2^{MAX_EXHAUSTIVE_FAN_IN} budget"
        );
        for pat in 0..(1u64 << n) {
            self.check(engines, &BitPlane::from_words(vec![pat], n))?;
        }
        Ok(EquivProof {
            engines,
            cases: 1 << n,
            mode: "exhaustive",
        })
    }

    /// Proves **all six** engine pairs equivalent exhaustively — the full
    /// lattice on one die.
    ///
    /// # Errors
    /// The first [`Counterexample`] found.
    pub fn prove_exhaustive_lattice(&self) -> Result<Vec<EquivProof>, Counterexample> {
        Engine::pairs()
            .into_iter()
            .map(|pair| self.prove_exhaustive(pair))
            .collect()
    }

    /// Checks the pair on `cases` seeded random inputs with densities
    /// swept across `(0, 1)` — the at-scale mode for fan-ins past the
    /// exhaustive budget.
    ///
    /// # Errors
    /// The first [`Counterexample`] found.
    pub fn check_random(
        &self,
        engines: (Engine, Engine),
        cases: usize,
        seed: u64,
    ) -> Result<EquivProof, Counterexample> {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cases {
            let p = rng.gen::<f64>();
            let input = random_probe_plane(self.fan_in(), p, &mut rng);
            self.check(engines, &input)?;
        }
        Ok(EquivProof {
            engines,
            cases,
            mode: "random",
        })
    }

    /// Checks the pair under **every** structural fault class of this
    /// die stack: for each enumerated defect, both engines receive the
    /// identical named fault (scalar: crossbar weights + dead map;
    /// packed: bitplane masks + vote pins + SWAR bias folds) and are
    /// compared on `cases_per_fault` seeded random inputs. The packed
    /// side rides the clone-free journal path — one reusable die is
    /// patched and reverted per fault — and each input additionally
    /// proves the fault-cone splice ([`Engine::PackedDelta`]): re-voting
    /// only the fault's dirtied channels on top of the clean forward
    /// must reproduce the faulted full forward bit-for-bit. Returned
    /// counterexamples carry the fault class that exposed them.
    ///
    /// # Errors
    /// The first [`Counterexample`] found.
    pub fn check_fault_universe(
        &self,
        engines: (Engine, Engine),
        cases_per_fault: usize,
        seed: u64,
    ) -> Result<EquivProof, Counterexample> {
        let dims = self.packed.tile_dims();
        let universe = enumerate_fault_universe(&dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cases = 0usize;
        // One reusable faulted die on the packed side; the scalar side
        // has no journal and is cloned per fault.
        let mut packed = self.packed.clone();
        let mut journal = PatchJournal::new();
        for fault in &universe {
            let draws = fault.to_draws(dims.len());
            let dirty = self.packed.fault_channels(&draws);
            let mut scalar = self.scalar.clone();
            scalar.apply_faults(&draws);
            // The flip tables are programmed-threshold state, invariant
            // under fault injection — the clean tables serve the
            // faulted die.
            packed.apply_faults_journaled(&draws, 0, &mut journal);
            for _ in 0..cases_per_fault {
                let p = rng.gen::<f64>();
                let input = random_probe_plane(self.fan_in(), p, &mut rng);
                Self::check_parts(&scalar, &packed, &self.tables, engines, &input).map_err(
                    |mut ce| {
                        ce.fault = Some(*fault);
                        ce
                    },
                )?;
                cases += 1;
                // Fifth axis: the delta splice vs the faulted forward.
                let full = packed.forward_plane(&input);
                let mut spliced = self.packed.forward_plane(&input);
                for &ch in &dirty {
                    let bit = packed.forward_channel(ch, input.words());
                    if bit != spliced.get(ch) {
                        spliced.set(ch, bit);
                    }
                }
                if spliced != full {
                    let lane = (0..full.len())
                        .find(|&i| spliced.get(i) != full.get(i))
                        .expect("unequal planes differ somewhere");
                    let tile = tile_divergence(&scalar, &packed, lane, &input);
                    return Err(Counterexample {
                        engines: (Engine::PackedDigital, Engine::PackedDelta),
                        input,
                        layer: 0,
                        lane,
                        tile,
                        left: full.get(lane),
                        right: spliced.get(lane),
                        fault: Some(*fault),
                    });
                }
                cases += 1;
            }
            packed.revert_faults(&mut journal);
            debug_assert!(packed == self.packed, "revert must restore the die");
        }
        Ok(EquivProof {
            engines,
            cases,
            mode: "fault-universe",
        })
    }
}

/// A bounded equivalence checker over a whole deployed model. Walks the
/// pipeline **cell by cell** on both engines, so the first diverging
/// activation plane — not just the final label — is what gets reported,
/// localized to `(layer, lane)` and, for dense cells, to the diverging
/// row tile.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    scalar: DeployedModel,
    packed: PackedModel,
    /// Exclusive pipeline-stage index after each deployed cell — the
    /// cell → stage-range map of the lowering.
    cell_stage_end: Vec<usize>,
}

impl ModelChecker {
    /// Builds the harness: lowers the model and reconstructs the
    /// cell → pipeline-stage map from the stage sequence.
    pub fn new(model: &DeployedModel) -> Self {
        let packed = model.to_packed();
        let mut ends = Vec::with_capacity(model.cells().len());
        let mut stage = 0usize;
        for cell in model.cells() {
            match cell {
                DeployedCell::Conv(c) => {
                    debug_assert!(matches!(packed.layers()[stage], PackedLayer::Conv(_)));
                    stage += 1;
                    if c.geometry().4 {
                        debug_assert!(matches!(packed.layers()[stage], PackedLayer::Pool(_)));
                        stage += 1;
                    }
                }
                DeployedCell::Dense(_) => {
                    if matches!(packed.layers()[stage], PackedLayer::Flatten) {
                        stage += 1;
                    }
                    debug_assert!(matches!(packed.layers()[stage], PackedLayer::Linear(_)));
                    stage += 1;
                }
            }
            ends.push(stage);
        }
        debug_assert_eq!(stage, packed.layers().len());
        Self {
            scalar: model.clone(),
            packed,
            cell_stage_end: ends,
        }
    }

    /// The packed lowering under check.
    pub fn packed(&self) -> &PackedModel {
        &self.packed
    }

    /// Runs one cell's pipeline stages on one engine.
    fn cell_forward(
        &self,
        engine: Engine,
        cell_idx: usize,
        act: BitPlane,
        shape: [usize; 3],
    ) -> (BitPlane, [usize; 3]) {
        let start = if cell_idx == 0 {
            0
        } else {
            self.cell_stage_end[cell_idx - 1]
        };
        let end = self.cell_stage_end[cell_idx];
        match engine {
            Engine::ScalarDigital => {
                let [c, h, w] = shape;
                let map = BitMap::from_bits(c, h, w, act.to_bits());
                let out = match &self.scalar.cells()[cell_idx] {
                    DeployedCell::Conv(cell) => cell.forward_digital(&map),
                    DeployedCell::Dense(cell) => cell.forward_digital(&map),
                };
                let out_shape = [out.c, out.h, out.w];
                (out.to_plane(), out_shape)
            }
            // At the model level the delta engine degenerates the same
            // way as at the die level: with no fault in play its cone is
            // empty, so it walks the packed pipeline verbatim.
            Engine::PackedDigital | Engine::PackedDelta => {
                let mut act = act;
                let mut shape = shape;
                for layer in &self.packed.layers()[start..end] {
                    let (next, ns) = layer.forward(act, shape);
                    act = next;
                    shape = ns;
                }
                (act, shape)
            }
            Engine::PackedSimd => {
                let mut act = act;
                let mut shape = shape;
                for layer in &self.packed.layers()[start..end] {
                    match layer {
                        // The SIMD axis differentiates on the batched
                        // GEMM path: linear stages run the blocked V256
                        // kernel on a one-row activation matrix (conv
                        // stages already run it inside `forward`).
                        PackedLayer::Linear(l) => {
                            let batch = PackedMatrix::from_planes(std::slice::from_ref(&act));
                            let out = l.matrix().forward_matrix_as::<V256>(&batch);
                            shape = [out.rows(), 1, 1];
                            act = matrix_column(&out, 0);
                        }
                        _ => {
                            let (next, ns) = layer.forward(act, shape);
                            act = next;
                            shape = ns;
                        }
                    }
                }
                (act, shape)
            }
            Engine::StochasticLimit => {
                let zero = zero_variation();
                let mut rng = StdRng::seed_from_u64(0);
                let mut act = act;
                let mut shape = shape;
                for layer in &self.packed.layers()[start..end] {
                    match layer {
                        PackedLayer::Linear(l) => {
                            let tables = l.matrix().stochastic_tables(&zero);
                            act = l.matrix().forward_stochastic(&tables, &act, &mut rng);
                            shape = [l.matrix().out(), 1, 1];
                        }
                        PackedLayer::Conv(c) => {
                            // Public re-walk of the stochastic conv
                            // stage: im2col the plane, evaluate each
                            // output pixel's receptive field through the
                            // draw-free zero-width tables.
                            let tables = c.matrix().stochastic_tables(&zero);
                            let [ci, h, w] = shape;
                            let (_, k, stride, pad) = c.geometry();
                            let fields = packed_im2col(&act, ci, h, w, k, stride, pad, false);
                            let out_shape = c.out_shape(shape);
                            let [oc, oh, ow] = out_shape;
                            let mut out = BitPlane::zeros(oc * oh * ow);
                            for a in 0..fields.rows() {
                                let bits = c.matrix().forward_stochastic(
                                    &tables,
                                    &fields.row_plane(a),
                                    &mut rng,
                                );
                                for ch in 0..oc {
                                    if bits.get(ch) {
                                        out.set(ch * oh * ow + a, true);
                                    }
                                }
                            }
                            act = out;
                            shape = out_shape;
                        }
                        _ => {
                            let (next, ns) = layer.forward(act, shape);
                            act = next;
                            shape = ns;
                        }
                    }
                }
                (act, shape)
            }
        }
    }

    /// Classifies one input plane on one engine, walking the cell map.
    /// Bit-identical to the engine's own end-to-end entry point.
    pub fn classify(&self, engine: Engine, plane: &BitPlane) -> (usize, Vec<f32>) {
        let mut act = plane.clone();
        let mut shape = self.packed.input_shape();
        for cell_idx in 0..self.cell_stage_end.len() {
            let (next, ns) = self.cell_forward(engine, cell_idx, act, shape);
            act = next;
            shape = ns;
        }
        let scores = self.packed.classifier().scores_plane(&act);
        (argmax(&scores), scores)
    }

    /// Checks one input plane: walks both engines cell by cell and
    /// compares every intermediate activation. Equal activations at
    /// every cell boundary imply equal labels and scores (the classifier
    /// head is shared), so this subsumes the end-to-end comparison while
    /// localizing the divergence.
    ///
    /// # Errors
    /// The localized [`Counterexample`] on divergence.
    pub fn check_plane(
        &self,
        engines: (Engine, Engine),
        plane: &BitPlane,
    ) -> Result<(), Counterexample> {
        let mut a = plane.clone();
        let mut b = plane.clone();
        let mut shape = self.packed.input_shape();
        for cell_idx in 0..self.cell_stage_end.len() {
            let stage_in = a.clone();
            let (na, sa) = self.cell_forward(engines.0, cell_idx, a, shape);
            let (nb, sb) = self.cell_forward(engines.1, cell_idx, b, shape);
            debug_assert_eq!(sa, sb);
            if na != nb {
                let lane_bit = (0..na.len())
                    .find(|&i| na.get(i) != nb.get(i))
                    .expect("unequal planes differ somewhere");
                // [C, H, W] layout: the channel is the plane-major index.
                let lane = lane_bit / (sa[1] * sa[2]);
                let layer = self.cell_stage_end[cell_idx] - 1;
                let tile = match &self.scalar.cells()[cell_idx] {
                    DeployedCell::Dense(cell) => {
                        // The dense stage input is the (possibly
                        // flattened) cell input plane.
                        tile_divergence(
                            cell.matrix(),
                            self.dense_stage_matrix(cell_idx),
                            lane,
                            &stage_in,
                        )
                    }
                    // Conv divergences are per-pixel; the die-level
                    // localization does not apply.
                    DeployedCell::Conv(_) => None,
                };
                return Err(Counterexample {
                    engines,
                    input: plane.clone(),
                    layer,
                    lane,
                    tile,
                    left: na.get(lane_bit),
                    right: nb.get(lane_bit),
                    fault: None,
                });
            }
            a = na;
            b = nb;
            shape = sa;
        }
        Ok(())
    }

    /// The packed matrix of a dense cell's linear stage.
    fn dense_stage_matrix(&self, cell_idx: usize) -> &PackedTiledMatrix {
        let stage = self.cell_stage_end[cell_idx] - 1;
        match &self.packed.layers()[stage] {
            PackedLayer::Linear(l) => l.matrix(),
            _ => unreachable!("dense cells lower to a linear stage"),
        }
    }

    /// Checks the pair over a slice of input planes.
    ///
    /// # Errors
    /// The first [`Counterexample`] found.
    pub fn check_planes(
        &self,
        engines: (Engine, Engine),
        planes: &[BitPlane],
    ) -> Result<EquivProof, Counterexample> {
        for plane in planes {
            self.check_plane(engines, plane)?;
        }
        Ok(EquivProof {
            engines,
            cases: planes.len(),
            mode: "random",
        })
    }
}

/// Converts a `±1` bit vector to the `Bit` domain — test/report helper.
pub fn bits_of(plane: &BitPlane) -> Vec<Bit> {
    plane.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;

    fn die(fan_in: usize, out: usize, rows: usize, cols: usize, seed: u64) -> TiledMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let signs: Vec<f32> = (0..fan_in * out)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let vth: Vec<f64> = (0..out).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let flips: Vec<bool> = (0..out).map(|_| rng.gen()).collect();
        let hw = HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        };
        TiledMatrix::new(&signs, fan_in, out, vth, flips, &hw)
    }

    #[test]
    fn exhaustive_lattice_on_a_single_tile_die() {
        // ≤12-bit fan-in, single row tile: every input pattern, all six
        // engine pairs.
        let checker = DieChecker::new(&die(9, 5, 12, 8, 3));
        let proofs = checker.prove_exhaustive_lattice().unwrap_or_else(|ce| {
            panic!("equivalence broken: {ce}");
        });
        assert_eq!(proofs.len(), 6);
        for p in &proofs {
            assert_eq!(p.cases, 512);
            assert_eq!(p.mode, "exhaustive");
        }
    }

    #[test]
    fn random_mode_covers_multi_tile_geometry() {
        let checker = DieChecker::new(&die(70, 9, 16, 4, 5));
        for pair in Engine::pairs() {
            let proof = checker
                .check_random(pair, 24, 99)
                .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
            assert_eq!(proof.cases, 24);
        }
    }

    #[test]
    fn fault_universe_check_holds_on_a_small_die() {
        let checker = DieChecker::new(&die(10, 3, 6, 4, 11));
        let proof = checker
            .check_fault_universe((Engine::ScalarDigital, Engine::PackedDigital), 4, 7)
            .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
        assert_eq!(proof.mode, "fault-universe");
        assert!(proof.cases > 0);
    }

    #[test]
    fn delta_axis_stays_out_of_the_canonical_lattice() {
        assert_eq!(Engine::ALL.len(), 4);
        assert_eq!(Engine::pairs().len(), 6);
        assert!(!Engine::ALL.contains(&Engine::PackedDelta));
        assert_eq!(Engine::PackedDelta.name(), "packed-delta");
        // Fault-free, the delta engine is the packed digital forward.
        let checker = DieChecker::new(&die(70, 9, 16, 4, 23));
        let proof = checker
            .check_random((Engine::PackedDigital, Engine::PackedDelta), 16, 41)
            .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
        assert_eq!(proof.cases, 16);
    }

    #[test]
    fn fault_universe_counts_the_delta_splice_cases() {
        // Every input now runs the engine-pair comparison *and* the
        // delta-splice proof: twice the cases of the pair alone.
        let checker = DieChecker::new(&die(10, 3, 6, 4, 11));
        let universe = enumerate_fault_universe(&checker.packed.tile_dims()).len();
        let proof = checker
            .check_fault_universe((Engine::ScalarDigital, Engine::PackedDigital), 4, 7)
            .unwrap_or_else(|ce| panic!("equivalence broken: {ce}"));
        assert_eq!(proof.cases, 2 * 4 * universe);
    }

    #[test]
    fn counterexample_reports_the_diverging_tile() {
        // Manufacture a divergence: pin a dead column on the packed side
        // only, then check scalar vs packed. The counterexample must
        // carry the failing lane and localize the vote mismatch to the
        // tampered tile.
        let scalar = die(10, 4, 6, 4, 17);
        let mut checker = DieChecker::new(&scalar);
        let dims = checker.packed.tile_dims();
        let fault = StructuralFault {
            die: 0,
            kind: aqfp_crossbar::faults::FaultKind::DeadColumn {
                col: 1,
                value: Bit::One,
            },
        };
        checker.packed.apply_faults(&fault.to_draws(dims.len()));
        let pair = (Engine::ScalarDigital, Engine::PackedDigital);
        let mut found = None;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let input = random_probe_plane(10, rng.gen(), &mut rng);
            if let Err(ce) = checker.check(pair, &input) {
                found = Some(ce);
                break;
            }
        }
        let ce = found.expect("a pinned '1' column must diverge on some input");
        assert_eq!(ce.lane, 1, "the tampered channel");
        assert_eq!(ce.tile, Some(0), "die 0 is row tile 0 of column group 0");
        assert_ne!(ce.left, ce.right);
        // Display renders without panicking and names both engines.
        let msg = format!("{ce}");
        assert!(msg.contains("scalar-digital") && msg.contains("packed-digital"));
    }
}
