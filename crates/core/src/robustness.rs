//! Monte Carlo fault-robustness sweeps on the packed deploy engine.
//!
//! The paper's central claim is that stochastic-computing BNN inference on
//! AQFP crossbars degrades gracefully under device-level imperfections —
//! the "immature manufacturing technology" of Section 1. Measuring that
//! claim properly needs *distributions*, not single draws: at a given
//! defect rate, two fabricated dies differ wildly in where their stuck
//! cells land, so a robustness figure is a quantile band over many
//! independent fault draws.
//!
//! This module runs such campaigns at hardware speed. The model is trained,
//! deployed, and lowered to a [`PackedModel`] **once**, each worker clones
//! it **once**; every trial then
//!
//! 1. injects a fresh fault draw directly into the worker's model through
//!    an undo journal ([`PackedModel::inject_faults_journaled`]: stuck
//!    cells as word masks on the weight planes, dead columns folded into
//!    the SWAR lane biases — every touched word recorded with its prior
//!    value),
//! 2. evaluates accuracy over a packed eval set shared by every trial of
//!    the campaign (the planes are packed once up front, not once per
//!    trial) — digital campaigns score through the event-driven
//!    fault-cone engine ([`crate::deploy::delta`]): the clean activation
//!    trace of the shared eval set is cached **once** for the whole
//!    campaign, each trial re-votes only the channels its draw dirtied
//!    and propagates only what changed, falling back to the (bit-
//!    identical) full forward when a heavy draw dirties too much of the
//!    die for the cone to pay — and
//! 3. reverts the journal ([`PackedModel::revert_faults`]), restoring the
//!    model bit-for-bit for the next trial — no per-trial clone of the
//!    weight planes at all.
//!
//! Trials fan out across `std::thread::scope` workers. Every trial is
//! deterministic: trial `t` (globally indexed across the grid) draws its
//! faults from `seed = campaign_seed ^ t`, so any individual trial can be
//! reproduced in isolation and whole campaigns are reproducible across
//! machines and worker counts. Faulted packed inference is bit-identical
//! to faulted scalar inference (differentially tested in
//! `tests/props.rs`), so the distributions measured here are exactly what
//! the slow reference engine would report.
//!
//! # The variation axis
//!
//! Fabrication faults are not the only reliability axis: device
//! parameters *drift* (gray-zone width, attenuation, temperature — see
//! [`VariationModel`]). A campaign gains that axis through
//! [`SweepConfig::with_variation_grid`]: the grid becomes the cartesian
//! product *variation × fault rate*, and trials evaluate through the
//! **packed stochastic engine**
//! ([`PackedModel::accuracy_stochastic`]) — the only engine that can see
//! a finite gray-zone — with per-stage flip tables built once per
//! operating condition and shared by every trial at that condition. The
//! per-trial RNG first draws the fault pattern, then drives the SC noise
//! of the evaluation, so a trial captures both die-to-die defect and
//! cycle-to-cycle switching randomness from one seed. Packed stochastic
//! inference is seed-matched with the scalar `DeployedModel::classify`
//! reference (same draws, same flips), keeping the "what the slow engine
//! would report" guarantee on this axis too.
//!
//! # The RNG-mode axis
//!
//! Seed-matched evaluation is the oracle, not the fastest mode: its SC
//! noise is one serial draw chain per trial. [`SweepConfig::with_rng_mode`]
//! switches stochastic trials to [`RngMode::Counter`]
//! ([`PackedModel::accuracy_stochastic_planes_ctr`]): trial `t` still
//! draws its *fault pattern* from `campaign_seed ^ t` exactly as before
//! (fault draws are identical in both modes), but the SC noise comes from
//! keyed counter streams rooted at the same trial seed — statistically
//! equivalent distributions, bit-reproducible across worker counts and
//! evaluation orders by construction, and free of the serial-chain
//! throughput floor.

use crate::deploy::{ActivationCache, BitMap, DirtyChannels, PackedModel, RngMode};
use aqfp_crossbar::faults::{FaultModel, PatchJournal};
use aqfp_device::{DeviceRng, SeedableRng, VariationModel};
use aqfp_sc::BitPlane;
use bnn_datasets::Dataset;
use serde::{Deserialize, Serialize};

/// Configuration of one Monte Carlo robustness campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The fault-rate grid: one accuracy distribution is measured per
    /// entry (per variation, if a variation grid is set).
    pub grid: Vec<FaultModel>,
    /// The device-parameter variation grid. Empty (the default) keeps the
    /// campaign on the deterministic packed digital engine; non-empty
    /// switches evaluation to the packed stochastic engine and measures
    /// every `variation × fault rate` combination.
    pub variations: Vec<VariationModel>,
    /// Independent fault draws per grid point.
    pub trials: usize,
    /// Campaign seed; trial `t` (global index) draws from
    /// `campaign_seed ^ t`.
    pub campaign_seed: u64,
    /// Test samples evaluated per trial (`None` = the whole dataset).
    pub eval_samples: Option<usize>,
    /// Worker threads trials are fanned across.
    pub workers: usize,
    /// How stochastic trials draw their SC noise: the seed-matched serial
    /// oracle (default) or order-free keyed counter streams. Digital
    /// (fault-only) campaigns draw no SC noise and ignore this.
    pub rng_mode: RngMode,
}

impl SweepConfig {
    /// A campaign over an explicit fault-model grid, evaluating the whole
    /// dataset with one worker per available core.
    pub fn new(grid: Vec<FaultModel>, trials: usize, campaign_seed: u64) -> Self {
        Self {
            grid,
            variations: Vec::new(),
            trials,
            campaign_seed,
            eval_samples: None,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rng_mode: RngMode::SeedMatched,
        }
    }

    /// The standard stuck-cell sweep grid: each `rate` becomes a
    /// [`FaultModel`] with that stuck-cell rate and a dead-column rate of
    /// `rate / 10` (dead neurons are an order of magnitude rarer than dead
    /// cells — the same convention as the scalar
    /// [`fault_sweep`](crate::experiments::fault_sweep) experiment).
    ///
    /// # Errors
    /// [`CrossbarError::FaultRateOutOfRange`](aqfp_crossbar::CrossbarError::FaultRateOutOfRange)
    /// if any rate is not a probability.
    pub fn stuck_cell_grid(
        rates: &[f64],
        trials: usize,
        campaign_seed: u64,
    ) -> aqfp_crossbar::Result<Self> {
        let grid = rates
            .iter()
            .map(|&r| FaultModel::new(r, r / 10.0))
            .collect::<aqfp_crossbar::Result<Vec<_>>>()?;
        Ok(Self::new(grid, trials, campaign_seed))
    }

    /// Adds a device-parameter variation grid: the campaign measures every
    /// `variation × fault rate` combination through the packed
    /// **stochastic** engine (finite gray-zone, SC noise per trial). Pass
    /// an empty vector to return to the digital fault-only campaign.
    #[must_use]
    pub fn with_variation_grid(mut self, variations: Vec<VariationModel>) -> Self {
        self.variations = variations;
        self
    }

    /// Convenience for the gray-zone-width axis: one variation per scale
    /// factor (`scale × ΔIin`, other knobs nominal) — the
    /// `gray-zone width × fault rate` sweep of
    /// `examples/robustness_sweep.rs`.
    ///
    /// # Errors
    /// [`DeviceError::VariationOutOfRange`](aqfp_device::DeviceError::VariationOutOfRange)
    /// if any scale is negative or non-finite.
    pub fn with_grayzone_scales(self, scales: &[f64]) -> aqfp_device::Result<Self> {
        let variations = scales
            .iter()
            .map(|&s| VariationModel::grayzone_scale_only(s))
            .collect::<aqfp_device::Result<Vec<_>>>()?;
        Ok(self.with_variation_grid(variations))
    }

    /// Limits per-trial evaluation to the first `n` test samples.
    #[must_use]
    pub fn with_eval_samples(mut self, n: Option<usize>) -> Self {
        self.eval_samples = n;
        self
    }

    /// Selects the stochastic trials' RNG discipline (see [`RngMode`]).
    /// Fault draws are unaffected: trial `t` injects the identical defect
    /// pattern in both modes.
    #[must_use]
    pub fn with_rng_mode(mut self, mode: RngMode) -> Self {
        self.rng_mode = mode;
        self
    }

    /// Overrides the worker-thread count.
    ///
    /// # Errors
    /// [`DeployError::ZeroWorkers`](crate::deploy::DeployError::ZeroWorkers)
    /// if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> crate::Result<Self> {
        if workers == 0 {
            return Err(crate::deploy::DeployError::ZeroWorkers);
        }
        self.workers = workers;
        Ok(self)
    }
}

/// One fault draw evaluated to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Global trial index across the whole campaign.
    pub trial: usize,
    /// The RNG seed the faults were drawn from (`campaign_seed ^ trial`).
    pub seed: u64,
    /// Defects drawn across the whole pipeline.
    pub defects: usize,
    /// Top-1 accuracy of the faulted packed model.
    pub accuracy: f64,
}

/// The measured accuracy/defect distribution of one fault-rate grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPointReport {
    /// The fault model of this grid point.
    pub fault_model: FaultModel,
    /// The operating condition of this grid point (`None` for digital
    /// fault-only campaigns).
    pub variation: Option<VariationModel>,
    /// Every trial, in global-trial-index order.
    pub trials: Vec<TrialOutcome>,
    /// Mean accuracy over the trials.
    pub mean_accuracy: f64,
    /// Worst-case accuracy.
    pub min_accuracy: f64,
    /// Best-case accuracy.
    pub max_accuracy: f64,
    /// 10th-percentile accuracy (nearest-rank).
    pub p10_accuracy: f64,
    /// Median accuracy (nearest-rank).
    pub p50_accuracy: f64,
    /// 90th-percentile accuracy (nearest-rank).
    pub p90_accuracy: f64,
    /// Mean defect count per draw.
    pub mean_defects: f64,
}

impl GridPointReport {
    fn from_trials(
        fault_model: FaultModel,
        variation: Option<VariationModel>,
        trials: Vec<TrialOutcome>,
    ) -> Self {
        assert!(!trials.is_empty(), "grid point with zero trials");
        let n = trials.len() as f64;
        let mean_accuracy = trials.iter().map(|t| t.accuracy).sum::<f64>() / n;
        let mean_defects = trials.iter().map(|t| t.defects as f64).sum::<f64>() / n;
        let mut sorted: Vec<f64> = trials.iter().map(|t| t.accuracy).collect();
        sorted.sort_by(f64::total_cmp);
        Self {
            fault_model,
            variation,
            mean_accuracy,
            min_accuracy: sorted[0],
            max_accuracy: sorted[sorted.len() - 1],
            p10_accuracy: quantile(&sorted, 0.10),
            p50_accuracy: quantile(&sorted, 0.50),
            p90_accuracy: quantile(&sorted, 0.90),
            mean_defects,
            trials,
        }
    }
}

/// The aggregated result of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The campaign seed trials derived their draws from.
    pub campaign_seed: u64,
    /// Trials per grid point.
    pub trials_per_point: usize,
    /// Test samples evaluated per trial.
    pub eval_samples: usize,
    /// One distribution per fault-rate grid point, in grid order.
    pub points: Vec<GridPointReport>,
}

impl RobustnessReport {
    /// Total trials across all grid points.
    pub fn total_trials(&self) -> usize {
        self.points.iter().map(|p| p.trials.len()).sum()
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// A class-interleaved subset of up to `n` samples (all of them for
/// `None`): samples are taken round-robin across the classes, preserving
/// each class's internal order.
///
/// The synthetic dataset generators emit samples grouped by class and
/// [`Dataset::split`](bnn_datasets::Dataset::split) preserves that order,
/// so evaluating "the first `n` test samples" — what the per-trial
/// `eval_samples` limit does — would cover only the first few classes.
/// Campaign drivers interleave the evaluation set once up front so every
/// truncated evaluation stays class-balanced.
pub fn interleaved_eval_set(data: &Dataset, n: Option<usize>) -> Dataset {
    let n = n.map_or(data.len(), |n| n.min(data.len()));
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes];
    for (i, &label) in data.labels.iter().enumerate() {
        by_class[label].push(i);
    }
    let mut indices = Vec::with_capacity(n);
    let mut round = 0usize;
    while indices.len() < n {
        let before = indices.len();
        for class in &by_class {
            if let Some(&i) = class.get(round) {
                indices.push(i);
                if indices.len() == n {
                    break;
                }
            }
        }
        assert!(indices.len() > before, "ran out of samples");
        round += 1;
    }
    let (images, labels) = data.batch(&indices);
    Dataset {
        images,
        labels,
        num_classes: data.num_classes,
    }
}

/// Runs a Monte Carlo robustness campaign: `cfg.trials` independent fault
/// draws per grid point, patched into each worker's single model clone
/// through an undo journal (patch → evaluate → revert, no per-trial
/// clone), evaluated on (the first `cfg.eval_samples` of) `data` — packed
/// once and shared across every trial — fanned across `cfg.workers`
/// threads. Deterministic for a given configuration regardless of the
/// worker count.
///
/// With a variation grid ([`SweepConfig::with_variation_grid`]) the grid
/// points become every `variation × fault rate` pair (variation-major
/// order) and trials evaluate through the packed **stochastic** engine:
/// per-condition flip tables are built once up front and shared across
/// trials. In the default [`RngMode::SeedMatched`] each trial's RNG
/// drives first the fault draw, then the SC switching noise of the
/// evaluation — flip-for-flip what the scalar reference would report. In
/// [`RngMode::Counter`] the fault draw is unchanged but the SC noise
/// comes from keyed counter streams rooted at the trial seed.
///
/// # Panics
/// Panics if the grid or `data` is empty or `trials == 0`.
pub fn run_sweep(packed: &PackedModel, data: &Dataset, cfg: &SweepConfig) -> RobustnessReport {
    assert!(!cfg.grid.is_empty(), "empty fault-rate grid");
    assert!(cfg.trials > 0, "campaign with zero trials per point");
    assert!(cfg.workers > 0, "need at least one worker");
    let eval_samples = cfg.eval_samples.map_or(data.len(), |n| n.min(data.len()));
    assert!(eval_samples > 0, "campaign over zero samples");

    // One flip-table set per operating condition, shared by every trial
    // at that condition (faults never invalidate the tables).
    let tables: Vec<crate::deploy::StochasticTables> = cfg
        .variations
        .iter()
        .map(|vm| packed.stochastic_tables_mode(vm, cfg.rng_mode))
        .collect();
    // The eval set is packed once for the whole campaign; plane packing
    // consumes no RNG, so sharing it is invisible to seed-matched trials.
    let planes: Vec<BitPlane> = (0..eval_samples)
        .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
        .collect();
    let labels = &data.labels[..eval_samples];
    // Digital campaigns share one clean activation trace across all
    // workers and trials; stochastic trials redraw every activation under
    // SC noise, so a clean cache has nothing to offer them.
    let cache = cfg
        .variations
        .is_empty()
        .then(|| ActivationCache::new(packed, &planes));
    // Fault-cone cutoff: a draw dirtying more than this fraction of the
    // model's weighted output channels takes the full forward instead
    // (both paths are bit-identical; this only bounds the constant).
    let total_channels: usize = packed
        .layers()
        .iter()
        .filter_map(|l| l.matrix().map(|m| m.out()))
        .sum();
    let delta_cutoff = total_channels / 4;
    let conditions = cfg.variations.len().max(1);
    let points_per_cond = cfg.grid.len();
    let total = conditions * points_per_cond * cfg.trials;
    let mut outcomes: Vec<Option<TrialOutcome>> = vec![None; total];
    // Trials parallelize at the campaign level, so each trial evaluates
    // its batch single-threaded (no nested fan-out).
    let chunk = total.div_ceil(cfg.workers.min(total));
    std::thread::scope(|s| {
        for (ci, slots) in outcomes.chunks_mut(chunk).enumerate() {
            let tables = &tables;
            let planes = &planes;
            let cache = cache.as_ref();
            s.spawn(move || {
                // One clone per worker, reused by every trial: faults are
                // patched in through the journal and reverted bit-for-bit
                // after evaluation.
                let mut m = packed
                    .clone()
                    .with_workers(1)
                    .expect("one worker is always valid");
                let mut journal = PatchJournal::new();
                for (j, slot) in slots.iter_mut().enumerate() {
                    let trial = ci * chunk + j;
                    let point = trial / cfg.trials;
                    let seed = cfg.campaign_seed ^ trial as u64;
                    let mut rng = DeviceRng::seed_from_u64(seed);
                    // Drawing first, applying second is RNG-identical to
                    // `inject_faults_journaled` (which is this exact
                    // composition); the explicit draws feed the fault
                    // cone below.
                    let draws = m.draw_faults(&cfg.grid[point % points_per_cond], &mut rng);
                    let defects = m.apply_draws_journaled(&draws, &mut journal);
                    let accuracy = match tables.get(point / points_per_cond) {
                        Some(t) => match cfg.rng_mode {
                            RngMode::SeedMatched => {
                                m.accuracy_stochastic_planes(t, planes, labels, &mut rng)
                            }
                            RngMode::Counter => {
                                m.accuracy_stochastic_planes_ctr(t, planes, labels, seed)
                            }
                        },
                        None => {
                            let cache = cache.expect("digital campaigns build a cache");
                            let dirty = DirtyChannels::from_draws(&m, &draws);
                            if dirty.total() <= delta_cutoff {
                                m.delta_accuracy_planes(cache, &dirty, labels)
                            } else {
                                m.accuracy_planes(planes, labels)
                            }
                        }
                    };
                    m.revert_faults(&mut journal);
                    *slot = Some(TrialOutcome {
                        trial,
                        seed,
                        defects,
                        accuracy,
                    });
                }
            });
        }
    });

    let mut outcomes = outcomes.into_iter().map(|o| o.expect("every trial ran"));
    let mut points = Vec::with_capacity(conditions * points_per_cond);
    for v in 0..conditions {
        for &fm in &cfg.grid {
            points.push(GridPointReport::from_trials(
                fm,
                cfg.variations.get(v).copied(),
                outcomes.by_ref().take(cfg.trials).collect(),
            ));
        }
    }
    RobustnessReport {
        campaign_seed: cfg.campaign_seed,
        trials_per_point: cfg.trials,
        eval_samples,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::deploy;
    use crate::spec::NetSpec;
    use bnn_datasets::{digits::generate_digits, SynthConfig};

    fn tiny_campaign_model() -> (PackedModel, Dataset) {
        let hw = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&hw, 5);
        let deployed = deploy(&spec, &model, &hw).unwrap();
        let data = generate_digits(&SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        (deployed.to_packed(), data)
    }

    #[test]
    fn sweeps_are_deterministic_across_worker_counts() {
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.0, 0.1], 3, 42).unwrap();
        let a = run_sweep(&packed, &data, &cfg.clone().with_workers(1).unwrap());
        let b = run_sweep(&packed, &data, &cfg.with_workers(4).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn zero_workers_is_an_error_not_a_panic() {
        let cfg = SweepConfig::stuck_cell_grid(&[0.0], 1, 0).unwrap();
        assert!(matches!(
            cfg.with_workers(0),
            Err(crate::deploy::DeployError::ZeroWorkers)
        ));
    }

    #[test]
    fn pristine_grid_point_reproduces_the_clean_accuracy() {
        let (packed, data) = tiny_campaign_model();
        let clean = packed.accuracy(&data, None);
        let cfg = SweepConfig::stuck_cell_grid(&[0.0], 4, 7).unwrap();
        let report = run_sweep(&packed, &data, &cfg);
        assert_eq!(report.total_trials(), 4);
        for t in &report.points[0].trials {
            assert_eq!(t.defects, 0);
            assert_eq!(t.accuracy, clean);
        }
        assert_eq!(report.points[0].mean_accuracy, clean);
        assert_eq!(report.points[0].p50_accuracy, clean);
    }

    #[test]
    fn report_statistics_are_ordered_and_seeds_are_derived() {
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.05, 0.3], 5, 99)
            .unwrap()
            .with_eval_samples(Some(10));
        let report = run_sweep(&packed, &data, &cfg);
        assert_eq!(report.eval_samples, 10);
        assert_eq!(report.points.len(), 2);
        for (g, p) in report.points.iter().enumerate() {
            assert!(p.min_accuracy <= p.p10_accuracy);
            assert!(p.p10_accuracy <= p.p50_accuracy);
            assert!(p.p50_accuracy <= p.p90_accuracy);
            assert!(p.p90_accuracy <= p.max_accuracy);
            assert!(p.min_accuracy <= p.mean_accuracy && p.mean_accuracy <= p.max_accuracy);
            for (i, t) in p.trials.iter().enumerate() {
                let trial = g * cfg.trials + i;
                assert_eq!(t.trial, trial);
                assert_eq!(t.seed, 99 ^ trial as u64);
            }
        }
        // Heavier faults draw more defects on average.
        assert!(report.points[1].mean_defects > report.points[0].mean_defects);
    }

    #[test]
    fn interleaved_eval_set_is_class_balanced() {
        let data = generate_digits(&SynthConfig {
            samples_per_class: 4,
            ..Default::default()
        });
        // The generator groups by class; a 10-sample interleave must cover
        // all 10 classes exactly once.
        let eval = interleaved_eval_set(&data, Some(10));
        assert_eq!(eval.len(), 10);
        let mut seen = vec![0usize; 10];
        for &l in &eval.labels {
            seen[l] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        // Taking everything preserves the sample count.
        assert_eq!(interleaved_eval_set(&data, None).len(), data.len());
        assert_eq!(interleaved_eval_set(&data, Some(999)).len(), data.len());
    }

    #[test]
    fn variation_sweep_covers_the_cartesian_grid_deterministically() {
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.0, 0.1], 2, 13)
            .unwrap()
            .with_eval_samples(Some(8))
            .with_grayzone_scales(&[1.0, 3.0])
            .unwrap();
        let a = run_sweep(&packed, &data, &cfg.clone().with_workers(1).unwrap());
        let b = run_sweep(&packed, &data, &cfg.with_workers(4).unwrap());
        assert_eq!(a, b, "stochastic sweeps must not depend on worker count");
        // variation-major × fault-minor ordering, trials globally indexed.
        assert_eq!(a.points.len(), 4);
        assert_eq!(a.total_trials(), 8);
        for (i, p) in a.points.iter().enumerate() {
            let scale = if i < 2 { 1.0 } else { 3.0 };
            assert_eq!(p.variation.unwrap().grayzone_scale(), scale, "point {i}");
            assert_eq!(
                p.fault_model.stuck_cell_rate(),
                if i % 2 == 0 { 0.0 } else { 0.1 },
                "point {i}"
            );
            for (j, t) in p.trials.iter().enumerate() {
                assert_eq!(t.trial, i * 2 + j);
                assert_eq!(t.seed, 13 ^ t.trial as u64);
                assert!((0.0..=1.0).contains(&t.accuracy));
            }
        }
    }

    #[test]
    fn stochastic_trials_reproduce_the_direct_evaluation() {
        // A sweep trial = inject faults, then evaluate stochastically,
        // all from one seed; replaying that recipe by hand must give the
        // identical accuracy.
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.2], 2, 77)
            .unwrap()
            .with_eval_samples(Some(10))
            .with_grayzone_scales(&[2.0])
            .unwrap();
        let report = run_sweep(&packed, &data, &cfg);
        let tables = packed.stochastic_tables(&VariationModel::grayzone_scale_only(2.0).unwrap());
        for t in &report.points[0].trials {
            let mut m = packed.clone();
            let mut rng = DeviceRng::seed_from_u64(t.seed);
            let defects = m.inject_faults(&cfg.grid[0], &mut rng);
            assert_eq!(defects, t.defects);
            assert_eq!(
                m.accuracy_stochastic(&tables, &data, &mut rng, Some(10)),
                t.accuracy,
                "trial {}",
                t.trial
            );
        }
    }

    #[test]
    fn digital_trials_reproduce_the_direct_evaluation() {
        // Digital campaigns route through the event-driven fault-cone
        // engine (shared `ActivationCache` + per-trial dirty channels);
        // replaying each trial with the plain full-forward path must give
        // the identical defect count and accuracy.
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.15], 4, 31)
            .unwrap()
            .with_eval_samples(Some(12));
        let report = run_sweep(&packed, &data, &cfg);
        for t in &report.points[0].trials {
            let mut m = packed.clone();
            let mut rng = DeviceRng::seed_from_u64(t.seed);
            let defects = m.inject_faults(&cfg.grid[0], &mut rng);
            assert_eq!(defects, t.defects);
            assert_eq!(m.accuracy(&data, Some(12)), t.accuracy, "trial {}", t.trial);
        }
    }

    #[test]
    fn counter_sweeps_are_bit_identical_across_worker_counts() {
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.0, 0.1], 3, 29)
            .unwrap()
            .with_eval_samples(Some(10))
            .with_grayzone_scales(&[1.0, 2.0])
            .unwrap()
            .with_rng_mode(RngMode::Counter);
        let a = run_sweep(&packed, &data, &cfg.clone().with_workers(1).unwrap());
        let b = run_sweep(&packed, &data, &cfg.clone().with_workers(4).unwrap());
        let c = run_sweep(&packed, &data, &cfg.with_workers(3).unwrap());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn counter_trials_reproduce_the_direct_evaluation() {
        // A counter trial = inject faults from the trial seed, then
        // evaluate with counter streams rooted at the same seed; replaying
        // that recipe by hand on a fresh clone must give the identical
        // accuracy — the journal left nothing behind.
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.2], 3, 61)
            .unwrap()
            .with_eval_samples(Some(10))
            .with_grayzone_scales(&[2.0])
            .unwrap()
            .with_rng_mode(RngMode::Counter);
        let report = run_sweep(&packed, &data, &cfg);
        let eval = {
            // The sweep evaluates the first 10 samples of `data`.
            let tables = packed.stochastic_tables_mode(
                &VariationModel::grayzone_scale_only(2.0).unwrap(),
                RngMode::Counter,
            );
            move |m: &PackedModel, seed: u64| {
                m.accuracy_stochastic_ctr(&tables, &data, seed, Some(10))
            }
        };
        for t in &report.points[0].trials {
            let mut m = packed.clone();
            let mut rng = DeviceRng::seed_from_u64(t.seed);
            let defects = m.inject_faults(&cfg.grid[0], &mut rng);
            assert_eq!(defects, t.defects);
            assert_eq!(eval(&m, t.seed), t.accuracy, "trial {}", t.trial);
        }
    }

    #[test]
    fn counter_statistics_track_the_seed_matched_oracle() {
        // Same campaign, both RNG disciplines: the per-point mean
        // accuracies must agree within Monte Carlo tolerance (the modes
        // share fault patterns and Bernoulli laws, not flips).
        let (packed, data) = tiny_campaign_model();
        let base = SweepConfig::stuck_cell_grid(&[0.0, 0.05], 4, 17)
            .unwrap()
            .with_grayzone_scales(&[1.0])
            .unwrap();
        let sm = run_sweep(&packed, &data, &base);
        let ct = run_sweep(&packed, &data, &base.with_rng_mode(RngMode::Counter));
        for (a, b) in sm.points.iter().zip(&ct.points) {
            assert!(
                (a.mean_accuracy - b.mean_accuracy).abs() <= 0.15,
                "seed-matched mean {} vs counter mean {}",
                a.mean_accuracy,
                b.mean_accuracy
            );
            // Fault draws are identical in both modes.
            for (x, y) in a.trials.iter().zip(&b.trials) {
                assert_eq!(x.defects, y.defects, "trial {}", x.trial);
            }
        }
    }

    #[test]
    fn grayzone_scale_grid_validates_scales() {
        let cfg = SweepConfig::stuck_cell_grid(&[0.0], 1, 0).unwrap();
        assert!(matches!(
            cfg.clone().with_grayzone_scales(&[1.0, -2.0]),
            Err(aqfp_device::DeviceError::VariationOutOfRange { .. })
        ));
        let cfg = cfg.with_grayzone_scales(&[0.0, 1.0]).unwrap();
        assert_eq!(cfg.variations.len(), 2);
    }

    #[test]
    fn digital_points_carry_no_variation() {
        let (packed, data) = tiny_campaign_model();
        let cfg = SweepConfig::stuck_cell_grid(&[0.0], 1, 3).unwrap();
        let report = run_sweep(&packed, &data, &cfg);
        assert!(report.points.iter().all(|p| p.variation.is_none()));
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let sorted = [0.1, 0.2, 0.3, 0.4, 1.0];
        assert_eq!(quantile(&sorted, 0.0), 0.1);
        assert_eq!(quantile(&sorted, 0.5), 0.3);
        assert_eq!(quantile(&sorted, 1.0), 1.0);
        assert_eq!(quantile(&[0.7], 0.9), 0.7);
    }

    #[test]
    fn stuck_cell_grid_validates_rates() {
        assert!(SweepConfig::stuck_cell_grid(&[0.0, 1.5], 2, 0).is_err());
        let cfg = SweepConfig::stuck_cell_grid(&[0.2], 2, 0).unwrap();
        assert_eq!(cfg.grid[0].stuck_cell_rate(), 0.2);
        assert_eq!(cfg.grid[0].dead_column_rate(), 0.02);
    }
}
