//! Hardware-configuration co-optimization (paper Section 5.4.2).
//!
//! The paper optimizes the crossbar size `Cs` and gray-zone width `ΔIin`
//! by (1) constraining `Cs` to the range that meets the energy-efficiency
//! demand, then (2) minimizing the average mismatch error AME (Eq. 18)
//! inside that range. The bit-stream length is swept separately against
//! accuracy (Fig. 10); the full loop trains with the candidate config.

use crate::config::HardwareConfig;
use crate::energy;
use crate::spec::NetSpec;
use aqfp_sc::analysis::{average_mismatch_error, sc_decision_noise};
use serde::{Deserialize, Serialize};

/// One evaluated candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Crossbar size (square).
    pub crossbar: usize,
    /// Gray-zone width in µA.
    pub grayzone_ua: f64,
    /// Average mismatch error (Eq. 18).
    pub ame: f64,
    /// Stochastic-computing decision noise (Section 5.4's second term).
    pub sc_noise: f64,
    /// The combined computing-error objective `AME + SCN`.
    pub total_error: f64,
    /// Energy efficiency of the target network at this size, TOPS/W.
    pub tops_per_watt: f64,
}

/// The search space and constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate square crossbar sizes.
    pub crossbar_sizes: Vec<usize>,
    /// Candidate gray-zone widths in µA.
    pub grayzone_widths_ua: Vec<f64>,
    /// Minimum acceptable energy efficiency (TOPS/W, no cooling).
    pub min_tops_per_watt: f64,
    /// SC bit-stream length assumed when scoring the decision noise.
    pub bitstream_len: usize,
    /// Mean of the latent pre-activation distribution (per-cell units).
    pub act_mean: f64,
    /// Std of the latent pre-activation distribution (per-cell units).
    pub act_std: f64,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            crossbar_sizes: vec![4, 8, 16, 18, 36, 72],
            grayzone_widths_ua: vec![0.8, 1.6, 2.4, 3.2, 4.0],
            min_tops_per_watt: 0.0,
            bitstream_len: 16,
            act_mean: 0.0,
            act_std: 1.0,
        }
    }
}

/// Evaluates the whole grid for `spec`, returning all candidates (for the
/// Fig. 11-style surface) sorted by ascending AME.
pub fn evaluate_grid(spec: &NetSpec, base: &HardwareConfig, space: &SearchSpace) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &cs in &space.crossbar_sizes {
        let hw = HardwareConfig {
            crossbar_rows: cs,
            crossbar_cols: cs,
            ..*base
        };
        let eff = energy::estimate(spec, &hw).tops_per_watt;
        for &gz in &space.grayzone_widths_ua {
            let hw_gz = HardwareConfig {
                grayzone_ua: gz,
                ..hw
            };
            let law = hw_gz.value_law(0.0);
            let ame = average_mismatch_error(&law, cs, space.act_mean, space.act_std);
            let sc_noise =
                sc_decision_noise(&law, cs, space.act_mean, space.act_std, space.bitstream_len);
            out.push(Candidate {
                crossbar: cs,
                grayzone_ua: gz,
                ame,
                sc_noise,
                total_error: ame + sc_noise,
                tops_per_watt: eff,
            });
        }
    }
    out.sort_by(|a, b| a.total_error.total_cmp(&b.total_error));
    out
}

/// Runs the Section 5.4.2 co-optimization: among configurations meeting the
/// efficiency constraint, picks the minimizer of the combined computing
/// error (AME + SC decision noise). Returns `None` if no candidate
/// satisfies the constraint.
pub fn co_optimize(
    spec: &NetSpec,
    base: &HardwareConfig,
    space: &SearchSpace,
) -> Option<Candidate> {
    evaluate_grid(spec, base, space)
        .into_iter()
        .find(|c| c.tops_per_watt >= space.min_tops_per_watt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NetSpec {
        NetSpec::vgg_small([3, 16, 16], 8, 10)
    }

    #[test]
    fn grid_covers_space() {
        let space = SearchSpace::default();
        let grid = evaluate_grid(&spec(), &HardwareConfig::default(), &space);
        assert_eq!(
            grid.len(),
            space.crossbar_sizes.len() * space.grayzone_widths_ua.len()
        );
        // Sorted by the combined objective.
        for w in grid.windows(2) {
            assert!(w[0].total_error <= w[1].total_error);
        }
    }

    #[test]
    fn unconstrained_optimum_is_a_balanced_config() {
        // The winner should sit at a gray-zone that is neither the
        // narrowest nor the widest for its crossbar size whenever the grid
        // brackets the optimum (the Fig. 11 interior-peak structure).
        let space = SearchSpace::default();
        let best = co_optimize(&spec(), &HardwareConfig::default(), &space).unwrap();
        assert!(space.crossbar_sizes.contains(&best.crossbar));
        assert!(best.total_error <= best.ame + best.sc_noise + 1e-12);
    }

    #[test]
    fn efficiency_constraint_forces_bigger_crossbars() {
        let space = SearchSpace::default();
        let unconstrained = co_optimize(&spec(), &HardwareConfig::default(), &space).unwrap();
        let mut tight = space.clone();
        // Demand more efficiency than the unconstrained optimum delivers.
        tight.min_tops_per_watt = unconstrained.tops_per_watt * 1.5;
        let constrained = co_optimize(&spec(), &HardwareConfig::default(), &tight);
        if let Some(ref c) = constrained {
            assert!(c.crossbar > unconstrained.crossbar);
            assert!(c.tops_per_watt >= tight.min_tops_per_watt);
        }
        // (If no candidate meets 1.5×, None is also a correct answer —
        // but the default grid reaches 72×72, which does.)
        assert!(constrained.is_some());
    }

    #[test]
    fn impossible_constraint_returns_none() {
        let space = SearchSpace {
            min_tops_per_watt: f64::INFINITY,
            ..Default::default()
        };
        assert!(co_optimize(&spec(), &HardwareConfig::default(), &space).is_none());
    }
}
