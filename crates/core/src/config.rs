//! The joint hardware configuration of an AQFP-based randomized BNN
//! accelerator (the knobs of the Section 5.4 co-optimization).

use aqfp_crossbar::array::CrossbarConfig;
use aqfp_crossbar::AttenuationModel;
use aqfp_device::GrayZone;
use aqfp_sc::accumulate::CounterKind;
use bnn_nn::Binarizer;
use serde::{Deserialize, Serialize};

/// Hardware configuration of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Crossbar rows (the fan-in merged per column; the `Cs` of Eq. 2).
    pub crossbar_rows: usize,
    /// Crossbar columns (output neurons per array).
    pub crossbar_cols: usize,
    /// Gray-zone width `ΔIin` of the neuron buffers, in µA.
    pub grayzone_ua: f64,
    /// SC observation-window / bit-stream length `L`.
    pub bitstream_len: usize,
    /// Current-attenuation model of the merging network.
    pub attenuation: AttenuationModel,
    /// Excitation clock frequency in GHz.
    pub clock_ghz: f64,
    /// Parallel-counter implementation of the SC accumulation module
    /// (paper Section 4.3; `Approximate` = Kim et al.'s gate-saving APC).
    pub counter: CounterKind,
}

impl Default for HardwareConfig {
    /// The paper's main operating point: 16×16 crossbars, `ΔIin = 2.4 µA`,
    /// `L = 16`, 5 GHz, exact parallel counters.
    fn default() -> Self {
        Self {
            crossbar_rows: 16,
            crossbar_cols: 16,
            grayzone_ua: aqfp_device::consts::DEFAULT_GRAYZONE_UA,
            bitstream_len: 16,
            attenuation: AttenuationModel::paper_fit(),
            clock_ghz: aqfp_device::consts::CLOCK_FREQUENCY_GHZ,
            counter: CounterKind::Exact,
        }
    }
}

impl HardwareConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero sizes, non-positive gray-zone or frequency.
    pub fn validate(&self) {
        assert!(self.crossbar_rows > 0, "crossbar rows must be positive");
        assert!(self.crossbar_cols > 0, "crossbar cols must be positive");
        assert!(
            self.grayzone_ua > 0.0 && self.grayzone_ua.is_finite(),
            "gray-zone must be positive"
        );
        assert!(self.bitstream_len > 0, "bit-stream length must be positive");
        assert!(
            self.clock_ghz > 0.0 && self.clock_ghz.is_finite(),
            "clock must be positive"
        );
    }

    /// The attenuated unit current `I1(rows)` of a full-height crossbar, µA.
    pub fn i1_ua(&self) -> f64 {
        self.attenuation.i1_ua(self.crossbar_rows)
    }

    /// The value-domain gray-zone width `ΔVin(Cs) = ΔIin / I1(Cs)` (Eq. 4).
    pub fn value_grayzone(&self) -> f64 {
        self.attenuation
            .value_grayzone(self.grayzone_ua, self.crossbar_rows)
    }

    /// The value-domain stochastic law with threshold `vth` (in latent
    /// pre-activation units).
    pub fn value_law(&self, vth: f64) -> GrayZone {
        GrayZone::new(vth, self.value_grayzone())
    }

    /// The value-domain gray-zone width converted into the *normalized*
    /// activation domain the software binarization layers operate in.
    ///
    /// Two calibration factors take the physical law to the training law:
    ///
    /// * `1/√Cs` — the hardware law applies to raw crossbar sums, whose
    ///   standard deviation is `√Cs` for ±1 operands, while the software
    ///   binarizer sits after batch normalization (unit scale);
    /// * `1/√L` — deployment observes each column for `L` cycles and the
    ///   SC accumulation averages the draws, shrinking the effective
    ///   decision noise by `√L`, whereas the software binarizer samples
    ///   once per forward pass.
    pub fn training_grayzone(&self) -> f64 {
        self.value_grayzone()
            / (self.crossbar_rows as f64).sqrt()
            / (self.bitstream_len as f64).sqrt()
    }

    /// The randomized binarizer used during AQFP-aware training (threshold
    /// 0; per-channel thresholds appear only at deployment via BN matching).
    pub fn training_binarizer(&self) -> Binarizer {
        Binarizer::Randomized(GrayZone::new(0.0, self.training_grayzone()))
    }

    /// The configuration under a device-parameter variation: the
    /// gray-zone width and attenuation model drift per
    /// [`aqfp_device::VariationModel`], everything else unchanged.
    ///
    /// Deploying *with* this config models a **recalibrated** die (the BN
    /// matching and comparator quantization see the drifted values);
    /// deploying with the nominal config and then applying the variation
    /// post-deployment (`DeployedModel::apply_variation`, or the packed
    /// engine's variation-parameterized `stochastic_tables`) models
    /// **drift after calibration** — the reliability axis robustness
    /// sweeps measure.
    #[must_use]
    pub fn with_variation(&self, vm: &aqfp_device::VariationModel) -> Self {
        let varied = self.crossbar_config().with_variation(vm);
        Self {
            grayzone_ua: varied.grayzone_ua,
            attenuation: varied.attenuation,
            ..*self
        }
    }

    /// The crossbar configuration shared by all deployed arrays.
    pub fn crossbar_config(&self) -> CrossbarConfig {
        CrossbarConfig {
            grayzone_ua: self.grayzone_ua,
            attenuation: self.attenuation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_operating_point() {
        let hw = HardwareConfig::default();
        hw.validate();
        assert_eq!(hw.crossbar_rows, 16);
        assert_eq!(hw.bitstream_len, 16);
        assert!((hw.grayzone_ua - 2.4).abs() < 1e-12);
        assert!((hw.clock_ghz - 5.0).abs() < 1e-12);
    }

    #[test]
    fn value_grayzone_grows_with_crossbar_size() {
        let small = HardwareConfig {
            crossbar_rows: 4,
            ..Default::default()
        };
        let large = HardwareConfig {
            crossbar_rows: 144,
            ..Default::default()
        };
        assert!(large.value_grayzone() > small.value_grayzone());
    }

    #[test]
    fn training_binarizer_is_randomized() {
        let hw = HardwareConfig::default();
        match hw.training_binarizer() {
            Binarizer::Randomized(law) => {
                assert_eq!(law.threshold, 0.0);
                assert!((law.width - hw.training_grayzone()).abs() < 1e-12);
            }
            other => panic!("expected randomized binarizer, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "rows must be positive")]
    fn validate_rejects_zero_rows() {
        HardwareConfig {
            crossbar_rows: 0,
            ..Default::default()
        }
        .validate();
    }
}
