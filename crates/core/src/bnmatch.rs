//! Batch-normalization matching (paper Section 5.2, Eq. 16).
//!
//! At inference, BN is affine: `y = γ(x_conv·α − µ)/√(σ²+ε) + β`. The BNN
//! cell's subsequent `sign(HardTanh(y))` therefore reduces to comparing the
//! crossbar's latent sum `x_conv` against a per-channel threshold — which
//! the AQFP buffer implements natively via its adjustable `Ith`:
//!
//! ```text
//! Ith = (−β·√(σ²+ε)/(γ·α) + µ/α) · I1(Cs)                   (Eq. 16)
//! ```
//!
//! When `γ < 0` the comparison flips (Eq. 15), realized by inverting the
//! neuron's output bit. No floating-point peripheral circuit remains.

use serde::{Deserialize, Serialize};

/// The result of matching one BN layer onto crossbar thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnMatch {
    /// Per-channel decision threshold in *latent-sum units* (multiply by
    /// `I1(Cs)` for the physical µA value of a specific crossbar).
    pub vth: Vec<f64>,
    /// Per-channel output inversion (`γ < 0`, Eq. 15).
    pub flip: Vec<bool>,
}

/// Degenerate-γ guard: below this the channel output is constant.
const GAMMA_EPS: f64 = 1e-12;

/// Computes BN matching for one layer.
///
/// * `gamma`, `beta`, `mean`, `var` — the folded BN parameters (Eq. 11);
/// * `alpha` — the XNOR-Net per-channel scaling factor;
/// * `eps` — BN's numerical epsilon.
///
/// # Panics
/// Panics on length mismatches or non-positive α.
pub fn bn_match(
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    alpha: &[f32],
    eps: f32,
) -> BnMatch {
    let n = gamma.len();
    assert!(
        beta.len() == n && mean.len() == n && var.len() == n && alpha.len() == n,
        "BN parameter length mismatch"
    );
    let mut vth = Vec::with_capacity(n);
    let mut flip = Vec::with_capacity(n);
    for i in 0..n {
        let (g, b, m, v, a) = (
            gamma[i] as f64,
            beta[i] as f64,
            mean[i] as f64,
            var[i] as f64,
            alpha[i] as f64,
        );
        assert!(a > 0.0, "α must be positive (channel {i}), got {a}");
        let std = (v + eps as f64).sqrt();
        if g.abs() < GAMMA_EPS {
            // γ ≈ 0: BN output is the constant β; the sign is fixed.
            // Encode as an unreachable threshold.
            if b >= 0.0 {
                vth.push(f64::NEG_INFINITY); // always '1'
            } else {
                vth.push(f64::INFINITY); // always '0'
            }
            flip.push(false);
            continue;
        }
        // sign(γ(xα − µ)/std + β): for γ>0, '1' iff x ≥ µ/α − β·std/(γα).
        vth.push(m / a - b * std / (g * a));
        flip.push(g < 0.0);
    }
    BnMatch { vth, flip }
}

/// Reference decision: the floating-point BNN cell output
/// `sign(HardTanh(BN(x_conv·α)))` for channel `i` — what the matched
/// threshold must reproduce exactly. Used by tests and property checks.
pub fn reference_decision(
    x_conv: f64,
    gamma: f32,
    beta: f32,
    mean: f32,
    var: f32,
    alpha: f32,
    eps: f32,
) -> bool {
    let y = gamma as f64 * (x_conv * alpha as f64 - mean as f64)
        / ((var as f64 + eps as f64).sqrt())
        + beta as f64;
    // HardTanh preserves sign; sign(0) = +1 per Eq. 6.
    y >= 0.0
}

/// The matched decision for channel values produced by [`bn_match`].
pub fn matched_decision(x_conv: f64, vth: f64, flip: bool) -> bool {
    let raw = x_conv >= vth;
    raw != flip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalence(gamma: f32, beta: f32, mean: f32, var: f32, alpha: f32) {
        let eps = 1e-5f32;
        let m = bn_match(&[gamma], &[beta], &[mean], &[var], &[alpha], eps);
        for x in -40..=40 {
            let x = x as f64 * 0.5;
            let want = reference_decision(x, gamma, beta, mean, var, alpha, eps);
            let got = matched_decision(x, m.vth[0], m.flip[0]);
            // Ties at the exact threshold may differ by floating rounding;
            // skip the measure-zero boundary.
            if (x - m.vth[0]).abs() < 1e-9 {
                continue;
            }
            assert_eq!(
                got, want,
                "x={x} γ={gamma} β={beta} µ={mean} σ²={var} α={alpha}"
            );
        }
    }

    #[test]
    fn positive_gamma_matches_reference() {
        check_equivalence(1.0, 0.5, 2.0, 4.0, 0.7);
        check_equivalence(0.3, -1.0, -3.0, 0.25, 1.2);
    }

    #[test]
    fn negative_gamma_flips() {
        let m = bn_match(&[-1.0], &[0.0], &[0.0], &[1.0], &[1.0], 1e-5);
        assert!(m.flip[0]);
        check_equivalence(-1.0, 0.5, 2.0, 4.0, 0.7);
        check_equivalence(-0.4, -0.2, 1.0, 9.0, 0.5);
    }

    #[test]
    fn zero_gamma_is_constant() {
        let m = bn_match(&[0.0], &[1.0], &[5.0], &[1.0], &[1.0], 1e-5);
        assert_eq!(m.vth[0], f64::NEG_INFINITY);
        assert!(matched_decision(-1e9, m.vth[0], m.flip[0]));
        let m = bn_match(&[0.0], &[-1.0], &[5.0], &[1.0], &[1.0], 1e-5);
        assert_eq!(m.vth[0], f64::INFINITY);
        assert!(!matched_decision(1e9, m.vth[0], m.flip[0]));
    }

    #[test]
    fn identity_bn_threshold_is_mean_over_alpha() {
        // γ=1, β=0: threshold is µ/α.
        let m = bn_match(&[1.0], &[0.0], &[6.0], &[1.0], &[2.0], 1e-5);
        assert!((m.vth[0] - 3.0).abs() < 1e-9);
        assert!(!m.flip[0]);
    }

    #[test]
    fn multi_channel_vectors() {
        let m = bn_match(
            &[1.0, -1.0, 0.5],
            &[0.0, 0.0, 1.0],
            &[0.0, 2.0, -1.0],
            &[1.0, 1.0, 4.0],
            &[1.0, 1.0, 0.5],
            1e-5,
        );
        assert_eq!(m.vth.len(), 3);
        assert_eq!(m.flip, vec![false, true, false]);
    }

    #[test]
    #[should_panic(expected = "α must be positive")]
    fn rejects_zero_alpha() {
        bn_match(&[1.0], &[0.0], &[0.0], &[1.0], &[0.0], 1e-5);
    }
}
