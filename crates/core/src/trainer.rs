//! The randomized-aware BNN training loop (paper Sections 5.1, 6.1).
//!
//! Training follows the paper's recipe: SGD with momentum, learning rate
//! 0.1 decayed by cosine annealing with linear warmup, and the ReCU weight
//! rectified clamp whose τ anneals 0.85 → 0.99 over training. The model's
//! binarization layers carry the hardware-aware randomized law (set up by
//! [`NetSpec::build_software`](crate::spec::NetSpec::build_software)), so
//! the forward pass samples the AQFP behaviour and the backward pass
//! differentiates its expectation (Eqs. 7 and 10).

use bnn_datasets::Dataset;
use bnn_nn::layers::Mode;
use bnn_nn::loss::{accuracy, softmax_cross_entropy};
use bnn_nn::optim::{CosineSchedule, Sgd};
use bnn_nn::recu::TauSchedule;
use bnn_nn::{NnRng, SeedableRng, Sequential};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (paper: 0.1).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Warmup epochs (paper: 5).
    pub warmup_epochs: usize,
    /// Apply the ReCU rectified clamp.
    pub recu: bool,
    /// Noise-warmup epochs: binarization layers run deterministically (STE)
    /// for this many initial epochs before the randomized device law is
    /// switched on. Deep binary networks do not converge from scratch under
    /// full per-activation sampling noise; a short deterministic curriculum
    /// (the same trick as noise annealing in noise-aware PCM/ReRAM training)
    /// lets features form first, then adapts them to the device.
    pub noise_warmup_epochs: usize,
    /// RNG seed for batching and stochastic forward passes.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            warmup_epochs: 2,
            recu: true,
            noise_warmup_epochs: 0,
            seed: 2023,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub train_accuracy: f64,
    /// Learning rate at the epoch's first step.
    pub lr: f32,
}

/// The training driver.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.batch_size > 0, "batch size must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `data`, returning per-epoch statistics.
    pub fn train(&self, model: &mut Sequential, data: &Dataset) -> Vec<EpochStats> {
        let cfg = &self.config;
        let mut rng = NnRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = data.len().div_ceil(cfg.batch_size);
        let total_steps = (cfg.epochs * steps_per_epoch).max(2);
        let schedule = CosineSchedule {
            base_lr: cfg.lr,
            // Clamp so short runs (fewer epochs than the warmup) stay valid.
            warmup_steps: (cfg.warmup_epochs * steps_per_epoch)
                .max(1)
                .min(total_steps - 1),
            total_steps,
        };
        let tau = TauSchedule::paper_default(cfg.epochs * steps_per_epoch);
        let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);

        // Record the configured binarizers so the noise curriculum can
        // restore them after the deterministic phase.
        let original: Vec<(usize, bnn_nn::Binarizer)> = (0..model.len())
            .filter_map(|i| {
                model
                    .layer_mut(i)
                    .as_any_mut()
                    .downcast_mut::<bnn_nn::layers::BinActivation>()
                    .map(|b| (i, b.binarizer()))
            })
            .collect();
        let set_deterministic = |model: &mut Sequential, on: bool| {
            for &(i, bin) in &original {
                if let Some(b) = model
                    .layer_mut(i)
                    .as_any_mut()
                    .downcast_mut::<bnn_nn::layers::BinActivation>()
                {
                    b.set_binarizer(if on {
                        bnn_nn::Binarizer::Deterministic
                    } else {
                        bin
                    });
                }
            }
        };

        let mut history = Vec::with_capacity(cfg.epochs);
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            set_deterministic(model, epoch < cfg.noise_warmup_epochs);
            let mut loss_sum = 0.0f32;
            let mut correct = 0usize;
            let mut seen = 0usize;
            let epoch_lr = schedule.lr_at(step);
            for (x, labels) in data.batches(cfg.batch_size, &mut rng) {
                if cfg.recu {
                    model.apply_recu(&tau, step);
                }
                opt.lr = schedule.lr_at(step);
                let logits = model.forward(&x, Mode::Train, &mut rng);
                let (loss, grad) = softmax_cross_entropy(&logits, &labels);
                loss_sum += loss * labels.len() as f32;
                correct += (accuracy(&logits, &labels) * labels.len() as f64).round() as usize;
                seen += labels.len();
                model.backward(&grad);
                opt.step(model);
                step += 1;
            }
            history.push(EpochStats {
                epoch,
                loss: loss_sum / seen as f32,
                train_accuracy: correct as f64 / seen as f64,
                lr: epoch_lr,
            });
        }
        history
    }

    /// Evaluates top-1 accuracy (software model; the binarization layers
    /// still sample if their law is randomized, making this the
    /// "randomized software" evaluation of the experiments).
    pub fn evaluate(&self, model: &mut Sequential, data: &Dataset) -> f64 {
        let mut rng = NnRng::seed_from_u64(self.config.seed ^ 0xE7A1_5EED);
        let mut correct = 0usize;
        for (x, labels) in data.batches(self.config.batch_size, &mut rng) {
            let logits = model.forward(&x, Mode::Eval, &mut rng);
            correct += (accuracy(&logits, &labels) * labels.len() as f64).round() as usize;
        }
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::spec::NetSpec;
    use bnn_datasets::{digits::generate_digits, SynthConfig};

    fn small_digits() -> Dataset {
        generate_digits(&SynthConfig {
            samples_per_class: 12,
            noise_std: 0.2,
            max_shift: 1,
            seed: 11,
        })
    }

    #[test]
    fn mlp_learns_synth_digits() {
        let data = small_digits();
        let (train, test) = data.split(0.25);
        let hw = HardwareConfig::default();
        let spec = NetSpec::mlp(&[1, 16, 16], &[64], 10);
        let mut model = spec.build_software(&hw, 1);
        let trainer = Trainer::new(TrainConfig {
            epochs: 12,
            batch_size: 16,
            ..Default::default()
        });
        let history = trainer.train(&mut model, &train);
        assert_eq!(history.len(), 12);
        // Loss must drop substantially from the ~ln(10) start.
        assert!(history.last().unwrap().loss < history[0].loss * 0.7);
        let acc = trainer.evaluate(&mut model, &test);
        assert!(
            acc > 0.5,
            "MLP should beat 50% on easy synth digits, got {acc}"
        );
    }

    #[test]
    fn history_records_schedule() {
        let data = small_digits();
        let hw = HardwareConfig::default();
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let mut model = spec.build_software(&hw, 2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            warmup_epochs: 1,
            ..Default::default()
        });
        let history = trainer.train(&mut model, &data);
        // Warmup: first epoch's initial lr is below the peak.
        assert!(history[0].lr < trainer.config().lr);
        // Post-warmup epochs decay.
        assert!(history[2].lr > history[3].lr);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_zero_epochs() {
        Trainer::new(TrainConfig {
            epochs: 0,
            ..Default::default()
        });
    }
}
