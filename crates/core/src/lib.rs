//! SupeRBNN: randomized binary neural networks on Adiabatic
//! Quantum-Flux-Parametron devices — the paper's primary contribution.
//!
//! This crate wires the substrates together into the co-design framework:
//!
//! * [`config`] — the joint hardware configuration (crossbar size,
//!   gray-zone width, SC bit-stream length, clock);
//! * [`spec`] — network descriptions that build both the *software* model
//!   (randomized-aware training, Section 5.1) and its *hardware* deployment
//!   from one source of truth;
//! * [`bnmatch`] — batch-normalization matching (Eq. 16): folding BN into
//!   the AQFP neuron threshold with zero peripheral circuits;
//! * [`deploy`](mod@deploy) — the hardware-faithful inference engine: weight tiling
//!   onto crossbars, stochastic neuron read-out, SC-based inter-crossbar
//!   accumulation, digital OR-pooling, digital popcount classifier head;
//! * [`energy`] — the system-level energy/power/throughput estimator that
//!   produces the "Ours" rows of Tables 2–3;
//! * [`optimize`] — the AME-driven hardware-configuration co-optimization
//!   of Section 5.4;
//! * [`trainer`] — the training loop (SGD + cosine schedule + warmup +
//!   ReCU) of Section 6.1;
//! * [`experiments`] — drivers for every figure/table reproduction
//!   (Fig. 10, Fig. 11, Table 2, Table 3, ablations);
//! * [`robustness`] — Monte Carlo fault-robustness campaigns on the
//!   packed deploy engine: per-trial fault draws injected directly into
//!   the lowered bitplanes, fanned across threads, aggregated into
//!   per-rate accuracy distributions;
//! * [`equiv`] — the bounded equivalence checker over the four inference
//!   engines (exhaustive on small geometries, random at scale, under
//!   every structural fault class), returning typed counterexamples;
//! * [`screening`] — ATPG die screening: greedy set-cover probe-vector
//!   generation over the enumerated structural fault universe, with a
//!   serialized probe set for millisecond production screening.
//!
//! # Quickstart
//!
//! ```
//! use superbnn::config::HardwareConfig;
//! use superbnn::spec::NetSpec;
//! use superbnn::trainer::{TrainConfig, Trainer};
//! use superbnn::deploy::deploy;
//! use bnn_datasets::{digits::generate_digits, SynthConfig};
//!
//! // Tiny end-to-end pipeline (a real run uses more data and epochs).
//! let data = generate_digits(&SynthConfig { samples_per_class: 6, ..Default::default() });
//! let (train, test) = data.split(0.34);
//! let hw = HardwareConfig::default();
//! let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
//! let mut net = spec.build_software(&hw, 7);
//! let trainer = Trainer::new(TrainConfig { epochs: 1, ..Default::default() });
//! trainer.train(&mut net, &train);
//! let deployed = deploy(&spec, &net, &hw).unwrap();
//! use aqfp_device::SeedableRng;
//! let mut rng = aqfp_device::DeviceRng::seed_from_u64(1);
//! let acc = deployed.accuracy(&test, &mut rng, None);
//! assert!((0.0..=1.0).contains(&acc));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnmatch;
pub mod config;
pub mod deploy;
pub mod energy;
pub mod equiv;
pub mod experiments;
pub mod optimize;
pub mod robustness;
pub mod screening;
pub mod spec;
pub mod trainer;

pub use config::HardwareConfig;
pub use deploy::{deploy, DeployError, DeployedModel};
pub use spec::NetSpec;

/// Crate-wide result alias: every fallible deployment API fails with
/// [`DeployError`].
pub type Result<T> = std::result::Result<T, DeployError>;
