//! Network specifications: one description builds both the software model
//! and its hardware deployment.
//!
//! Keeping a declarative [`NetSpec`] avoids the classic co-design bug where
//! the trained network and the deployed network silently diverge: the
//! trainer and the mapper walk the *same* cell list, and the layer-expansion
//! rules below are the single place that defines what a "BNN cell" is
//! (paper Fig. 8: binary conv → BN → HardTanh → binarize, which deployment
//! collapses into one randomized binary convolution with a programmed
//! threshold).

use crate::config::HardwareConfig;
use bnn_nn::layers::{
    BatchNorm, BinActivation, Conv2d, Flatten, HardTanh, Linear, MaxPool2d, Residual,
};
use bnn_nn::{NnRng, SeedableRng, Sequential};
use serde::{Deserialize, Serialize};

/// One cell of a network specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellSpec {
    /// Binarize the raw input (±1 from the pixel sign) so the first layer
    /// also runs on crossbars.
    BinarizeInput,
    /// A binary convolution cell: conv (pad −1) → BN → HardTanh →
    /// randomized binarize, optionally followed by a 2×2 max-pool (which is
    /// a digital OR in the binary domain).
    Conv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero-... minus-one-padding width.
        pad: usize,
        /// Append a 2×2 max-pool.
        pool: bool,
    },
    /// A Bi-Real-style binary residual block: two 3×3 binary conv + BN
    /// stages with a real-valued skip connection (projection 1×1 conv + BN
    /// when the shape changes), followed by HardTanh and binarization of
    /// the summed output. Used by the ResNet-18-class variant of Table 2.
    /// Software-trainable and energy-estimable; the crossbar deployment
    /// engine does not map the real-valued skip adder (documented
    /// substitution: the paper's ResNet row is an accuracy/energy claim,
    /// not a datapath description).
    Residual {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Stride of the first conv (2 = spatial downsample).
        stride: usize,
    },
    /// Flatten to `[N, features]`.
    Flatten,
    /// A binary fully-connected cell: linear → BN → HardTanh → binarize.
    Dense {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// The classifier head: a binary-weight linear layer with bias whose
    /// real-valued logits feed softmax. Deployed as a digital popcount
    /// layer (see DESIGN.md §2).
    Classifier {
        /// Input features.
        in_f: usize,
        /// Number of classes.
        classes: usize,
    },
}

/// A network specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Input shape `[C, H, W]`.
    pub input_shape: [usize; 3],
    /// The cells in order.
    pub cells: Vec<CellSpec>,
}

impl NetSpec {
    /// The scaled VGG-Small used for the CIFAR-10-class experiments:
    /// six binary conv cells in three pooled stages, then a classifier.
    /// `width` is the first-stage channel count (the paper's full-size
    /// network uses 128; the synthetic datasets use 8–16).
    ///
    /// # Panics
    /// Panics unless the spatial size is divisible by 8 (three pools).
    pub fn vgg_small(input_shape: [usize; 3], width: usize, classes: usize) -> Self {
        let [c, h, w] = input_shape;
        assert!(
            h % 8 == 0 && w % 8 == 0,
            "three 2×2 pools need /8 divisibility"
        );
        let (w1, w2, w3) = (width, 2 * width, 4 * width);
        let cells = vec![
            CellSpec::BinarizeInput,
            CellSpec::Conv {
                in_c: c,
                out_c: w1,
                k: 3,
                stride: 1,
                pad: 1,
                pool: false,
            },
            CellSpec::Conv {
                in_c: w1,
                out_c: w1,
                k: 3,
                stride: 1,
                pad: 1,
                pool: true,
            },
            CellSpec::Conv {
                in_c: w1,
                out_c: w2,
                k: 3,
                stride: 1,
                pad: 1,
                pool: false,
            },
            CellSpec::Conv {
                in_c: w2,
                out_c: w2,
                k: 3,
                stride: 1,
                pad: 1,
                pool: true,
            },
            CellSpec::Conv {
                in_c: w2,
                out_c: w3,
                k: 3,
                stride: 1,
                pad: 1,
                pool: false,
            },
            CellSpec::Conv {
                in_c: w3,
                out_c: w3,
                k: 3,
                stride: 1,
                pad: 1,
                pool: true,
            },
            CellSpec::Flatten,
            CellSpec::Classifier {
                in_f: w3 * (h / 8) * (w / 8),
                classes,
            },
        ];
        Self { input_shape, cells }
    }

    /// The scaled binary ResNet used for the Table 2 "Ours (ResNet-18)"
    /// row: a conv stem followed by three residual stages (the second and
    /// third downsampling), then a classifier. `width` is the stem channel
    /// count.
    ///
    /// # Panics
    /// Panics unless the spatial size is divisible by 4 (two stride-2
    /// stages).
    pub fn resnet_small(input_shape: [usize; 3], width: usize, classes: usize) -> Self {
        let [c, h, w] = input_shape;
        assert!(
            h % 4 == 0 && w % 4 == 0,
            "two stride-2 stages need /4 divisibility"
        );
        let (w1, w2, w3) = (width, 2 * width, 4 * width);
        let cells = vec![
            CellSpec::BinarizeInput,
            CellSpec::Conv {
                in_c: c,
                out_c: w1,
                k: 3,
                stride: 1,
                pad: 1,
                pool: false,
            },
            CellSpec::Residual {
                in_c: w1,
                out_c: w1,
                stride: 1,
            },
            CellSpec::Residual {
                in_c: w1,
                out_c: w2,
                stride: 2,
            },
            CellSpec::Residual {
                in_c: w2,
                out_c: w3,
                stride: 2,
            },
            CellSpec::Flatten,
            CellSpec::Classifier {
                in_f: w3 * (h / 4) * (w / 4),
                classes,
            },
        ];
        Self { input_shape, cells }
    }

    /// The MLP used for the MNIST-class comparison (Table 3, following
    /// JBNN's architecture shape): binarized input → dense cells → classifier.
    pub fn mlp(input_shape: &[usize; 3], hidden: &[usize], classes: usize) -> Self {
        let mut cells = vec![CellSpec::BinarizeInput, CellSpec::Flatten];
        let mut in_f = input_shape[0] * input_shape[1] * input_shape[2];
        for &h in hidden {
            cells.push(CellSpec::Dense { in_f, out_f: h });
            in_f = h;
        }
        cells.push(CellSpec::Classifier { in_f, classes });
        Self {
            input_shape: *input_shape,
            cells,
        }
    }

    /// Builds the software model for this spec with the randomized-aware
    /// binarizer of `hw` (paper Section 5.1), seeded for reproducibility.
    pub fn build_software(&self, hw: &HardwareConfig, seed: u64) -> Sequential {
        self.build_software_with(hw.training_binarizer(), seed)
    }

    /// Builds the software model with an explicit activation binarizer —
    /// the conventional sign/STE training of the ablation baselines uses
    /// [`bnn_nn::Binarizer::Deterministic`] here.
    pub fn build_software_with(&self, binarizer: bnn_nn::Binarizer, seed: u64) -> Sequential {
        let mut rng = NnRng::seed_from_u64(seed);
        let mut model = Sequential::new();
        for cell in &self.cells {
            match *cell {
                CellSpec::BinarizeInput => {
                    model.push(BinActivation::new(bnn_nn::Binarizer::Deterministic));
                }
                CellSpec::Conv {
                    in_c,
                    out_c,
                    k,
                    stride,
                    pad,
                    pool,
                } => {
                    model.push(
                        Conv2d::new(in_c, out_c, k, stride, pad, true, &mut rng)
                            .with_pad_value(-1.0),
                    );
                    // Pool *before* BN (XNOR-Net ordering): BN then recenters
                    // the pooled distribution, keeping binarized activations
                    // balanced. Deployment stays exact because BN is
                    // monotone per channel: sign(BN(max x)) = OR of the
                    // per-position threshold bits (AND for γ < 0 channels).
                    if pool {
                        model.push(MaxPool2d::new(2));
                    }
                    model.push(BatchNorm::new(out_c));
                    model.push(HardTanh::new());
                    model.push(BinActivation::new(binarizer));
                }
                CellSpec::Residual {
                    in_c,
                    out_c,
                    stride,
                } => {
                    let mut body = Sequential::new();
                    body.push(
                        Conv2d::new(in_c, out_c, 3, stride, 1, true, &mut rng).with_pad_value(-1.0),
                    );
                    body.push(BatchNorm::new(out_c));
                    body.push(HardTanh::new());
                    body.push(BinActivation::new(binarizer));
                    body.push(
                        Conv2d::new(out_c, out_c, 3, 1, 1, true, &mut rng).with_pad_value(-1.0),
                    );
                    body.push(BatchNorm::new(out_c));
                    let res = if in_c != out_c || stride != 1 {
                        let mut shortcut = Sequential::new();
                        shortcut.push(Conv2d::new(in_c, out_c, 1, stride, 0, true, &mut rng));
                        shortcut.push(BatchNorm::new(out_c));
                        Residual::with_shortcut(body, shortcut)
                    } else {
                        Residual::new(body)
                    };
                    model.push(res);
                    model.push(HardTanh::new());
                    model.push(BinActivation::new(binarizer));
                }
                CellSpec::Flatten => model.push(Flatten::new()),
                CellSpec::Dense { in_f, out_f } => {
                    model.push(Linear::new(in_f, out_f, true, &mut rng));
                    model.push(BatchNorm::new(out_f));
                    model.push(HardTanh::new());
                    model.push(BinActivation::new(binarizer));
                }
                CellSpec::Classifier { in_f, classes } => {
                    model.push(Linear::new(in_f, classes, true, &mut rng));
                }
            }
        }
        model
    }

    /// Number of software layers each cell expands to (used by the mapper
    /// to walk the built model in lock-step with the spec).
    pub fn layers_of(cell: &CellSpec) -> usize {
        match cell {
            CellSpec::BinarizeInput => 1,
            CellSpec::Conv { pool, .. } => {
                if *pool {
                    5
                } else {
                    4
                }
            }
            CellSpec::Residual { .. } => 3,
            CellSpec::Flatten => 1,
            CellSpec::Dense { .. } => 4,
            CellSpec::Classifier { .. } => 1,
        }
    }

    /// Total software layer count of this spec.
    pub fn total_layers(&self) -> usize {
        self.cells.iter().map(Self::layers_of).sum()
    }

    /// Spatial output shape tracking: `[C, H, W]` after each cell.
    pub fn shapes(&self) -> Vec<[usize; 3]> {
        let mut cur = self.input_shape;
        let mut out = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            cur = match *cell {
                CellSpec::BinarizeInput => cur,
                CellSpec::Conv {
                    out_c,
                    k,
                    stride,
                    pad,
                    pool,
                    ..
                } => {
                    let h = (cur[1] + 2 * pad - k) / stride + 1;
                    let w = (cur[2] + 2 * pad - k) / stride + 1;
                    let div = if pool { 2 } else { 1 };
                    [out_c, h / div, w / div]
                }
                CellSpec::Residual { out_c, stride, .. } => {
                    let h = (cur[1] + 2 - 3) / stride + 1;
                    let w = (cur[2] + 2 - 3) / stride + 1;
                    [out_c, h, w]
                }
                CellSpec::Flatten => [cur[0] * cur[1] * cur[2], 1, 1],
                CellSpec::Dense { out_f, .. } => [out_f, 1, 1],
                CellSpec::Classifier { classes, .. } => [classes, 1, 1],
            };
            out.push(cur);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_small_shapes_chain() {
        let spec = NetSpec::vgg_small([3, 16, 16], 8, 10);
        let shapes = spec.shapes();
        // After the three pooled stages: 32 channels at 2×2.
        assert_eq!(shapes[shapes.len() - 3], [32, 2, 2]);
        assert_eq!(*shapes.last().unwrap(), [10, 1, 1]);
    }

    #[test]
    fn mlp_spec_layers() {
        let spec = NetSpec::mlp(&[1, 16, 16], &[128, 128], 10);
        assert_eq!(spec.cells.len(), 5);
        assert_eq!(spec.total_layers(), 1 + 1 + 4 + 4 + 1);
    }

    #[test]
    fn built_model_matches_layer_count() {
        let hw = HardwareConfig::default();
        let spec = NetSpec::vgg_small([3, 16, 16], 4, 10);
        let model = spec.build_software(&hw, 0);
        assert_eq!(model.len(), spec.total_layers());
    }

    #[test]
    fn built_model_runs_forward() {
        let hw = HardwareConfig::default();
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let mut model = spec.build_software(&hw, 0);
        let mut rng = NnRng::seed_from_u64(0);
        let x = bnn_nn::Tensor::zeros(&[2, 1, 16, 16]);
        let y = model.forward(&x, bnn_nn::layers::Mode::Eval, &mut rng);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn building_is_deterministic_per_seed() {
        let hw = HardwareConfig::default();
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let mut a = spec.build_software(&hw, 5);
        let mut b = spec.build_software(&hw, 5);
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.extend_from_slice(p.value.data()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.extend_from_slice(p.value.data()));
        assert_eq!(wa, wb);
    }

    #[test]
    #[should_panic(expected = "divisibility")]
    fn vgg_rejects_odd_input() {
        NetSpec::vgg_small([3, 15, 15], 8, 10);
    }

    #[test]
    fn resnet_shapes_chain() {
        let spec = NetSpec::resnet_small([3, 16, 16], 8, 10);
        let shapes = spec.shapes();
        // Stem keeps 16×16; two stride-2 residual stages reach 32ch @ 4×4.
        assert_eq!(shapes[shapes.len() - 3], [32, 4, 4]);
        assert_eq!(*shapes.last().unwrap(), [10, 1, 1]);
        assert_eq!(
            spec.total_layers(),
            spec.build_software(&HardwareConfig::default(), 0).len()
        );
    }

    #[test]
    fn resnet_runs_forward_and_backward() {
        let hw = HardwareConfig::default();
        let spec = NetSpec::resnet_small([3, 16, 16], 4, 10);
        let mut model = spec.build_software(&hw, 1);
        let mut rng = NnRng::seed_from_u64(0);
        let x = bnn_nn::Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, bnn_nn::layers::Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 10]);
        let g = y.clone();
        let din = model.backward(&g);
        assert_eq!(din.shape(), &[2, 3, 16, 16]);
    }
}
