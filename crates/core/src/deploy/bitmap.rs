//! A single sample's binary feature map.

use aqfp_device::Bit;
use bnn_nn::Tensor;

/// A `[C, H, W]` map of ±1 activations for one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMap {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    bits: Vec<Bit>,
}

impl BitMap {
    /// An all-'0' (−1) map.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            bits: vec![Bit::Zero; c * h * w],
        }
    }

    /// Builds from raw bits in `[C, H, W]` row-major order.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_bits(c: usize, h: usize, w: usize, bits: Vec<Bit>) -> Self {
        assert_eq!(bits.len(), c * h * w, "bit count mismatch");
        Self { c, h, w, bits }
    }

    /// Binarizes sample `n` of a `[N, C, H, W]` tensor by sign
    /// (`x ≥ 0 → '1'`, the paper's Eq. 6 convention).
    ///
    /// # Panics
    /// Panics unless the tensor is 4-D and `n` is in range.
    pub fn from_tensor_sample(t: &Tensor, n: usize) -> Self {
        let s = t.shape();
        assert_eq!(s.len(), 4, "expected [N, C, H, W]");
        assert!(n < s[0], "sample index out of range");
        let (c, h, w) = (s[1], s[2], s[3]);
        let per = c * h * w;
        let bits = t.data()[n * per..(n + 1) * per]
            .iter()
            .map(|&x| Bit::from_sign(x as f64))
            .collect();
        Self { c, h, w, bits }
    }

    /// The bit at `(c, y, x)`.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> Bit {
        self.bits[(c * self.h + y) * self.w + x]
    }

    /// Sets the bit at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, b: Bit) {
        self.bits[(c * self.h + y) * self.w + x] = b;
    }

    /// All bits, row-major.
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// Total bit count.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The receptive field of output pixel `(oy, ox)` for a `k × k` kernel
    /// with `stride`/`pad`, flattened channel-major (matching the row order
    /// of the im2col weight layout). Out-of-bounds positions read as
    /// `Bit::Zero` (−1), matching the software model's −1 padding.
    pub fn receptive_field(
        &self,
        oy: usize,
        ox: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Vec<Bit> {
        let mut field = Vec::with_capacity(self.c * k * k);
        for c in 0..self.c {
            for ky in 0..k {
                for kx in 0..k {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let bit = if iy < 0 || iy >= self.h as isize || ix < 0 || ix >= self.w as isize
                    {
                        Bit::Zero
                    } else {
                        self.get(c, iy as usize, ix as usize)
                    };
                    field.push(bit);
                }
            }
        }
        field
    }

    /// 2×2 OR-pooling — max-pooling in the ±1 domain, the digital pooling
    /// circuit of the deployed model.
    ///
    /// # Panics
    /// Panics if the spatial size is odd.
    pub fn or_pool2(&self) -> BitMap {
        assert!(
            self.h.is_multiple_of(2) && self.w.is_multiple_of(2),
            "OR-pool needs even spatial dims, got {}×{}",
            self.h,
            self.w
        );
        let (oh, ow) = (self.h / 2, self.w / 2);
        let mut out = BitMap::zeros(self.c, oh, ow);
        for c in 0..self.c {
            for y in 0..oh {
                for x in 0..ow {
                    let any = self.get(c, 2 * y, 2 * x).as_bool()
                        || self.get(c, 2 * y, 2 * x + 1).as_bool()
                        || self.get(c, 2 * y + 1, 2 * x).as_bool()
                        || self.get(c, 2 * y + 1, 2 * x + 1).as_bool();
                    out.set(c, y, x, Bit::from_bool(any));
                }
            }
        }
        out
    }

    /// 2×2 pooling with a per-channel choice of OR or AND.
    ///
    /// Deployed max-pooling: for a γ > 0 channel, `sign(BN(max x)) =
    /// OR(bits)`; for a γ < 0 channel BN is decreasing, so the max maps to
    /// the minimum of the (already inverted) bits — an AND. `and_channel[c]`
    /// selects AND for channel `c`.
    ///
    /// # Panics
    /// Panics on odd spatial dims or a flag-count mismatch.
    #[allow(clippy::needless_range_loop)] // c indexes both map and flags
    pub fn pool2_mixed(&self, and_channel: &[bool]) -> BitMap {
        assert_eq!(and_channel.len(), self.c, "per-channel flag count mismatch");
        assert!(
            self.h.is_multiple_of(2) && self.w.is_multiple_of(2),
            "pool needs even spatial dims, got {}×{}",
            self.h,
            self.w
        );
        let (oh, ow) = (self.h / 2, self.w / 2);
        let mut out = BitMap::zeros(self.c, oh, ow);
        for c in 0..self.c {
            for y in 0..oh {
                for x in 0..ow {
                    let quad = [
                        self.get(c, 2 * y, 2 * x).as_bool(),
                        self.get(c, 2 * y, 2 * x + 1).as_bool(),
                        self.get(c, 2 * y + 1, 2 * x).as_bool(),
                        self.get(c, 2 * y + 1, 2 * x + 1).as_bool(),
                    ];
                    let v = if and_channel[c] {
                        quad.iter().all(|&b| b)
                    } else {
                        quad.iter().any(|&b| b)
                    };
                    out.set(c, y, x, Bit::from_bool(v));
                }
            }
        }
        out
    }

    /// The ±1 values as `f32` (for the digital classifier head).
    pub fn to_signs(&self) -> Vec<f32> {
        self.bits.iter().map(|b| b.to_value() as f32).collect()
    }

    /// Packs the map into a [`BitPlane`](aqfp_sc::BitPlane) in the same `[C, H, W]` row-major
    /// bit order (the packed engine's activation layout).
    pub fn to_plane(&self) -> aqfp_sc::BitPlane {
        aqfp_sc::BitPlane::from_bits(&self.bits)
    }

    /// Unpacks a `[C, H, W]` plane produced by [`BitMap::to_plane`].
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_plane(c: usize, h: usize, w: usize, plane: &aqfp_sc::BitPlane) -> Self {
        assert_eq!(plane.len(), c * h * w, "plane length mismatch");
        Self::from_bits(c, h, w, plane.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tensor_sign_convention() {
        let t = Tensor::from_vec(&[2, 1, 1, 2], vec![0.5, -0.5, 0.0, -2.0]);
        let m0 = BitMap::from_tensor_sample(&t, 0);
        assert_eq!(m0.bits(), &[Bit::One, Bit::Zero]);
        let m1 = BitMap::from_tensor_sample(&t, 1);
        assert_eq!(m1.bits(), &[Bit::One, Bit::Zero]); // 0.0 → '1'
    }

    #[test]
    fn receptive_field_pads_with_zero_bit() {
        let mut m = BitMap::zeros(1, 2, 2);
        m.set(0, 0, 0, Bit::One);
        // 3×3 kernel at (0,0) with pad 1: corner sees padding.
        let field = m.receptive_field(0, 0, 3, 1, 1);
        assert_eq!(field.len(), 9);
        assert_eq!(field[0], Bit::Zero); // top-left pad
        assert_eq!(field[4], Bit::One); // centre = (0,0)
    }

    #[test]
    fn receptive_field_matches_im2col_order() {
        // 2 channels, 2×2, 1×1 kernel: field = channel-major pixel list.
        let mut m = BitMap::zeros(2, 2, 2);
        m.set(1, 0, 0, Bit::One);
        let f = m.receptive_field(0, 0, 1, 1, 0);
        assert_eq!(f, vec![Bit::Zero, Bit::One]);
    }

    #[test]
    fn or_pool_is_binary_maxpool() {
        let mut m = BitMap::zeros(1, 2, 2);
        m.set(0, 1, 1, Bit::One);
        let p = m.or_pool2();
        assert_eq!(p.bits(), &[Bit::One]);
        let q = BitMap::zeros(1, 2, 2).or_pool2();
        assert_eq!(q.bits(), &[Bit::Zero]);
    }

    #[test]
    fn to_signs_roundtrip() {
        let m = BitMap::from_bits(1, 1, 2, vec![Bit::One, Bit::Zero]);
        assert_eq!(m.to_signs(), vec![1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn or_pool_rejects_odd() {
        BitMap::zeros(1, 3, 3).or_pool2();
    }
}
