//! Versioned binary snapshots of the packed deploy engine.
//!
//! Serving replicas cold-start by reading [`BitPlane`] words straight
//! into memory instead of re-training, re-deploying and re-lowering a
//! [`DeployedModel`](super::DeployedModel) — on the serving box the model
//! artifact *is* the lowered [`PackedModel`], so that is what the
//! snapshot persists. The vendored `serde` is a no-op stub (the build
//! environment is offline), so the codec is hand-rolled.
//!
//! Only the *primitive* state of each stage is written: weight bitplanes,
//! tile boundaries, comparator tables, dead-column overrides, operating
//! point. The derived acceleration state (tile word spans, SWAR
//! comparator tables) is rebuilt on load — fault injection keeps the
//! `dead` table and the SWAR biases mutually consistent (the same rule
//! builds both), so a loaded model is bit-identical to the one saved
//! even after a fault campaign mutated it. The worker count is a runtime
//! knob, not model state, and is not persisted.
//!
//! # Wire format (version 1)
//!
//! Everything is **little-endian**. Integers are fixed-width (`u8`,
//! `u32`, `u64`, `i64`); floats are IEEE-754 bit patterns written with
//! `to_le_bytes`, so round-trips are bit-exact. Lengths and indices are
//! `u64`.
//!
//! ```text
//! magic      8 × u8    b"SBNNSNAP"
//! version    u32       1
//! input      3 × u64   input shape [C, H, W]
//! stages     u32       stage count, then per stage:
//!   tag      u8        0 = conv, 1 = pool, 2 = linear, 3 = flatten
//!   conv     in_c, k, stride, pad (u64 each), then a matrix
//!   pool     flag count (u64), then count × u8 AND-pool flags
//!   linear   a matrix
//! classifier
//!   out, fan_in        u64 each
//!   alphas             out × f32
//!   bias               out × f32
//!   rows               out × ⌈fan_in/64⌉ u64 weight words (bit = +1)
//! ```
//!
//! A **matrix** is the primitive state of a
//! [`PackedTiledMatrix`]:
//!
//! ```text
//! fan_in, out          u64 each
//! k                    u64      row-tile count
//! row_starts           (k+1) × u64   ascending, first 0, last fan_in
//! groups               u64      column-group count
//! col_starts           (groups+1) × u64   ascending, first 0, last out
//! min_sums             out·k × i64   channel-major comparator thresholds
//! dead                 out·k × u8    0 live, 1 stuck '0', 2 stuck '1'
//! thresholds_ua        out·k × f64   programmed analog thresholds
//! grayzone_ua          f64
//! attenuation          a_ua f64, b f64
//! window               u64      SC observation window L
//! counter              u8       0 exact, 1 approximate
//! flips                out × u8
//! weights              out × ⌈fan_in/64⌉ u64 plane words per row
//! ```
//!
//! Weight rows follow the workspace bitplane layout: bit `i` of a row is
//! word `i / 64`, bit `i % 64`, and bits past `fan_in` **must** be zero
//! (the zero-tail invariant the SWAR garbage-folding relies on); the
//! decoder rejects snapshots that violate it. The decoder also validates
//! tile boundaries, table lengths and the layer shape chain end-to-end,
//! so a corrupt file yields a [`SnapshotError`], never a panic deep in a
//! kernel.

use super::model::DeployedClassifier;
use super::packed::{MatrixParts, PackedModel, PackedTiledMatrix};
use super::pipeline::{PackedConvStage, PackedLayer, PackedLinearStage, PackedPoolStage};
use aqfp_crossbar::AttenuationModel;
use aqfp_sc::accumulate::CounterKind;
use aqfp_sc::{BitPlane, PackedMatrix};
use baselines::software::{PackedVec, PopcountLinear};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The 8-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SBNNSNAP";

/// The wire-format version this build writes (and the only one it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Sanity cap on every length field — far above any deployable geometry,
/// low enough that a corrupt length errors instead of attempting a
/// multi-gigabyte allocation.
const MAX_LEN: u64 = 1 << 28;

/// Sanity cap on the pipeline stage count.
const MAX_STAGES: u32 = 4096;

const TAG_CONV: u8 = 0;
const TAG_POOL: u8 = 1;
const TAG_LINEAR: u8 = 2;
const TAG_FLATTEN: u8 = 3;

/// Errors raised while writing or reading a snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// An underlying I/O failure (including truncated files, which
    /// surface as [`std::io::ErrorKind::UnexpectedEof`]).
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's wire-format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(
        /// The version the file claims.
        u32,
    ),
    /// The file decodes but violates a structural invariant.
    Corrupt(
        /// Which invariant failed.
        &'static str,
    ),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a packed-model snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

type Result<T> = std::result::Result<T, SnapshotError>;

// ------------------------------------------------------------------
// Primitive writers (all little-endian).
// ------------------------------------------------------------------

fn w_u8<W: Write>(w: &mut W, v: u8) -> Result<()> {
    Ok(w.write_all(&[v])?)
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn w_i64<W: Write>(w: &mut W, v: i64) -> Result<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn w_f32<W: Write>(w: &mut W, v: f32) -> Result<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn w_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

// ------------------------------------------------------------------
// Primitive readers.
// ------------------------------------------------------------------

fn r_bytes<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn r_u8<R: Read>(r: &mut R) -> Result<u8> {
    Ok(r_bytes::<R, 1>(r)?[0])
}

fn r_u32<R: Read>(r: &mut R) -> Result<u32> {
    Ok(u32::from_le_bytes(r_bytes(r)?))
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64> {
    Ok(u64::from_le_bytes(r_bytes(r)?))
}

fn r_i64<R: Read>(r: &mut R) -> Result<i64> {
    Ok(i64::from_le_bytes(r_bytes(r)?))
}

fn r_f32<R: Read>(r: &mut R) -> Result<f32> {
    Ok(f32::from_le_bytes(r_bytes(r)?))
}

fn r_f64<R: Read>(r: &mut R) -> Result<f64> {
    Ok(f64::from_le_bytes(r_bytes(r)?))
}

/// A length/index field, bounded by the sanity cap.
fn r_len<R: Read>(r: &mut R) -> Result<usize> {
    let v = r_u64(r)?;
    if v > MAX_LEN {
        return Err(SnapshotError::Corrupt("length field beyond sanity cap"));
    }
    Ok(v as usize)
}

fn r_u64s<R: Read>(r: &mut R, n: usize) -> Result<Vec<u64>> {
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r_u64(r)?);
    }
    Ok(v)
}

// ------------------------------------------------------------------
// Matrix codec.
// ------------------------------------------------------------------

fn write_matrix<W: Write>(w: &mut W, m: &PackedTiledMatrix) -> Result<()> {
    let p = m.to_parts();
    w_u64(w, p.fan_in as u64)?;
    w_u64(w, p.out as u64)?;
    w_u64(w, (p.row_starts.len() - 1) as u64)?;
    for &s in &p.row_starts {
        w_u64(w, s as u64)?;
    }
    w_u64(w, (p.col_starts.len() - 1) as u64)?;
    for &s in &p.col_starts {
        w_u64(w, s as u64)?;
    }
    for &m in &p.min_sums {
        w_i64(w, m)?;
    }
    for &d in &p.dead {
        w_u8(w, d)?;
    }
    for &t in &p.thresholds_ua {
        w_f64(w, t)?;
    }
    w_f64(w, p.grayzone_ua)?;
    w_f64(w, p.attenuation.a_ua)?;
    w_f64(w, p.attenuation.b)?;
    w_u64(w, p.window as u64)?;
    w_u8(
        w,
        match p.counter {
            CounterKind::Exact => 0,
            CounterKind::Approximate => 1,
        },
    )?;
    for &f in &p.flips {
        w_u8(w, f as u8)?;
    }
    w.write_all(
        &p.weights
            .storage()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect::<Vec<u8>>(),
    )?;
    Ok(())
}

/// Reads ascending tile boundaries: `count + 1` entries, first `0`, last
/// `end`, strictly increasing.
fn r_boundaries<R: Read>(r: &mut R, count: usize, end: usize) -> Result<Vec<usize>> {
    let raw = r_u64s(r, count + 1)?;
    let starts: Vec<usize> = raw.iter().map(|&v| v as usize).collect();
    let ascending = starts.windows(2).all(|w| w[0] < w[1]);
    if raw.iter().any(|&v| v > MAX_LEN) || starts[0] != 0 || !ascending || starts[count] != end {
        return Err(SnapshotError::Corrupt("tile boundaries out of order"));
    }
    Ok(starts)
}

fn read_matrix<R: Read>(r: &mut R) -> Result<PackedTiledMatrix> {
    let fan_in = r_len(r)?;
    let out = r_len(r)?;
    if fan_in == 0 || out == 0 {
        return Err(SnapshotError::Corrupt("matrix with zero geometry"));
    }
    let k = r_len(r)?;
    if k == 0 {
        return Err(SnapshotError::Corrupt("matrix with zero row tiles"));
    }
    let row_starts = r_boundaries(r, k, fan_in)?;
    let groups = r_len(r)?;
    if groups == 0 {
        return Err(SnapshotError::Corrupt("matrix with zero column groups"));
    }
    let col_starts = r_boundaries(r, groups, out)?;
    let cells = out
        .checked_mul(k)
        .filter(|&c| c as u64 <= MAX_LEN)
        .ok_or(SnapshotError::Corrupt("comparator table beyond sanity cap"))?;
    let mut min_sums = Vec::with_capacity(cells);
    for _ in 0..cells {
        min_sums.push(r_i64(r)?);
    }
    let mut dead = vec![0u8; cells];
    r.read_exact(&mut dead)?;
    if dead.iter().any(|&d| d > 2) {
        return Err(SnapshotError::Corrupt("dead-column override out of range"));
    }
    let mut thresholds_ua = Vec::with_capacity(cells);
    for _ in 0..cells {
        let t = r_f64(r)?;
        if !t.is_finite() {
            return Err(SnapshotError::Corrupt("non-finite neuron threshold"));
        }
        thresholds_ua.push(t);
    }
    let grayzone_ua = r_f64(r)?;
    if !grayzone_ua.is_finite() || grayzone_ua < 0.0 {
        return Err(SnapshotError::Corrupt("gray-zone width out of range"));
    }
    let a_ua = r_f64(r)?;
    let b = r_f64(r)?;
    if !(a_ua.is_finite() && a_ua > 0.0 && b.is_finite() && b > 0.0) {
        return Err(SnapshotError::Corrupt("attenuation model out of range"));
    }
    let window = r_len(r)?;
    if window == 0 {
        return Err(SnapshotError::Corrupt("zero observation window"));
    }
    let counter = match r_u8(r)? {
        0 => CounterKind::Exact,
        1 => CounterKind::Approximate,
        _ => return Err(SnapshotError::Corrupt("unknown counter kind")),
    };
    let mut flip_bytes = vec![0u8; out];
    r.read_exact(&mut flip_bytes)?;
    if flip_bytes.iter().any(|&f| f > 1) {
        return Err(SnapshotError::Corrupt("flip flag out of range"));
    }
    let flips: Vec<bool> = flip_bytes.into_iter().map(|f| f == 1).collect();
    let wpr = fan_in.div_ceil(64);
    let word_count = out
        .checked_mul(wpr)
        .filter(|&c| c as u64 <= MAX_LEN)
        .ok_or(SnapshotError::Corrupt("weight plane beyond sanity cap"))?;
    let words = r_u64s(r, word_count)?;
    // The zero-tail invariant: bits past `fan_in` must be zero in every
    // row, or the SWAR garbage-folded comparator thresholds are wrong.
    let rem = fan_in % 64;
    if rem > 0 {
        let tail_mask = !((1u64 << rem) - 1);
        if words
            .iter()
            .skip(wpr - 1)
            .step_by(wpr)
            .any(|&w| w & tail_mask != 0)
        {
            return Err(SnapshotError::Corrupt("weight tail bits not zero"));
        }
    }
    let mut weights = PackedMatrix::zeros(out, fan_in);
    weights.storage_mut().copy_from_slice(&words);
    Ok(PackedTiledMatrix::from_parts(MatrixParts {
        weights,
        row_starts,
        col_starts,
        min_sums,
        dead,
        thresholds_ua,
        grayzone_ua,
        attenuation: AttenuationModel { a_ua, b },
        window,
        counter,
        flips,
        fan_in,
        out,
    }))
}

// ------------------------------------------------------------------
// Pipeline shape-chain validation.
// ------------------------------------------------------------------

/// Walks the decoded stages from the input shape and checks every
/// geometry seam the runtime kernels would otherwise `assert!` on, so a
/// cross-layer-corrupt snapshot errors at load time.
fn validate_chain(
    input_shape: [usize; 3],
    layers: &[PackedLayer],
    classifier_fan_in: usize,
) -> Result<()> {
    let mut shape = input_shape;
    for layer in layers {
        shape = match layer {
            PackedLayer::Conv(c) => {
                let (in_c, k, stride, pad) = c.geometry();
                let [ch, h, w] = shape;
                if ch != in_c {
                    return Err(SnapshotError::Corrupt("conv input channel mismatch"));
                }
                if c.matrix().fan_in() != in_c * k * k {
                    return Err(SnapshotError::Corrupt("conv fan-in / geometry mismatch"));
                }
                let (span_h, span_w) = (h + 2 * pad, w + 2 * pad);
                if span_h < k || span_w < k {
                    return Err(SnapshotError::Corrupt("conv kernel larger than input"));
                }
                [
                    c.matrix().out(),
                    (span_h - k) / stride + 1,
                    (span_w - k) / stride + 1,
                ]
            }
            PackedLayer::Pool(p) => {
                let [c, h, w] = shape;
                if p.and_channels().len() != c {
                    return Err(SnapshotError::Corrupt("pool channel-flag count mismatch"));
                }
                if h == 0 || w == 0 || h % 2 != 0 || w % 2 != 0 {
                    return Err(SnapshotError::Corrupt("pool on odd spatial dims"));
                }
                [c, h / 2, w / 2]
            }
            PackedLayer::Linear(l) => {
                if l.matrix().fan_in() != shape[0] * shape[1] * shape[2] {
                    return Err(SnapshotError::Corrupt("linear fan-in mismatch"));
                }
                [l.matrix().out(), 1, 1]
            }
            PackedLayer::Flatten => [shape[0] * shape[1] * shape[2], 1, 1],
        };
    }
    if shape[0] * shape[1] * shape[2] != classifier_fan_in {
        return Err(SnapshotError::Corrupt("classifier fan-in mismatch"));
    }
    Ok(())
}

// ------------------------------------------------------------------
// Model codec.
// ------------------------------------------------------------------

impl PackedModel {
    /// Writes the model as a version-[`SNAPSHOT_VERSION`] snapshot.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on any write failure.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(&SNAPSHOT_MAGIC)?;
        w_u32(w, SNAPSHOT_VERSION)?;
        for d in self.input_shape() {
            w_u64(w, d as u64)?;
        }
        w_u32(w, self.layers().len() as u32)?;
        for layer in self.layers() {
            match layer {
                PackedLayer::Conv(c) => {
                    w_u8(w, TAG_CONV)?;
                    let (in_c, k, stride, pad) = c.geometry();
                    w_u64(w, in_c as u64)?;
                    w_u64(w, k as u64)?;
                    w_u64(w, stride as u64)?;
                    w_u64(w, pad as u64)?;
                    write_matrix(w, c.matrix())?;
                }
                PackedLayer::Pool(p) => {
                    w_u8(w, TAG_POOL)?;
                    w_u64(w, p.and_channels().len() as u64)?;
                    for &and in p.and_channels() {
                        w_u8(w, and as u8)?;
                    }
                }
                PackedLayer::Linear(l) => {
                    w_u8(w, TAG_LINEAR)?;
                    write_matrix(w, l.matrix())?;
                }
                PackedLayer::Flatten => w_u8(w, TAG_FLATTEN)?,
            }
        }
        let cls = self.classifier();
        let pop = cls.popcount();
        w_u64(w, pop.out_features() as u64)?;
        w_u64(w, pop.fan_in() as u64)?;
        for &a in cls.alphas() {
            w_f32(w, a)?;
        }
        for &b in cls.bias() {
            w_f32(w, b)?;
        }
        for row in pop.rows() {
            for &word in row.plane().words() {
                w_u64(w, word)?;
            }
        }
        Ok(())
    }

    /// Reads a snapshot written by [`Self::write_snapshot`], rebuilding
    /// the derived acceleration state (tile spans, SWAR tables). The
    /// result is bit-identical to the model that was saved — including
    /// any injected faults — and runs with the machine-default worker
    /// count.
    ///
    /// # Errors
    /// [`SnapshotError::BadMagic`] / [`SnapshotError::UnsupportedVersion`]
    /// for foreign files, [`SnapshotError::Corrupt`] when a structural
    /// invariant fails, [`SnapshotError::Io`] on read failures (truncated
    /// files included).
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<Self> {
        let magic: [u8; 8] = r_bytes(r)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r_u32(r)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let input_shape = [r_len(r)?, r_len(r)?, r_len(r)?];
        if input_shape.contains(&0) || input_shape.iter().product::<usize>() as u64 > MAX_LEN {
            return Err(SnapshotError::Corrupt("input shape out of range"));
        }
        let stage_count = r_u32(r)?;
        if stage_count > MAX_STAGES {
            return Err(SnapshotError::Corrupt("stage count beyond sanity cap"));
        }
        let mut layers = Vec::with_capacity(stage_count as usize);
        for _ in 0..stage_count {
            layers.push(match r_u8(r)? {
                TAG_CONV => {
                    let in_c = r_len(r)?;
                    let k = r_len(r)?;
                    let stride = r_len(r)?;
                    let pad = r_len(r)?;
                    if in_c == 0 || k == 0 || stride == 0 {
                        return Err(SnapshotError::Corrupt("conv geometry out of range"));
                    }
                    let matrix = read_matrix(r)?;
                    PackedLayer::Conv(PackedConvStage::from_parts(matrix, in_c, k, stride, pad))
                }
                TAG_POOL => {
                    let count = r_len(r)?;
                    let mut flags = vec![0u8; count];
                    r.read_exact(&mut flags)?;
                    if flags.iter().any(|&f| f > 1) {
                        return Err(SnapshotError::Corrupt("pool flag out of range"));
                    }
                    PackedLayer::Pool(PackedPoolStage::new(
                        flags.into_iter().map(|f| f == 1).collect(),
                    ))
                }
                TAG_LINEAR => PackedLayer::Linear(PackedLinearStage::from_matrix(read_matrix(r)?)),
                TAG_FLATTEN => PackedLayer::Flatten,
                _ => return Err(SnapshotError::Corrupt("unknown stage tag")),
            });
        }
        let out = r_len(r)?;
        let fan_in = r_len(r)?;
        if out == 0 || fan_in == 0 {
            return Err(SnapshotError::Corrupt("classifier with zero geometry"));
        }
        let mut alphas = Vec::with_capacity(out);
        for _ in 0..out {
            alphas.push(r_f32(r)?);
        }
        let mut bias = Vec::with_capacity(out);
        for _ in 0..out {
            bias.push(r_f32(r)?);
        }
        let wpr = fan_in.div_ceil(64);
        let mut rows = Vec::with_capacity(out);
        for _ in 0..out {
            // `from_words` re-normalizes the tail, keeping the plane
            // invariant even if a foreign writer set slack bits.
            let plane = BitPlane::from_words(r_u64s(r, wpr)?, fan_in);
            rows.push(PackedVec::from_plane(plane));
        }
        validate_chain(input_shape, &layers, fan_in)?;
        let classifier =
            DeployedClassifier::from_parts(PopcountLinear::from_rows(rows, fan_in), alphas, bias);
        Ok(PackedModel::from_parts(input_shape, layers, classifier))
    }

    /// Saves the model to `path` (see [`Self::write_snapshot`]).
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_snapshot(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Loads a model from `path` (see [`Self::read_snapshot`]); rejects
    /// trailing bytes after the snapshot body.
    ///
    /// # Errors
    /// As [`Self::read_snapshot`], plus [`SnapshotError::Corrupt`] if the
    /// file continues past the decoded model.
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let model = Self::read_snapshot(&mut r)?;
        if r.read(&mut [0u8; 1])? != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(model)
    }
}
